/**
 * @file
 * Shared configuration for the benchmark harness. Every bench binary
 * regenerates one table or figure of the paper at laptop scale;
 * setting CCSA_SCALE > 1 grows corpora and training budgets toward
 * paper scale.
 */

#ifndef CCSA_BENCH_BENCH_UTIL_HH
#define CCSA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "base/str.hh"
#include "base/table.hh"
#include "eval/experiment.hh"

namespace ccsa
{
namespace bench
{

/** Default laptop-scale experiment configuration for benches. */
inline ExperimentConfig
defaultConfig()
{
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 24;
    cfg.encoder.hiddenDim = 32;
    cfg.encoder.layers = 1;
    cfg.encoder.arch = nn::TreeArch::Uni;
    cfg.submissionsPerProblem = 48;
    cfg.train.epochs = 3;
    cfg.train.learningRate = 5e-3f;
    cfg.train.batchPairs = 32;
    cfg.trainPairs.maxPairs = 600;
    cfg.evalPairs.maxPairs = 220;
    cfg.applyEnvScale();
    return cfg;
}

/** Print the standard bench banner. */
inline void
banner(const std::string& what, const std::string& paper_ref)
{
    std::printf("=====================================================\n");
    std::printf("ccsa bench: %s\n", what.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: CCSA_SCALE=%.2f (set >1 for higher fidelity)\n",
                envScale());
    std::printf("=====================================================\n");
}

/** Print one model's serving-engine counters (cache effectiveness). */
inline void
engineReport(const TrainedModel& tm)
{
    if (!tm.engine)
        return;
    Engine::Stats s = tm.engine->stats();
    std::printf("[engine] pairs=%llu encoded=%llu hits=%llu "
                "misses=%llu evictions=%llu\n",
                static_cast<unsigned long long>(s.pairsServed),
                static_cast<unsigned long long>(s.treesEncoded),
                static_cast<unsigned long long>(s.cacheHits),
                static_cast<unsigned long long>(s.cacheMisses),
                static_cast<unsigned long long>(s.cacheEvictions));
}

} // namespace bench
} // namespace ccsa

#endif // CCSA_BENCH_BENCH_UTIL_HH
