/**
 * @file
 * Regenerates Figure 3: model evaluation and generalisation. For each
 * training dataset (problems A-I and the MP mixture) and each
 * representation learner (tree-LSTM vs GCN), reports
 *  - the same-problem accuracy on disjoint submissions (the paper's
 *    line plots), and
 *  - the distribution of cross-problem accuracies over all other
 *    problems (the paper's boxplots: min / Q1 / median / Q3 / max).
 *
 * Expected shape: tree-LSTM >= GCN on every training set; single
 * problem self-accuracy around 0.75-0.85; MP self-accuracy lower.
 */

#include <cstdio>
#include <iostream>

#include "base/stats.hh"
#include "bench_util.hh"

using namespace ccsa;

namespace
{

struct Row
{
    std::string tag;
    std::string encoder;
    double self = 0.0;
    Summary cross;
};

Row
runOne(const std::string& tag, EncoderKind kind,
       const TrainedModel& tm, const ExperimentConfig& cfg,
       const std::vector<ProblemSpec>& others)
{
    Row row;
    row.tag = tag;
    row.encoder = encoderKindName(kind);
    row.self = evalHeldOut(tm, cfg);
    std::vector<double> accs;
    for (const auto& other : others)
        accs.push_back(evalCrossProblem(tm, other, cfg));
    row.cross = summarize(accs);
    return row;
}

} // namespace

int
main()
{
    bench::banner("fig3_generalization",
                  "Fig. 3 — tree-LSTM vs GCN accuracy and "
                  "generalizability");

    ExperimentConfig base = bench::defaultConfig();

    TextTable table({"Train", "Encoder", "self-acc (line)",
                     "cross min", "q1", "median", "q3", "max"});

    std::vector<EncoderKind> encoders{EncoderKind::TreeLstm,
                                      EncoderKind::Gcn};

    for (EncoderKind kind : encoders) {
        for (const auto& spec : tableISpecs()) {
            ExperimentConfig cfg = base;
            cfg.encoder.kind = kind;
            if (kind == EncoderKind::Gcn)
                cfg.encoder.layers = 2;
            TrainedModel tm = trainOnProblem(spec, cfg);

            std::vector<ProblemSpec> others;
            for (const auto& o : tableISpecs())
                if (o.tag != spec.tag)
                    others.push_back(o);

            Row row = runOne(spec.tag, kind, tm, cfg, others);
            table.addRow({row.tag, row.encoder,
                          fmtDouble(row.self, 3),
                          fmtDouble(row.cross.min, 3),
                          fmtDouble(row.cross.q1, 3),
                          fmtDouble(row.cross.median, 3),
                          fmtDouble(row.cross.q3, 3),
                          fmtDouble(row.cross.max, 3)});
            std::printf("  [%s/%s] self=%.3f cross-median=%.3f\n",
                        row.tag.c_str(), row.encoder.c_str(),
                        row.self, row.cross.median);
        }

        // MP: mixed dataset of derived problems (paper: 100 x 100).
        ExperimentConfig cfg = base;
        cfg.encoder.kind = kind;
        if (kind == EncoderKind::Gcn)
            cfg.encoder.layers = 2;
        int problems = static_cast<int>(12 * envScale());
        int per = std::max(10, cfg.submissionsPerProblem / 6);
        auto corpus = std::make_shared<Corpus>(
            Corpus::generateMixed(problems, per, 500));
        TrainedModel tm = trainOnCorpus(corpus, cfg);

        std::vector<ProblemSpec> others(tableISpecs().begin(),
                                        tableISpecs().end());
        Row row = runOne("MP", kind, tm, cfg, others);
        table.addRow({row.tag, row.encoder, fmtDouble(row.self, 3),
                      fmtDouble(row.cross.min, 3),
                      fmtDouble(row.cross.q1, 3),
                      fmtDouble(row.cross.median, 3),
                      fmtDouble(row.cross.q3, 3),
                      fmtDouble(row.cross.max, 3)});
        std::printf("  [MP/%s] self=%.3f cross-median=%.3f\n",
                    row.encoder.c_str(), row.self, row.cross.median);
    }

    std::printf("\n");
    table.print(std::cout);
    table.writeCsv("fig3_generalization.csv");
    std::printf("\nPaper reference points: tree-LSTM up to 0.84 "
                "cross (MP), 0.73 MP self, 0.81 single-problem "
                "self; GCN consistently below tree-LSTM.\n");
    return 0;
}
