/**
 * @file
 * Regenerates Figure 4: the ROC curve of the multi-layer alternating
 * tree-LSTM on problem A's validation pairs. The paper reports an
 * area under the curve of ~0.85, in agreement with the accuracy
 * metric; the expected shape here is AUC well above 0.5 and close to
 * the pairwise accuracy.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace ccsa;

int
main()
{
    bench::banner("fig4_roc",
                  "Fig. 4 — ROC of the 3-layer alternating tree-LSTM "
                  "on problem A (paper AUC ~0.85)");

    ExperimentConfig cfg = bench::defaultConfig();
    cfg.encoder.arch = nn::TreeArch::Alternating;
    cfg.encoder.layers = 3;

    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::A),
                                     cfg);
    auto scored = scoreHeldOut(tm, cfg);
    double acc = pairwiseAccuracy(scored);
    double auc = rocAuc(scored);
    auto curve = rocCurve(scored);

    std::printf("validation pairs: %zu\n", scored.size());
    std::printf("accuracy @0.5: %.3f\n", acc);
    std::printf("AUC: %.3f (paper: ~0.85)\n\n", auc);

    // Print a decimated curve (about 20 operating points).
    TextTable table({"threshold", "FPR", "TPR"});
    std::size_t step = std::max<std::size_t>(curve.size() / 20, 1);
    for (std::size_t i = 0; i < curve.size(); i += step)
        table.addRow({fmtDouble(curve[i].threshold, 3),
                      fmtDouble(curve[i].fpr, 3),
                      fmtDouble(curve[i].tpr, 3)});
    table.addRow({fmtDouble(curve.back().threshold, 3),
                  fmtDouble(curve.back().fpr, 3),
                  fmtDouble(curve.back().tpr, 3)});
    table.print(std::cout);
    table.writeCsv("fig4_roc.csv");

    Confusion c = confusion(scored);
    std::printf("\nconfusion @0.5: tp=%zu fp=%zu tn=%zu fn=%zu "
                "(precision %.3f, recall %.3f)\n",
                c.tp, c.fp, c.tn, c.fn, c.precision(), c.recall());
    bench::engineReport(tm);
    return 0;
}
