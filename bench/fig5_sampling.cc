/**
 * @file
 * Regenerates Figure 5 and the §VI-D ordering study:
 *  (a) accuracy as the number of training submissions grows (paper:
 *      steady improvement, diminishing returns beyond ~1000);
 *  (b) accuracy as the percentage of pairs grows at a fixed
 *      submission count (paper: rapid improvement, then a dip as
 *      overfitting sets in);
 *  (c) symmetric vs one-way pair ordering (paper: up to ~2% gain
 *      from including both orderings).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace ccsa;

namespace
{

double
accuracyWith(const ExperimentConfig& cfg, const ProblemSpec& spec)
{
    TrainedModel tm = trainOnProblem(spec, cfg);
    return evalHeldOut(tm, cfg);
}

} // namespace

int
main()
{
    bench::banner("fig5_sampling",
                  "Fig. 5(a,b) + SVI-D — data sampling and "
                  "augmentation study on problem A");

    ExperimentConfig base = bench::defaultConfig();
    const ProblemSpec& spec = tableISpec(ProblemFamily::A);

    // (a) submission-count sweep at a fixed 75% pair ratio.
    std::printf("(a) accuracy vs training submissions\n");
    TextTable ta({"submissions", "train pairs", "accuracy"});
    for (int subs : {16, 32, 64, 128}) {
        ExperimentConfig cfg = base;
        cfg.submissionsPerProblem =
            static_cast<int>(subs * envScale());
        cfg.trainPairs.ratio = 0.75;
        cfg.trainPairs.maxPairs = 1200;
        TrainedModel tm = trainOnProblem(spec, cfg);
        double acc = evalHeldOut(tm, cfg);
        ta.addRow({std::to_string(cfg.submissionsPerProblem), "75%",
                   fmtDouble(acc, 3)});
        std::printf("  n=%d: acc=%.3f\n", cfg.submissionsPerProblem,
                    acc);
    }
    ta.print(std::cout);
    ta.writeCsv("fig5a_submissions.csv");

    // (b) pair-percentage sweep at a fixed submission count.
    std::printf("\n(b) accuracy vs percentage of pairs "
                "(fixed submissions)\n");
    TextTable tb({"pair ratio", "accuracy"});
    for (double ratio : {0.05, 0.15, 0.35, 0.60, 1.0}) {
        ExperimentConfig cfg = base;
        cfg.trainPairs.ratio = ratio;
        cfg.trainPairs.maxPairs = 6000;
        double acc = accuracyWith(cfg, spec);
        tb.addRow({fmtDouble(ratio * 100.0, 0) + "%",
                   fmtDouble(acc, 3)});
        std::printf("  ratio=%.0f%%: acc=%.3f\n", ratio * 100.0, acc);
    }
    tb.print(std::cout);
    tb.writeCsv("fig5b_pairs.csv");

    // (c) ordering study: symmetric vs one-way pairs of equal count.
    std::printf("\n(c) pair ordering study (SVI-D)\n");
    TextTable tc({"ordering", "accuracy"});
    {
        ExperimentConfig sym = base;
        sym.trainPairs.symmetric = true;
        sym.trainPairs.maxPairs = 800;
        double acc_sym = accuracyWith(sym, spec);

        ExperimentConfig one = base;
        one.trainPairs.symmetric = false;
        one.trainPairs.maxPairs = 800;
        double acc_one = accuracyWith(one, spec);

        tc.addRow({"symmetric (a,b)+(b,a)", fmtDouble(acc_sym, 3)});
        tc.addRow({"one-way", fmtDouble(acc_one, 3)});
        std::printf("  symmetric=%.3f one-way=%.3f (paper: "
                    "symmetric up to +2%%)\n", acc_sym, acc_one);
    }
    tc.print(std::cout);
    tc.writeCsv("fig5c_ordering.csv");
    return 0;
}
