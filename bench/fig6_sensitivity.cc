/**
 * @file
 * Regenerates Figure 6: prediction sensitivity to the runtime
 * difference between the two programs of a pair, for models trained
 * on problems A, B and C. Accuracy is recomputed keeping only pairs
 * whose |runtime gap| exceeds a growing threshold. Expected shape:
 * accuracy increases monotonically with the threshold and approaches
 * 1.0 for large gaps (paper: ~1.0 at a 1-second difference).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace ccsa;

int
main()
{
    bench::banner("fig6_sensitivity",
                  "Fig. 6 — accuracy vs minimum runtime difference "
                  "(problems A, B, C)");

    ExperimentConfig cfg = bench::defaultConfig();
    // Larger evaluation sets give smoother sensitivity curves.
    cfg.evalPairs.maxPairs = 600;

    TextTable table({"Problem", "min gap (ms)", "pairs kept",
                     "accuracy"});

    for (ProblemFamily family : {ProblemFamily::A, ProblemFamily::B,
                                 ProblemFamily::C}) {
        const ProblemSpec& spec = tableISpec(family);
        TrainedModel tm = trainOnProblem(spec, cfg);
        auto scored = scoreHeldOut(tm, cfg);

        // Threshold ladder scaled to the problem's runtime range.
        std::vector<double> thresholds{0,    10,   25,  50, 100,
                                       200,  400,  800, 1200};
        bench::engineReport(tm);
        auto sweep = sensitivitySweep(scored, thresholds);
        for (const auto& pt : sweep) {
            if (pt.pairsRetained < 10)
                continue; // too few pairs for a stable estimate
            table.addRow({spec.tag, fmtDouble(pt.minGapMs, 0),
                          std::to_string(pt.pairsRetained),
                          fmtDouble(pt.accuracy, 3)});
            std::printf("  [%s] gap>=%4.0fms: acc=%.3f (%zu pairs)\n",
                        spec.tag.c_str(), pt.minGapMs, pt.accuracy,
                        pt.pairsRetained);
        }
    }

    std::printf("\n");
    table.print(std::cout);
    table.writeCsv("fig6_sensitivity.csv");
    std::printf("\nExpected: accuracy rises with the threshold on "
                "every problem (paper Fig. 6),\nsince large runtime "
                "gaps come from loop structure the model can see.\n");
    return 0;
}
