/**
 * @file
 * Regenerates Figure 7: t-SNE projections of (a) the learned node
 * embeddings, coloured by syntactic category, and (b) the code
 * representations of three problems. Coordinates are written to CSV
 * for plotting; cluster-separation ratios quantify what the paper
 * shows visually (nodes group by category, codes group by problem).
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "viz/tsne.hh"

using namespace ccsa;

int
main()
{
    bench::banner("fig7_tsne",
                  "Fig. 7 — t-SNE of node embeddings and code "
                  "representations");

    // Train one tree-LSTM model on a mixture so embeddings see all
    // node kinds in context.
    ExperimentConfig cfg = bench::defaultConfig();
    int problems = 6;
    int per = std::max(10, cfg.submissionsPerProblem / 4);
    auto corpus = std::make_shared<Corpus>(
        Corpus::generateMixed(problems, per, 900));
    TrainedModel tm = trainOnCorpus(corpus, cfg);

    // (a) node embeddings.
    const Tensor& table =
        tm.engine->model().encoder().embedding().table();
    TsneConfig tsne_cfg;
    tsne_cfg.perplexity = 8.0;
    Tensor node_xy = tsne(table, tsne_cfg);
    std::vector<int> node_labels;
    {
        std::ofstream f("fig7a_node_embeddings.csv");
        f << "kind,category,x,y\n";
        for (int k = 0; k < kNumNodeKinds; ++k) {
            auto kind = static_cast<NodeKind>(k);
            node_labels.push_back(static_cast<int>(
                nodeKindCategory(kind)));
            f << nodeKindName(kind) << ","
              << nodeCategoryName(nodeKindCategory(kind)) << ","
              << node_xy.at(k, 0) << "," << node_xy.at(k, 1) << "\n";
        }
    }
    double node_sep = separationRatio(node_xy, node_labels);
    std::printf("(a) node embeddings: %d kinds -> "
                "fig7a_node_embeddings.csv\n", kNumNodeKinds);
    std::printf("    category separation ratio: %.2f "
                "(>1 means categories cluster)\n", node_sep);

    // Spot-check the paper's qualitative observation: for and while
    // should sit closer to each other than to string literals.
    auto dist = [&](NodeKind a, NodeKind b) {
        double dx = node_xy.at(kindId(a), 0) - node_xy.at(kindId(b), 0);
        double dy = node_xy.at(kindId(a), 1) - node_xy.at(kindId(b), 1);
        return std::sqrt(dx * dx + dy * dy);
    };
    std::printf("    d(for, while)=%.2f vs d(for, string-literal)"
                "=%.2f\n",
                dist(NodeKind::ForStmt, NodeKind::WhileStmt),
                dist(NodeKind::ForStmt, NodeKind::StringLiteral));

    // (b) code embeddings for three distinct problems.
    std::vector<ProblemFamily> fams{ProblemFamily::A,
                                    ProblemFamily::E,
                                    ProblemFamily::H};
    std::vector<int> code_labels;
    int per_problem = 40;
    std::vector<Corpus> corpora;
    for (std::size_t f = 0; f < fams.size(); ++f)
        corpora.push_back(Corpus::generate(tableISpec(fams[f]),
                                           per_problem, 1000 + f));
    // One engine batch encodes every submission of all problems.
    std::vector<const Ast*> trees;
    for (std::size_t f = 0; f < corpora.size(); ++f) {
        for (const auto& sub : corpora[f].submissions()) {
            trees.push_back(&sub.ast);
            code_labels.push_back(static_cast<int>(f));
        }
    }
    std::vector<Tensor> codes =
        tm.engine->encodeBatch(trees).take();
    Tensor code_mat(static_cast<int>(codes.size()), codes[0].cols());
    for (std::size_t i = 0; i < codes.size(); ++i)
        code_mat.setRow(static_cast<int>(i), codes[i]);
    TsneConfig code_cfg;
    code_cfg.perplexity = 12.0;
    Tensor code_xy = tsne(code_mat, code_cfg);
    {
        std::ofstream f("fig7b_code_embeddings.csv");
        f << "problem,x,y\n";
        for (int i = 0; i < code_xy.rows(); ++i)
            f << familyTag(fams[code_labels[i]]) << ","
              << code_xy.at(i, 0) << "," << code_xy.at(i, 1) << "\n";
    }
    double code_sep = separationRatio(code_xy, code_labels);
    std::printf("(b) code embeddings: %d codes from problems A/E/H "
                "-> fig7b_code_embeddings.csv\n", code_xy.rows());
    std::printf("    problem separation ratio: %.2f "
                "(paper: distinct per-problem clusters)\n", code_sep);
    return 0;
}
