/**
 * @file
 * Regenerates the §V-C hyper-parameter tuning study (the paper used
 * Optuna; this harness substitutes seeded random search). For the
 * GCN, depth and width are the critical knobs (paper best: 6 layers,
 * width 117, 68.5%); for the tree-LSTM, hidden size and embedding
 * dimension (paper best: 100 hidden, lambda 120, 73%). Expected
 * shape: the best tree-LSTM trial beats the best GCN trial.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace ccsa;

int
main()
{
    bench::banner("hparam_search",
                  "SV-C — hyper-parameter tuning for GCN and "
                  "tree-LSTM (random search)");

    ExperimentConfig base = bench::defaultConfig();
    const ProblemSpec& spec = tableISpec(ProblemFamily::E);
    int trials = static_cast<int>(4 * envScale());
    Rng rng(31337);

    TextTable table({"encoder", "layers", "hidden", "embed",
                     "accuracy"});

    double best_gcn = 0.0, best_tree = 0.0;
    std::string best_gcn_cfg, best_tree_cfg;

    for (int t = 0; t < trials; ++t) {
        ExperimentConfig cfg = base;
        cfg.encoder.kind = EncoderKind::Gcn;
        cfg.encoder.layers = rng.uniformInt(1, 6);
        cfg.encoder.hiddenDim = rng.uniformInt(8, 64);
        cfg.encoder.embedDim = rng.uniformInt(8, 48);
        TrainedModel tm = trainOnProblem(spec, cfg);
        double acc = evalHeldOut(tm, cfg);
        table.addRow({"GCN", std::to_string(cfg.encoder.layers),
                      std::to_string(cfg.encoder.hiddenDim),
                      std::to_string(cfg.encoder.embedDim),
                      fmtDouble(acc, 3)});
        std::printf("  GCN layers=%d hidden=%d embed=%d: %.3f\n",
                    cfg.encoder.layers, cfg.encoder.hiddenDim,
                    cfg.encoder.embedDim, acc);
        if (acc > best_gcn) {
            best_gcn = acc;
            best_gcn_cfg = "layers=" +
                std::to_string(cfg.encoder.layers) + " hidden=" +
                std::to_string(cfg.encoder.hiddenDim);
        }
    }

    for (int t = 0; t < trials; ++t) {
        ExperimentConfig cfg = base;
        cfg.encoder.kind = EncoderKind::TreeLstm;
        cfg.encoder.layers = 1;
        cfg.encoder.hiddenDim = rng.uniformInt(16, 64);
        cfg.encoder.embedDim = rng.uniformInt(12, 48);
        TrainedModel tm = trainOnProblem(spec, cfg);
        double acc = evalHeldOut(tm, cfg);
        table.addRow({"tree-LSTM", "1",
                      std::to_string(cfg.encoder.hiddenDim),
                      std::to_string(cfg.encoder.embedDim),
                      fmtDouble(acc, 3)});
        std::printf("  tree-LSTM hidden=%d embed=%d: %.3f\n",
                    cfg.encoder.hiddenDim, cfg.encoder.embedDim,
                    acc);
        if (acc > best_tree) {
            best_tree = acc;
            best_tree_cfg = "hidden=" +
                std::to_string(cfg.encoder.hiddenDim) + " embed=" +
                std::to_string(cfg.encoder.embedDim);
        }
    }

    std::printf("\n");
    table.print(std::cout);
    table.writeCsv("hparam_search.csv");
    std::printf("\nbest GCN: %.3f (%s); best tree-LSTM: %.3f (%s)\n",
                best_gcn, best_gcn_cfg.c_str(), best_tree,
                best_tree_cfg.c_str());
    std::printf("paper: GCN best 68.5%% at (6 layers, 117 wide); "
                "tree-LSTM best 73%% at (100 hidden, 120 embed).\n");
    return 0;
}
