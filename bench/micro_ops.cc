/**
 * @file
 * google-benchmark microbenchmarks for the substrate layers: tensor
 * kernels, encoder forward/backward, frontend throughput, the judge,
 * and the unique-tree batching ablation called out in DESIGN.md
 * (encoding each distinct submission once per batch vs encoding both
 * sides of every pair).
 */

#include <benchmark/benchmark.h>

#include "dataset/corpus.hh"
#include "dataset/pairs.hh"
#include "frontend/parser.hh"
#include "model/trainer.hh"
#include "serve/engine.hh"

namespace
{

using namespace ccsa;

const Corpus&
benchCorpus()
{
    static Corpus corpus =
        Corpus::generate(tableISpec(ProblemFamily::H), 24, 77);
    return corpus;
}

std::string
benchSource()
{
    auto gen = makeGenerator(ProblemFamily::F, 0);
    Rng rng(5);
    return gen->generateVariant(0, rng).source;
}

void
BM_TensorMatmul(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    Rng rng(1);
    Tensor a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.matmul(b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

void
BM_ParseSource(benchmark::State& state)
{
    std::string src = benchSource();
    for (auto _ : state)
        benchmark::DoNotOptimize(parseSource(src));
    state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_ParseSource);

void
BM_JudgeProgram(benchmark::State& state)
{
    const ProblemSpec& spec = tableISpec(ProblemFamily::F);
    SimulatedJudge judge(spec.judge);
    Ast ast = parseAndPrune(benchSource());
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(judge.run(ast, rng));
}
BENCHMARK(BM_JudgeProgram);

void
BM_TreeLstmEncodeForward(benchmark::State& state)
{
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const Ast& ast = benchCorpus().submissions()[0].ast;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.encode(ast));
    state.SetItemsProcessed(state.iterations() * ast.size());
}
BENCHMARK(BM_TreeLstmEncodeForward);

void
BM_GcnEncodeForward(benchmark::State& state)
{
    EncoderConfig cfg;
    cfg.kind = EncoderKind::Gcn;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    cfg.layers = 2;
    ComparativePredictor model(cfg, 1);
    const Ast& ast = benchCorpus().submissions()[0].ast;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.encode(ast));
    state.SetItemsProcessed(state.iterations() * ast.size());
}
BENCHMARK(BM_GcnEncodeForward);

void
BM_PairForwardBackward(benchmark::State& state)
{
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const auto& subs = benchCorpus().submissions();
    Tensor target(1, 1, 1.0f);
    for (auto _ : state) {
        ag::Var za = model.encode(subs[0].ast);
        ag::Var zb = model.encode(subs[1].ast);
        ag::Var loss = ag::bceWithLogits(
            model.logitFromEncodings(za, zb), target);
        ag::backward(loss);
        model.zeroGrad();
    }
}
BENCHMARK(BM_PairForwardBackward);

/**
 * Ablation: one training batch with unique-tree batching (the
 * Trainer's strategy) vs naively encoding both sides of every pair.
 */
void
BM_BatchUniqueTreeEncoding(benchmark::State& state)
{
    bool unique = state.range(0) == 1;
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const auto& subs = benchCorpus().submissions();
    std::vector<int> idx;
    for (std::size_t i = 0; i < subs.size(); ++i)
        idx.push_back(static_cast<int>(i));
    Rng rng(11);
    PairOptions popt;
    popt.maxPairs = 32;
    auto pairs = buildPairs(subs, idx, popt, rng);

    for (auto _ : state) {
        std::vector<ag::Var> losses;
        if (unique) {
            std::unordered_map<int, ag::Var> cache;
            for (const auto& p : pairs) {
                for (int s : {p.first, p.second})
                    if (!cache.count(s))
                        cache.emplace(s, model.encode(subs[s].ast));
                losses.push_back(ag::bceWithLogits(
                    model.logitFromEncodings(cache.at(p.first),
                                             cache.at(p.second)),
                    Tensor(1, 1, p.label)));
            }
        } else {
            for (const auto& p : pairs) {
                losses.push_back(ag::bceWithLogits(
                    model.logitFromEncodings(
                        model.encode(subs[p.first].ast),
                        model.encode(subs[p.second].ast)),
                    Tensor(1, 1, p.label)));
            }
        }
        ag::Var loss = ag::scale(ag::addN(losses),
                                 1.0f / losses.size());
        ag::backward(loss);
        model.zeroGrad();
    }
}
BENCHMARK(BM_BatchUniqueTreeEncoding)
    ->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/**
 * Serving ablation: repeated-candidate batch scoring through
 * Engine::compareMany (encoding cache + thread pool, arg 1) vs the
 * legacy one-pair-at-a-time probFirstSlower path (arg 0), which
 * re-encodes both trees of every pair. Items/s is pairs scored per
 * second; the batched mode must be >= 2x the unbatched mode.
 */
void
BM_ServingBatchedVsUnbatched(benchmark::State& state)
{
    bool batched = state.range(0) == 1;
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    auto model = std::make_shared<ComparativePredictor>(cfg, 1);
    const auto& subs = benchCorpus().submissions();

    // A ranking-style workload: 96 pairs drawn from a pool of 24
    // candidates, so every tree recurs across many pairs.
    std::vector<int> idx;
    for (std::size_t i = 0; i < subs.size(); ++i)
        idx.push_back(static_cast<int>(i));
    Rng rng(23);
    PairOptions popt;
    popt.maxPairs = 96;
    auto pairs = buildPairs(subs, idx, popt, rng);

    Engine engine(model);
    std::vector<Engine::PairRequest> requests;
    for (const auto& p : pairs)
        requests.push_back(
            {&subs[p.first].ast, &subs[p.second].ast});

    for (auto _ : state) {
        if (batched) {
            benchmark::DoNotOptimize(engine.compareMany(requests));
        } else {
            for (const auto& p : pairs) {
                benchmark::DoNotOptimize(model->probFirstSlower(
                    subs[p.first].ast, subs[p.second].ast));
            }
        }
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(pairs.size()));
    state.SetLabel(batched ? "engine-batched" : "legacy-per-pair");
}
BENCHMARK(BM_ServingBatchedVsUnbatched)
    ->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void
BM_CorpusGeneration(benchmark::State& state)
{
    const ProblemSpec& spec = tableISpec(ProblemFamily::E);
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            Corpus::generate(spec, 8, seed++));
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_CorpusGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
