/**
 * @file
 * google-benchmark microbenchmarks for the substrate layers: tensor
 * kernels, encoder forward/backward, frontend throughput, the judge,
 * and the unique-tree batching ablation called out in DESIGN.md
 * (encoding each distinct submission once per batch vs encoding both
 * sides of every pair).
 */

#include <benchmark/benchmark.h>

#include "dataset/corpus.hh"
#include "dataset/pairs.hh"
#include "frontend/parser.hh"
#include "model/trainer.hh"
#include "serve/encoding_cache.hh"
#include "serve/engine.hh"
#include "serve/latent_f16_dispatch.hh"
#include "tensor/arena.hh"
#include "tensor/matmul_dispatch.hh"

// The unbatched per-pair baseline shares the tests' oracle so every
// consumer pins against one reference implementation.
#include "../tests/oracle.hh"

namespace
{

using namespace ccsa;

const Corpus&
benchCorpus()
{
    static Corpus corpus =
        Corpus::generate(tableISpec(ProblemFamily::H), 24, 77);
    return corpus;
}

std::string
benchSource()
{
    auto gen = makeGenerator(ProblemFamily::F, 0);
    Rng rng(5);
    return gen->generateVariant(0, rng).source;
}

void
BM_TensorMatmul(benchmark::State& state)
{
    int n = static_cast<int>(state.range(0));
    Rng rng(1);
    Tensor a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.matmul(b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

/**
 * Kernel ablation: the blocked/unrolled GEMM (arg 1) vs the original
 * scalar ikj loop with its per-element zero-skip branch (arg 0, kept
 * as Tensor::matmulReference). Items/s is multiply-adds per second.
 */
void
BM_MatmulKernel(benchmark::State& state)
{
    bool blocked = state.range(0) == 1;
    int n = static_cast<int>(state.range(1));
    Rng rng(2);
    Tensor a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        if (blocked)
            benchmark::DoNotOptimize(a.matmul(b));
        else
            benchmark::DoNotOptimize(a.matmulReference(b));
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
    state.SetLabel(blocked ? "blocked-kernel" : "reference-kernel");
}
BENCHMARK(BM_MatmulKernel)
    ->Args({1, 32})->Args({0, 32})
    ->Args({1, 64})->Args({0, 64})
    ->Args({1, 128})->Args({0, 128})
    ->Args({1, 256})->Args({0, 256});

/**
 * Runtime-dispatch ablation: the vectorized kernel family vs the
 * scalar fallback, called straight through the raw-buffer seam that
 * Tensor::matmulInto routes to. Items/s is multiply-adds per second.
 * CI gates vectorized >= 1.5x scalar at the largest size whenever a
 * non-scalar row is present (check_bench_encode.py skips the gate on
 * hardware where simdKernels() falls back to scalar).
 */
void
BM_MatmulDispatch(benchmark::State& state)
{
    bool simd = state.range(0) == 1;
    int n = static_cast<int>(state.range(1));
    const kernels::MatmulKernels& k =
        simd ? kernels::simdKernels() : kernels::scalarKernels();
    Rng rng(7);
    Tensor a(n, n), b(n, n), out(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        out.fill(0.0f);
        k.gemmAccum(a.data(), b.data(), out.data(), n, n, n);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
    state.SetLabel(std::string("dispatch:") + k.name);
}
BENCHMARK(BM_MatmulDispatch)
    ->Args({1, 64})->Args({0, 64})
    ->Args({1, 128})->Args({0, 128})
    ->Args({1, 256})->Args({0, 256});

/**
 * Latent-store precision ablation: the cache hit path (lookup +
 * dequantize under the shard lock) at each storage precision. fp32
 * hits memcpy; fp16/int8 pay a decode whose cost this row makes
 * visible next to the 2-4x residency win. Items/s is hits per second
 * on a 64-entry working set of 1x64 latents.
 */
void
BM_CacheHitByPrecision(benchmark::State& state)
{
    const auto precision =
        static_cast<LatentPrecision>(state.range(0));
    EncodingCache cache(128, precision);
    Rng rng(9);
    std::vector<EncodingKey> keys;
    for (std::uint64_t i = 0; i < 64; ++i) {
        Tensor t(1, 64);
        t.fillNormal(rng, 0.0f, 1.0f);
        EncodingKey key{1, {i, i * 0x9E3779B9u}};
        cache.insert(key, t);
        keys.push_back(key);
    }
    Tensor out(1, 1);
    for (auto _ : state) {
        for (const EncodingKey& key : keys)
            benchmark::DoNotOptimize(cache.lookup(key, &out));
    }
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(keys.size()));
    state.SetLabel(std::string("cache-hit:") +
                   latentPrecisionName(precision));
}
BENCHMARK(BM_CacheHitByPrecision)->Arg(0)->Arg(1)->Arg(2);

/** Parent arrays for the encode-ablation tree shapes. */
std::vector<int>
benchTreeParents(int shape)
{
    switch (shape) {
      case 0: { // degenerate chain: no level ever batches
        std::vector<int> p(64);
        p[0] = -1;
        for (std::size_t i = 1; i < p.size(); ++i)
            p[i] = static_cast<int>(i) - 1;
        return p;
      }
      case 1: { // bushy: complete 4-ary tree of depth 4 (341 nodes,
                // levels of width 1/4/16/64/256)
        std::vector<int> p{-1};
        std::size_t parent = 0;
        while (p.size() < 341) {
            for (int k = 0; k < 4 && p.size() < 341; ++k)
                p.push_back(static_cast<int>(parent));
            ++parent;
        }
        return p;
      }
      default: // realistic AST from the generated corpus
        return benchCorpus().submissions()[0].ast.parents();
    }
}

const char*
benchTreeName(int shape)
{
    switch (shape) {
      case 0: return "chain";
      case 1: return "bushy";
      default: return "ast";
    }
}

/**
 * The headline ablation of this PR: level-batched wavefront encoding
 * (arg 0 == 1) vs the per-node oracle path (arg 0 == 0) on three
 * tree shapes. Items/s is nodes encoded per second. The level-batched
 * mode must be >= 3x on bushy trees and must not regress on chains.
 */
void
BM_EncodeLevelBatchedVsPerNode(benchmark::State& state)
{
    bool batched = state.range(0) == 1;
    int shape = static_cast<int>(state.range(1));
    Rng rng(31);
    // Laptop-scale model dims (matches bench_util defaultConfig);
    // alternating layers exercise both pass directions.
    nn::TreeLstm lstm(24, 32, 2, nn::TreeArch::Alternating, rng);
    nn::TreeSpec spec = nn::TreeSpec::fromParents(
        benchTreeParents(shape));
    std::vector<ag::Var> inputs;
    inputs.reserve(spec.size());
    Rng irng(5);
    for (std::size_t i = 0; i < spec.size(); ++i) {
        Tensor t(1, 24);
        t.fillNormal(irng, 0.0f, 1.0f);
        inputs.push_back(ag::constant(t));
    }
    for (auto _ : state) {
        // Both modes encode every node; the serving workload reads
        // the root representation.
        if (batched)
            benchmark::DoNotOptimize(lstm.encodeRoot(spec, inputs));
        else
            benchmark::DoNotOptimize(
                lstm.encodeNodesPerNode(spec, inputs)[spec.root]);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(spec.size()));
    state.SetLabel(std::string(benchTreeName(shape)) + "/" +
                   (batched ? "level-batched" : "per-node"));
}
BENCHMARK(BM_EncodeLevelBatchedVsPerNode)
    ->Args({1, 0})->Args({0, 0})
    ->Args({1, 1})->Args({0, 1})
    ->Args({1, 2})->Args({0, 2})
    ->Unit(benchmark::kMicrosecond);

/**
 * Tape-free ablation: the identical level-batched encode with (arg 0
 * == 0) and without (arg 0 == 1) the autograd tape. The no-grad mode
 * opens an InferenceScope per iteration — exactly the per-chunk scope
 * the serving Engine uses — so every op skips VarNode/closure
 * construction and writes into the warm thread arena instead of the
 * heap. Outputs are bitwise-identical; only the bookkeeping differs.
 * Items/s is nodes encoded per second; the realistic-AST shape is
 * gated >= 1.3x in tools/check_bench_encode.py.
 */
void
BM_EncodeNoGradVsTaped(benchmark::State& state)
{
    bool nograd = state.range(0) == 1;
    int shape = static_cast<int>(state.range(1));
    Rng rng(31);
    nn::TreeLstm lstm(24, 32, 2, nn::TreeArch::Alternating, rng);
    nn::TreeSpec spec = nn::TreeSpec::fromParents(
        benchTreeParents(shape));
    std::vector<Tensor> inputTensors;
    Rng irng(5);
    for (std::size_t i = 0; i < spec.size(); ++i) {
        Tensor t(1, 24);
        t.fillNormal(irng, 0.0f, 1.0f);
        inputTensors.push_back(t);
    }
    std::vector<ag::Var> inputs;
    for (const Tensor& t : inputTensors)
        inputs.push_back(ag::constant(t));
    for (auto _ : state) {
        if (nograd) {
            InferenceScope scope;
            benchmark::DoNotOptimize(lstm.encodeRoot(spec, inputs));
        } else {
            benchmark::DoNotOptimize(lstm.encodeRoot(spec, inputs));
        }
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(spec.size()));
    state.SetLabel(std::string(benchTreeName(shape)) + "/" +
                   (nograd ? "nograd" : "taped"));
}
BENCHMARK(BM_EncodeNoGradVsTaped)
    ->Args({1, 0})->Args({0, 0})
    ->Args({1, 1})->Args({0, 1})
    ->Args({1, 2})->Args({0, 2})
    ->Unit(benchmark::kMicrosecond);

/**
 * fp16 codec family ablation: bulk half->float decode through the
 * portable bit-twiddling oracle (arg 0 == 0) vs the F16C family
 * (arg 0 == 1) on a cache-hit-sized latent batch. Items/s is halves
 * decoded per second; check_bench_encode.py gates f16c >= 2x
 * portable (auto-skipped on machines without F16C, where the arg-1
 * row reports an error instead of a misleading label).
 */
void
BM_F16DecodeDispatch(benchmark::State& state)
{
    const bool hw = state.range(0) == 1;
    if (hw && !kernels::f16cAvailable()) {
        state.SkipWithError("no F16C on this CPU/build");
        return;
    }
    const kernels::F16Kernels& kf =
        hw ? kernels::f16cKernels()
           : kernels::portableF16Kernels();
    // 64 latents of 1x64, the BM_CacheHitByPrecision working set.
    constexpr std::size_t kHalves = 64 * 64;
    Rng rng(9);
    std::vector<float> values(kHalves);
    for (float& v : values)
        v = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<std::uint16_t> halves(kHalves);
    kernels::portableF16Kernels().encodeRows(values.data(),
                                             halves.data(), kHalves);
    std::vector<float> out(kHalves);
    for (auto _ : state) {
        kf.decodeRows(halves.data(), out.data(), kHalves);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kHalves));
    state.SetLabel(std::string("f16:") + kf.name);
}
BENCHMARK(BM_F16DecodeDispatch)->Arg(1)->Arg(0);

/**
 * Forest batching: encoding a batch of 16 distinct realistic trees
 * through one encodeMany wavefront (arg 1) vs 16 separate encode
 * calls (arg 0). Items/s is trees per second.
 */
void
BM_EncodeForestVsSequential(benchmark::State& state)
{
    bool forest = state.range(0) == 1;
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const auto& subs = benchCorpus().submissions();
    std::vector<const Ast*> trees;
    for (std::size_t i = 0; i < 16 && i < subs.size(); ++i)
        trees.push_back(&subs[i].ast);
    for (auto _ : state) {
        if (forest) {
            benchmark::DoNotOptimize(model.encodeMany(trees));
        } else {
            for (const Ast* t : trees)
                benchmark::DoNotOptimize(model.encode(*t));
        }
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(trees.size()));
    state.SetLabel(forest ? "forest-batched" : "tree-at-a-time");
}
BENCHMARK(BM_EncodeForestVsSequential)
    ->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void
BM_ParseSource(benchmark::State& state)
{
    std::string src = benchSource();
    for (auto _ : state)
        benchmark::DoNotOptimize(parseSource(src));
    state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_ParseSource);

void
BM_JudgeProgram(benchmark::State& state)
{
    const ProblemSpec& spec = tableISpec(ProblemFamily::F);
    SimulatedJudge judge(spec.judge);
    Ast ast = parseAndPrune(benchSource());
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(judge.run(ast, rng));
}
BENCHMARK(BM_JudgeProgram);

void
BM_TreeLstmEncodeForward(benchmark::State& state)
{
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const Ast& ast = benchCorpus().submissions()[0].ast;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.encode(ast));
    state.SetItemsProcessed(state.iterations() * ast.size());
}
BENCHMARK(BM_TreeLstmEncodeForward);

void
BM_GcnEncodeForward(benchmark::State& state)
{
    EncoderConfig cfg;
    cfg.kind = EncoderKind::Gcn;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    cfg.layers = 2;
    ComparativePredictor model(cfg, 1);
    const Ast& ast = benchCorpus().submissions()[0].ast;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.encode(ast));
    state.SetItemsProcessed(state.iterations() * ast.size());
}
BENCHMARK(BM_GcnEncodeForward);

void
BM_PairForwardBackward(benchmark::State& state)
{
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const auto& subs = benchCorpus().submissions();
    Tensor target(1, 1, 1.0f);
    for (auto _ : state) {
        ag::Var za = model.encode(subs[0].ast);
        ag::Var zb = model.encode(subs[1].ast);
        ag::Var loss = ag::bceWithLogits(
            model.logitFromEncodings(za, zb), target);
        ag::backward(loss);
        model.zeroGrad();
    }
}
BENCHMARK(BM_PairForwardBackward);

/**
 * Ablation: one training batch with unique-tree batching (the
 * Trainer's strategy) vs naively encoding both sides of every pair.
 */
void
BM_BatchUniqueTreeEncoding(benchmark::State& state)
{
    bool unique = state.range(0) == 1;
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    ComparativePredictor model(cfg, 1);
    const auto& subs = benchCorpus().submissions();
    std::vector<int> idx;
    for (std::size_t i = 0; i < subs.size(); ++i)
        idx.push_back(static_cast<int>(i));
    Rng rng(11);
    PairOptions popt;
    popt.maxPairs = 32;
    auto pairs = buildPairs(subs, idx, popt, rng);

    for (auto _ : state) {
        std::vector<ag::Var> losses;
        if (unique) {
            std::unordered_map<int, ag::Var> cache;
            for (const auto& p : pairs) {
                for (int s : {p.first, p.second})
                    if (!cache.count(s))
                        cache.emplace(s, model.encode(subs[s].ast));
                losses.push_back(ag::bceWithLogits(
                    model.logitFromEncodings(cache.at(p.first),
                                             cache.at(p.second)),
                    Tensor(1, 1, p.label)));
            }
        } else {
            for (const auto& p : pairs) {
                losses.push_back(ag::bceWithLogits(
                    model.logitFromEncodings(
                        model.encode(subs[p.first].ast),
                        model.encode(subs[p.second].ast)),
                    Tensor(1, 1, p.label)));
            }
        }
        ag::Var loss = ag::scale(ag::addN(losses),
                                 1.0f / losses.size());
        ag::backward(loss);
        model.zeroGrad();
    }
}
BENCHMARK(BM_BatchUniqueTreeEncoding)
    ->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/**
 * Serving ablation: repeated-candidate batch scoring through
 * Engine::compareMany (encoding cache + thread pool, arg 1) vs
 * one-pair-at-a-time scoring (arg 0), which re-encodes both trees
 * of every pair. Items/s is pairs scored per second; the batched
 * mode must be >= 2x the unbatched mode.
 */
void
BM_ServingBatchedVsUnbatched(benchmark::State& state)
{
    bool batched = state.range(0) == 1;
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    auto model = std::make_shared<ComparativePredictor>(cfg, 1);
    const auto& subs = benchCorpus().submissions();

    // A ranking-style workload: 96 pairs drawn from a pool of 24
    // candidates, so every tree recurs across many pairs.
    std::vector<int> idx;
    for (std::size_t i = 0; i < subs.size(); ++i)
        idx.push_back(static_cast<int>(i));
    Rng rng(23);
    PairOptions popt;
    popt.maxPairs = 96;
    auto pairs = buildPairs(subs, idx, popt, rng);

    Engine engine(model);
    std::vector<Engine::PairRequest> requests;
    for (const auto& p : pairs)
        requests.push_back(
            {&subs[p.first].ast, &subs[p.second].ast});

    for (auto _ : state) {
        if (batched) {
            benchmark::DoNotOptimize(engine.compareMany(requests));
        } else {
            for (const auto& p : pairs) {
                benchmark::DoNotOptimize(perPairProb(
                    *model, subs[p.first].ast, subs[p.second].ast));
            }
        }
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(pairs.size()));
    state.SetLabel(batched ? "engine-batched" : "legacy-per-pair");
}
BENCHMARK(BM_ServingBatchedVsUnbatched)
    ->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void
BM_CorpusGeneration(benchmark::State& state)
{
    const ProblemSpec& spec = tableISpec(ProblemFamily::E);
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            Corpus::generate(spec, 8, seed++));
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_CorpusGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
