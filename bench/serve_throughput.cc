/**
 * @file
 * Serving-throughput comparison, three rungs of the serving ladder:
 *
 *  1. N closed-loop clients calling the synchronous Engine one
 *     request at a time;
 *  2. the same clients submitting through AsyncServer futures with
 *     cross-request dynamic batching (one batcher thread);
 *  3. the same clients on ShardedServer at 1/2/4/8 shards — N
 *     batcher workers over a partitioned encoding cache.
 *
 * A fourth measurement gates the ModelRegistry refactor: the SAME
 * single-model workload through a direct Engine vs a
 * registry-backed one (per-batch name resolution + namespaced cache
 * keys). The registry path must stay >= 0.95x direct — the lookup
 * is one mutex-protected map probe amortised over a whole batch, so
 * anything below that means the resolution leaked into a hot loop.
 *
 * A fifth measurement gates the metrics plane: the interactive
 * workload through a bare AsyncServer vs one with the full
 * MetricsRegistry/SloTracker/sampler stack attached. Instrumented
 * serving must stay >= 0.97x bare — recording is relaxed atomics
 * outside the server's stats mutex, so a lower ratio means metrics
 * work leaked into a serial section.
 *
 * The workload models a busy ranking service under cache pressure:
 * requests draw pairs from a tree pool larger than any single
 * encoding cache, so the synchronous path keeps re-encoding evicted
 * trees and the single batcher is bounded by one thread's serial
 * sections plus one 12-entry LRU. Sharding attacks both: up to N
 * batches execute concurrently, and the partitioned cache holds
 * numShards * 12 latents at the same fixed per-shard memory budget,
 * so eviction pressure collapses as shards are added. The report
 * includes trees-encoded counts so the mechanism (not just the
 * speedup) is visible.
 *
 * Usage: ./serve_throughput [--json BENCH_serve.json]
 * (CCSA_SCALE scales requests per client; the JSON feeds
 * tools/check_bench_serve.py, which gates sharded >= 1.5x the
 * single-batcher rate at 4 shards in CI.)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "frontend/parser.hh"
#include "serve/async_server.hh"
#include "serve/metrics/metrics.hh"
#include "serve/metrics/metrics_sampler.hh"
#include "serve/metrics/slo_tracker.hh"
#include "serve/ipc/process_sharded_server.hh"
#include "serve/model_registry.hh"
#include "serve/sharded_server.hh"

using namespace ccsa;

namespace
{

/** Distinct tiny program: `loops` loops plus `pad` extra decls. */
Ast
makeVariant(int loops, int pad)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int p = 0; p < pad; ++p)
        src += " int pad" + std::to_string(p) + " = " +
            std::to_string(p) + ";\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
servingOptions()
{
    // A cache smaller than the tree pool: the memory-pressure regime
    // where cross-request dedup (and cache sharding) pays the most.
    // cacheCapacity is per shard, so the single-cache baselines hold
    // 12 of the 48 pool trees while a 4-shard server holds all 48 at
    // the same per-shard budget — sharding converts a thrashing
    // cache into a resident one without growing any single shard.
    return Engine::Options()
        .withEmbedDim(24)
        .withHiddenDim(32)
        .withSeed(42)
        .withThreads(0)
        .withCacheCapacity(12);
}

struct WorkItem
{
    int first;
    int second;
};

/** Deterministic per-client request stream over the tree pool. */
std::vector<WorkItem>
clientStream(int client, int requests, int poolSize)
{
    Rng rng(1000 + static_cast<std::uint64_t>(client));
    std::vector<WorkItem> items;
    items.reserve(static_cast<std::size_t>(requests));
    for (int k = 0; k < requests; ++k) {
        int i = rng.uniformInt(0, poolSize - 1);
        int j = rng.uniformInt(0, poolSize - 2);
        if (j >= i)
            ++j;
        items.push_back(WorkItem{i, j});
    }
    return items;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One measured configuration, also emitted as a JSON row. */
struct BenchRow
{
    std::string mode; // sync|async|async_closed|sharded|ipc|
                      // engine_direct|engine_registry|
                      // tenant_solo|tenant_flood|
                      // metrics_off|metrics_on
    int clients = 0;
    int shards = 0; // 0 for non-sharded modes
    double pairsPerSec = 0.0;
    std::uint64_t treesEncoded = 0;
    /** Interactive-tenant p99 latency (tenant_* rows; 0 elsewhere). */
    double p99Ms = 0.0;
};

/** Drive a deep-pipelining client fleet: every request is submitted
 * up front, then all futures are drained. Batches grow as large as
 * the backlog allows — the regime where ONE batcher shines. */
template <typename SubmitFn>
double
runPipelinedClients(int clients,
                    const std::vector<std::vector<WorkItem>>& streams,
                    const std::vector<Ast>& pool, SubmitFn submit)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<std::future<Result<double>>> futures;
            futures.reserve(streams[0].size());
            for (const WorkItem& w :
                 streams[static_cast<std::size_t>(c)])
                futures.push_back(submit(
                    pool[static_cast<std::size_t>(w.first)],
                    pool[static_cast<std::size_t>(w.second)]));
            for (auto& f : futures) {
                Result<double> r = f.get();
                if (!r.isOk())
                    std::fprintf(stderr, "client: %s\n",
                                 r.status().toString().c_str());
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    double total = static_cast<double>(clients) *
        static_cast<double>(streams[0].size());
    return total / secondsSince(start);
}

/** Drive an interactive client fleet: one outstanding request per
 * client (submit, wait, repeat). Batches are bounded by the client
 * count, so cross-request dedup can no longer mask a thrashing
 * cache — the regime sharded serving is for. */
template <typename SubmitFn>
double
runClosedLoopClients(int clients,
                     const std::vector<std::vector<WorkItem>>& streams,
                     const std::vector<Ast>& pool, SubmitFn submit)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (const WorkItem& w :
                 streams[static_cast<std::size_t>(c)]) {
                Result<double> r =
                    submit(pool[static_cast<std::size_t>(w.first)],
                           pool[static_cast<std::size_t>(w.second)])
                        .get();
                if (!r.isOk())
                    std::fprintf(stderr, "client: %s\n",
                                 r.status().toString().c_str());
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    double total = static_cast<double>(clients) *
        static_cast<double>(streams[0].size());
    return total / secondsSince(start);
}

void
writeJson(const std::string& path, int poolSize,
          int requestsPerClient, const std::vector<BenchRow>& rows)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n");
    std::fprintf(f, "  \"pool_size\": %d,\n", poolSize);
    std::fprintf(f, "  \"requests_per_client\": %d,\n",
                 requestsPerClient);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const BenchRow& r = rows[i];
        std::fprintf(f,
                     "    {\"mode\": \"%s\", \"clients\": %d, "
                     "\"shards\": %d, \"pairs_per_sec\": %.1f, "
                     "\"trees_encoded\": %llu, \"p99_ms\": %.3f}%s\n",
                     r.mode.c_str(), r.clients, r.shards,
                     r.pairsPerSec,
                     static_cast<unsigned long long>(r.treesEncoded),
                     r.p99Ms, i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    std::string jsonPath;
    for (int a = 1; a + 1 < argc; ++a)
        if (std::string(argv[a]) == "--json")
            jsonPath = argv[a + 1];

    std::printf("=====================================================\n");
    std::printf("ccsa bench: serve_throughput\n");
    std::printf("sync Engine vs AsyncServer vs ShardedServer\n");
    std::printf("scale: CCSA_SCALE=%.2f (set >1 for longer runs)\n",
                envScale());
    std::printf("=====================================================\n");

    const int poolSize = 48;
    const int requestsPerClient =
        std::max(50, static_cast<int>(150 * envScale()));

    std::vector<Ast> pool;
    pool.reserve(poolSize);
    for (int t = 0; t < poolSize; ++t)
        pool.push_back(makeVariant(t % 12 + 1, t / 12));

    std::printf("tree pool: %d distinct programs, cache capacity 12 "
                "per shard, %d requests/client\n\n",
                poolSize, requestsPerClient);

    std::vector<BenchRow> rows;

    // ------------------------------------------- sync vs async sweep
    TextTable table({"clients", "sync pairs/s", "async pairs/s",
                     "speedup", "sync encodes", "async encodes",
                     "batches", "mean batch"});
    const int gateClients = 8;

    for (int clients : {1, 2, 4, 8}) {
        std::vector<std::vector<WorkItem>> streams;
        for (int c = 0; c < clients; ++c)
            streams.push_back(
                clientStream(c, requestsPerClient, poolSize));
        const double totalPairs =
            static_cast<double>(clients) * requestsPerClient;

        // ---- synchronous: every client blocks on its own request.
        double syncRate = 0.0;
        std::uint64_t syncEncoded = 0;
        {
            Engine engine(servingOptions());
            auto start = std::chrono::steady_clock::now();
            std::vector<std::thread> threads;
            for (int c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    for (const WorkItem& w :
                         streams[static_cast<std::size_t>(c)]) {
                        auto p = engine.compareMany(
                            {Engine::PairRequest{
                                &pool[static_cast<std::size_t>(
                                    w.first)],
                                &pool[static_cast<std::size_t>(
                                    w.second)]}});
                        if (!p.isOk())
                            std::fprintf(stderr, "sync: %s\n",
                                         p.status()
                                             .toString()
                                             .c_str());
                    }
                });
            }
            for (std::thread& t : threads)
                t.join();
            syncRate = totalPairs / secondsSince(start);
            syncEncoded = engine.stats().treesEncoded;
        }
        rows.push_back(BenchRow{"sync", clients, 0, syncRate,
                                syncEncoded});

        // ---- async: one batcher coalescing across every client.
        double asyncRate = 0.0;
        std::uint64_t asyncEncoded = 0;
        std::uint64_t batches = 0;
        double meanBatch = 0.0;
        {
            Engine engine(servingOptions());
            AsyncServer server(
                engine, AsyncServer::Options()
                            .withQueueCapacity(1024)
                            .withMaxBatchSize(256)
                            .withMaxBatchDelay(
                                std::chrono::microseconds(1000)));
            asyncRate = runPipelinedClients(
                clients, streams, pool,
                [&server](const Ast& a, const Ast& b) {
                    return server.submitCompare(a, b);
                });
            ServerStats stats = server.stats();
            asyncEncoded = stats.engine.treesEncoded;
            batches = stats.batches;
            meanBatch = stats.batchSizes.meanValue();
        }
        rows.push_back(BenchRow{"async", clients, 0, asyncRate,
                                asyncEncoded});

        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      asyncRate / syncRate);
        char meanBatchStr[32];
        std::snprintf(meanBatchStr, sizeof(meanBatchStr), "%.1f",
                      meanBatch);
        table.addRow({std::to_string(clients),
                      std::to_string(static_cast<long>(syncRate)),
                      std::to_string(static_cast<long>(asyncRate)),
                      speedup, std::to_string(syncEncoded),
                      std::to_string(asyncEncoded),
                      std::to_string(batches), meanBatchStr});
    }

    table.print(std::cout);
    std::printf("\nasync wins by encoding each distinct tree once per"
                " coalesced batch,\nwhere the thrashing synchronous"
                " cache re-encodes almost every request.\n");

    // -------------------------- sharded scaling, interactive clients
    // Depth-1 closed-loop clients: batches are capped at one pair
    // per client, so the giant pipelined batches above cannot form
    // and the single 12-entry cache thrashes against the 48-tree
    // pool. This is the latency-bound serving regime sharding is
    // for; the AsyncServer row below is the single-batcher baseline
    // under the SAME client behaviour.
    std::printf("\ninteractive clients (1 outstanding request each), "
                "%d clients:\n\n",
                gateClients);
    std::vector<std::vector<WorkItem>> streams;
    for (int c = 0; c < gateClients; ++c)
        streams.push_back(
            clientStream(c, requestsPerClient, poolSize));

    double asyncClosedRate = 0.0;
    std::uint64_t asyncClosedEncoded = 0;
    {
        Engine engine(servingOptions());
        AsyncServer server(
            engine, AsyncServer::Options()
                        .withQueueCapacity(1024)
                        .withMaxBatchSize(256)
                        .withMaxBatchDelay(
                            std::chrono::microseconds(200)));
        asyncClosedRate = runClosedLoopClients(
            gateClients, streams, pool,
            [&server](const Ast& a, const Ast& b) {
                return server.submitCompare(a, b);
            });
        asyncClosedEncoded = server.stats().engine.treesEncoded;
    }
    rows.push_back(BenchRow{"async_closed", gateClients, 0,
                            asyncClosedRate, asyncClosedEncoded});
    std::printf("single batcher (AsyncServer): %ld pairs/s, %llu"
                " trees encoded\n\n",
                static_cast<long>(asyncClosedRate),
                static_cast<unsigned long long>(asyncClosedEncoded));

    TextTable shardTable({"shards", "pairs/s", "vs 1 batcher",
                          "encodes", "cache resident", "p99 ms"});
    for (int shards : {1, 2, 4, 8}) {
        ShardedServer server(
            servingOptions(),
            ShardedServer::Options()
                .withNumShards(static_cast<std::size_t>(shards))
                .withQueueCapacity(1024)
                .withMaxBatchSize(256)
                .withMaxBatchDelay(std::chrono::microseconds(200))
                .withThreadsPerShard(1));
        double rate = runClosedLoopClients(
            gateClients, streams, pool,
            [&server](const Ast& a, const Ast& b) {
                return server.submitCompare(a, b);
            });
        ShardedServerStats stats = server.stats();
        rows.push_back(BenchRow{"sharded", gateClients, shards, rate,
                                stats.aggregate.engine.treesEncoded});

        char vsAsync[32];
        std::snprintf(vsAsync, sizeof(vsAsync), "%.2fx",
                      rate / asyncClosedRate);
        char p99[32];
        std::snprintf(p99, sizeof(p99), "%.2f",
                      stats.aggregate.latencyP99Ms);
        shardTable.addRow(
            {std::to_string(shards),
             std::to_string(static_cast<long>(rate)), vsAsync,
             std::to_string(stats.aggregate.engine.treesEncoded),
             std::to_string(server.cache().size()) + "/" +
                 std::to_string(server.cache().numShards() *
                                server.cache().capacityPerShard()),
             p99});
    }
    shardTable.print(std::cout);
    std::printf("\nsharding wins twice: N coalesced batches execute"
                " concurrently, and the\npartitioned cache keeps"
                " numShards x 12 latents resident, so the re-encode\n"
                "storm the small single caches suffer above fades"
                " as shards are added.\n");

    // -------------- process isolation: crash-isolated worker fleet
    // The same interactive workload on ProcessShardedServer at 4
    // shards: every request now pays tree serialization (cold trees
    // only, thanks to the residency mirror) plus one pipelined
    // socketpair round trip per batch. That tax buys crash isolation
    // (a SIGKILLed worker costs one shard's in-flight batch, not the
    // process), so the gate is a floor on the isolation overhead,
    // not a speedup: ipc >= 0.45x the in-process sharded rate at 4
    // shards (tools/check_bench_serve.py).
    //
    // Per-worker caches are provisioned POOL-RESIDENT (48 entries,
    // not the in-process 12-per-shard): the in-process server's
    // digest-partitioned cache is shared, so 4x12 holds the whole
    // pool once, while worker processes cannot share latents across
    // address spaces and digest routing shows every worker the whole
    // pool. At 12 each worker thrashes (measured ~0.11x — a cache
    // geometry artifact, not wire overhead); at pool size the row
    // isolates the serialization + RPC tax the gate is about.
    {
        const int ipcShards = 4;
        auto model = std::make_shared<ComparativePredictor>(
            servingOptions().encoder, 42);
        ProcessShardedServer server(
            model, ProcessShardedServer::Options()
                       .withNumShards(
                           static_cast<std::size_t>(ipcShards))
                       .withQueueCapacity(1024)
                       .withMaxBatchSize(256)
                       .withMaxBatchDelay(
                           std::chrono::microseconds(200))
                       .withCachePerWorker(
                           static_cast<std::size_t>(poolSize)));
        double ipcRate = runClosedLoopClients(
            gateClients, streams, pool,
            [&server](const Ast& a, const Ast& b) {
                return server.submitCompare(a, b);
            });
        rows.push_back(
            BenchRow{"ipc", gateClients, ipcShards, ipcRate, 0});
        std::printf(
            "\nprocess-sharded serving (%d crash-isolated worker"
            " processes):\n  ipc %10.0f pairs/s  (%.2fx in-process"
            " sharded-%d, CI floor 0.45x)\n",
            ipcShards, ipcRate,
            ipcRate /
                std::max(1.0,
                         [&rows, ipcShards] {
                             for (const BenchRow& r : rows)
                                 if (r.mode == "sharded" &&
                                     r.shards == ipcShards)
                                     return r.pairsPerSec;
                             return 1.0;
                         }()),
            ipcShards);
    }

    // ---------------------- registry overhead, single-model traffic
    // The same deterministic batched workload through a direct
    // Engine and through a registry-backed one serving the SAME
    // model object. Both see identical cache behaviour (one
    // namespace, same capacity); the only delta is the per-batch
    // name resolution, which must stay in the noise.
    {
        const int batchPairs = 16;
        const int registryRounds =
            std::max(40, static_cast<int>(120 * envScale()));
        std::vector<WorkItem> stream =
            clientStream(99, registryRounds * batchPairs, poolSize);
        auto runBatches = [&](Engine& engine) {
            auto start = std::chrono::steady_clock::now();
            std::size_t cursor = 0;
            for (int r = 0; r < registryRounds; ++r) {
                std::vector<Engine::PairRequest> request;
                request.reserve(batchPairs);
                for (int k = 0; k < batchPairs; ++k) {
                    const WorkItem& w = stream[cursor++];
                    request.push_back(
                        {&pool[static_cast<std::size_t>(w.first)],
                         &pool[static_cast<std::size_t>(w.second)]});
                }
                auto probs = engine.compareMany(request);
                if (!probs.isOk())
                    std::fprintf(stderr, "registry bench: %s\n",
                                 probs.status().toString().c_str());
            }
            double total = static_cast<double>(registryRounds) *
                static_cast<double>(batchPairs);
            return total / secondsSince(start);
        };

        auto model = std::make_shared<ComparativePredictor>(
            servingOptions().encoder, 42);
        double directRate = 0.0, registryRate = 0.0;
        {
            Engine direct(model, servingOptions());
            directRate = runBatches(direct);
        }
        {
            auto registry = std::make_shared<ModelRegistry>();
            registry->publish("prod", model);
            Engine viaRegistry(registry, servingOptions());
            registryRate = runBatches(viaRegistry);
        }
        rows.push_back(BenchRow{"engine_direct", 1, 0, directRate,
                                0});
        rows.push_back(BenchRow{"engine_registry", 1, 0,
                                registryRate, 0});
        std::printf("\nregistry overhead (single model, %d-pair "
                    "batches):\n  direct Engine   %10.0f pairs/s\n"
                    "  via registry    %10.0f pairs/s  (%.3fx, CI "
                    "floor 0.95x)\n",
                    batchPairs, directRate, registryRate,
                    registryRate / directRate);
    }

    // ------------------ admission control: noisy-neighbor isolation
    // Two tenants share one AsyncServer. "fg" is an interactive
    // closed-loop fleet; "bulk" floods quota-capped batch-class
    // compareMany traffic from a free-running thread. The token
    // bucket sheds the flood at submit time and the two-lane batcher
    // flushes the interactive lane on its own deadline, so the fg
    // p99 under flood must stay within 3x of the flood-free run
    // (gated by tools/check_bench_serve.py).
    {
        const int fgClients = 4;
        std::vector<std::vector<WorkItem>> fgStreams;
        for (int c = 0; c < fgClients; ++c)
            fgStreams.push_back(
                clientStream(200 + c, requestsPerClient, poolSize));

        auto runTenantScenario = [&](bool flood, double& p99Ms,
                                     std::uint64_t& shed) {
            AdmissionController admission;
            // ~500 admitted flood pairs/s sustained; everything above
            // is rejected before it can touch the queue.
            admission.setQuota(
                "bulk", AdmissionController::Quota{500.0, 32.0});
            Engine engine(servingOptions());
            AsyncServer server(
                engine, AsyncServer::Options()
                            .withQueueCapacity(1024)
                            .withMaxBatchSize(256)
                            .withMaxBatchDelay(
                                std::chrono::microseconds(200))
                            .withAdmission(&admission));
            std::atomic<bool> stop{false};
            std::thread flooder;
            if (flood)
                flooder = std::thread([&] {
                    Rng rng(4242);
                    const SubmitOptions bulk =
                        SubmitOptions().withTenant("bulk").withPriority(
                            Priority::kBatch);
                    std::vector<
                        std::future<Result<std::vector<double>>>>
                        inflight;
                    while (!stop.load(std::memory_order_relaxed)) {
                        std::vector<Engine::PairRequest> pairs;
                        pairs.reserve(16);
                        for (int k = 0; k < 16; ++k) {
                            int i = rng.uniformInt(0, poolSize - 1);
                            int j = rng.uniformInt(0, poolSize - 2);
                            if (j >= i)
                                ++j;
                            pairs.push_back(
                                {&pool[static_cast<std::size_t>(i)],
                                 &pool[static_cast<std::size_t>(
                                     j)]});
                        }
                        inflight.push_back(
                            server.submitCompareMany(bulk, pairs));
                        if (inflight.size() >= 8) {
                            for (auto& f : inflight)
                                f.wait();
                            inflight.clear();
                            // Breathe between salvos so the rejected
                            // submissions don't degenerate into a
                            // pure admission-mutex spin.
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(500));
                        }
                    }
                    for (auto& f : inflight)
                        f.wait();
                });
            const SubmitOptions fg =
                SubmitOptions().withTenant("fg");
            double rate = runClosedLoopClients(
                fgClients, fgStreams, pool,
                [&server, &fg](const Ast& a, const Ast& b) {
                    return server.submitCompare(fg, a, b);
                });
            stop.store(true, std::memory_order_relaxed);
            if (flooder.joinable())
                flooder.join();
            ServerStats stats = server.stats();
            p99Ms = 0.0;
            for (const TenantStats& t : stats.tenants)
                if (t.tenant == "fg")
                    p99Ms = t.latencyP99Ms;
            shed = 0;
            for (const auto& row : admission.stats())
                if (row.tenant == "bulk")
                    shed = row.rejected;
            return rate;
        };

        double soloP99 = 0.0, floodP99 = 0.0;
        std::uint64_t soloShed = 0, floodShed = 0;
        double soloRate =
            runTenantScenario(false, soloP99, soloShed);
        double floodRate =
            runTenantScenario(true, floodP99, floodShed);
        rows.push_back(BenchRow{"tenant_solo", fgClients, 0, soloRate,
                                0, soloP99});
        rows.push_back(BenchRow{"tenant_flood", fgClients, 0,
                                floodRate, 0, floodP99});
        std::printf(
            "\nnoisy neighbor (%d interactive clients, quota-capped"
            " bulk flood):\n  solo   p99 %7.2f ms  %8.0f pairs/s\n"
            "  flood  p99 %7.2f ms  %8.0f pairs/s  (%.2fx p99, CI"
            " ceiling 3x;\n          %llu flood requests shed by"
            " admission)\n",
            fgClients, soloP99, soloRate, floodP99, floodRate,
            soloP99 > 0.0 ? floodP99 / soloP99 : 0.0,
            static_cast<unsigned long long>(floodShed));
    }

    // -------------------- metrics overhead: instrumented vs bare
    // The same interactive closed-loop workload through two
    // identically configured AsyncServers: one bare, one with the
    // full metrics plane attached (engine phase histograms,
    // per-request latency histograms, SLO tracking, and a 100 ms
    // background sampler sweeping gauges the whole run). Recording
    // is a handful of relaxed atomic adds outside the server's
    // stats mutex, so the instrumented path must stay >= 0.97x
    // bare (gated by tools/check_bench_serve.py).
    {
        auto runMetricsScenario = [&](bool instrumented) {
            MetricsRegistry metrics;
            SloTracker slo(metrics);
            slo.setObjective("model", "",
                             SloTracker::Objective()
                                 .withLatencyThresholdUs(5000));
            MetricsSampler sampler(
                metrics, MetricsSampler::Options().withPeriod(
                             std::chrono::milliseconds(100)));
            Engine engine(instrumented
                              ? servingOptions().withMetrics(&metrics)
                              : servingOptions());
            AsyncServer::Options opts =
                AsyncServer::Options()
                    .withQueueCapacity(1024)
                    .withMaxBatchSize(256)
                    .withMaxBatchDelay(
                        std::chrono::microseconds(200));
            if (instrumented)
                opts = opts.withMetrics(&metrics).withSlo(&slo);
            AsyncServer server(engine, opts);
            if (instrumented) {
                sampler.addProbe(
                    [&server] { server.sampleMetrics(); });
                sampler.addProbe([&slo] { slo.publishGauges(); });
                sampler.start();
            }
            double rate = runClosedLoopClients(
                gateClients, streams, pool,
                [&server](const Ast& a, const Ast& b) {
                    return server.submitCompare(a, b);
                });
            sampler.stop();
            return rate;
        };

        double offRate = runMetricsScenario(false);
        double onRate = runMetricsScenario(true);
        rows.push_back(BenchRow{"metrics_off", gateClients, 0,
                                offRate, 0});
        rows.push_back(BenchRow{"metrics_on", gateClients, 0, onRate,
                                0});
        std::printf(
            "\nmetrics overhead (%d interactive clients, full"
            " instrumentation):\n  metrics off %10.0f pairs/s\n"
            "  metrics on  %10.0f pairs/s  (%.3fx, CI floor"
            " 0.97x)\n",
            gateClients, offRate, onRate, onRate / offRate);
    }

    if (!jsonPath.empty())
        writeJson(jsonPath, poolSize, requestsPerClient, rows);
    return 0;
}
