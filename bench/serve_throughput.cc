/**
 * @file
 * Serving-throughput comparison: N closed-loop clients calling the
 * synchronous Engine one request at a time vs the same N clients
 * submitting through AsyncServer futures with cross-request dynamic
 * batching.
 *
 * The workload models a busy ranking service under cache pressure:
 * requests draw pairs from a tree pool larger than the encoding
 * cache, so the synchronous path keeps re-encoding evicted trees,
 * while the batcher dedups every tree that co-occurs inside one
 * coalesced batch before the cache is even consulted. The report
 * includes trees-encoded counts so the mechanism (not just the
 * speedup) is visible.
 *
 * Usage: ./serve_throughput  (CCSA_SCALE scales requests per client)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "frontend/parser.hh"
#include "serve/async_server.hh"

using namespace ccsa;

namespace
{

/** Distinct tiny program: `loops` loops plus `pad` extra decls. */
Ast
makeVariant(int loops, int pad)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int p = 0; p < pad; ++p)
        src += " int pad" + std::to_string(p) + " = " +
            std::to_string(p) + ";\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return parseAndPrune(src);
}

Engine::Options
servingOptions()
{
    // A cache smaller than the tree pool: the memory-pressure regime
    // where cross-request dedup pays the most.
    return Engine::Options()
        .withEmbedDim(24)
        .withHiddenDim(32)
        .withSeed(42)
        .withThreads(0)
        .withCacheCapacity(8);
}

struct WorkItem
{
    int first;
    int second;
};

/** Deterministic per-client request stream over the tree pool. */
std::vector<WorkItem>
clientStream(int client, int requests, int poolSize)
{
    Rng rng(1000 + static_cast<std::uint64_t>(client));
    std::vector<WorkItem> items;
    items.reserve(static_cast<std::size_t>(requests));
    for (int k = 0; k < requests; ++k) {
        int i = rng.uniformInt(0, poolSize - 1);
        int j = rng.uniformInt(0, poolSize - 2);
        if (j >= i)
            ++j;
        items.push_back(WorkItem{i, j});
    }
    return items;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    std::printf("=====================================================\n");
    std::printf("ccsa bench: serve_throughput\n");
    std::printf("sync Engine per-request vs AsyncServer dynamic "
                "batching\n");
    std::printf("scale: CCSA_SCALE=%.2f (set >1 for longer runs)\n",
                envScale());
    std::printf("=====================================================\n");

    const int poolSize = 48;
    const int requestsPerClient =
        std::max(50, static_cast<int>(150 * envScale()));

    std::vector<Ast> pool;
    pool.reserve(poolSize);
    for (int t = 0; t < poolSize; ++t)
        pool.push_back(makeVariant(t % 12 + 1, t / 12));

    std::printf("tree pool: %d distinct programs, cache capacity 8, "
                "%d requests/client\n\n",
                poolSize, requestsPerClient);

    TextTable table({"clients", "sync pairs/s", "async pairs/s",
                     "speedup", "sync encodes", "async encodes",
                     "batches", "mean batch"});

    for (int clients : {1, 2, 4, 8}) {
        std::vector<std::vector<WorkItem>> streams;
        for (int c = 0; c < clients; ++c)
            streams.push_back(
                clientStream(c, requestsPerClient, poolSize));
        const double totalPairs =
            static_cast<double>(clients) * requestsPerClient;

        // ---- synchronous: every client blocks on its own request.
        double syncRate = 0.0;
        std::uint64_t syncEncoded = 0;
        {
            Engine engine(servingOptions());
            auto start = std::chrono::steady_clock::now();
            std::vector<std::thread> threads;
            for (int c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    for (const WorkItem& w :
                         streams[static_cast<std::size_t>(c)]) {
                        auto p = engine.compareMany(
                            {Engine::PairRequest{
                                &pool[static_cast<std::size_t>(
                                    w.first)],
                                &pool[static_cast<std::size_t>(
                                    w.second)]}});
                        if (!p.isOk())
                            std::fprintf(stderr, "sync: %s\n",
                                         p.status()
                                             .toString()
                                             .c_str());
                    }
                });
            }
            for (std::thread& t : threads)
                t.join();
            syncRate = totalPairs / secondsSince(start);
            syncEncoded = engine.stats().treesEncoded;
        }

        // ---- async: clients pipeline submissions through futures;
        // the batcher coalesces across every in-flight request.
        double asyncRate = 0.0;
        std::uint64_t asyncEncoded = 0;
        std::uint64_t batches = 0;
        double meanBatch = 0.0;
        {
            Engine engine(servingOptions());
            AsyncServer server(
                engine, AsyncServer::Options()
                            .withQueueCapacity(1024)
                            .withMaxBatchSize(256)
                            .withMaxBatchDelay(
                                std::chrono::microseconds(1000)));
            auto start = std::chrono::steady_clock::now();
            std::vector<std::thread> threads;
            for (int c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    std::vector<std::future<Result<double>>> futures;
                    futures.reserve(streams[0].size());
                    for (const WorkItem& w :
                         streams[static_cast<std::size_t>(c)])
                        futures.push_back(server.submitCompare(
                            pool[static_cast<std::size_t>(w.first)],
                            pool[static_cast<std::size_t>(
                                w.second)]));
                    for (auto& f : futures) {
                        Result<double> r = f.get();
                        if (!r.isOk())
                            std::fprintf(stderr, "async: %s\n",
                                         r.status()
                                             .toString()
                                             .c_str());
                    }
                });
            }
            for (std::thread& t : threads)
                t.join();
            asyncRate = totalPairs / secondsSince(start);
            ServerStats stats = server.stats();
            asyncEncoded = stats.engine.treesEncoded;
            batches = stats.batches;
            meanBatch = stats.batchSizes.meanValue();
        }

        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      asyncRate / syncRate);
        char meanBatchStr[32];
        std::snprintf(meanBatchStr, sizeof(meanBatchStr), "%.1f",
                      meanBatch);
        table.addRow({std::to_string(clients),
                      std::to_string(static_cast<long>(syncRate)),
                      std::to_string(static_cast<long>(asyncRate)),
                      speedup, std::to_string(syncEncoded),
                      std::to_string(asyncEncoded),
                      std::to_string(batches), meanBatchStr});
    }

    table.print(std::cout);
    std::printf("\nasync wins by encoding each distinct tree once per"
                " coalesced batch,\nwhere the thrashing synchronous"
                " cache re-encodes almost every request.\n");
    return 0;
}
