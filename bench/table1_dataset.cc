/**
 * @file
 * Regenerates Table I: per-problem statistics of the corpus (solution
 * count and runtime min / median / max / stddev in ms), printed next
 * to the values the paper reports for the Codeforces originals.
 */

#include <cstdio>
#include <iostream>

#include "base/stats.hh"
#include "bench_util.hh"
#include "dataset/corpus.hh"

using namespace ccsa;

int
main()
{
    bench::banner("table1_dataset",
                  "Table I — selected problems and runtime statistics");

    int per_problem = static_cast<int>(120 * envScale());
    std::printf("generating %d submissions per problem...\n\n",
                per_problem);

    TextTable table({"Tag", "Contest", "Algorithms", "Count",
                     "Min(ms)", "Median(ms)", "Max(ms)", "StdDev",
                     "paper: Count", "Min", "Median", "Max", "StdDev"});

    for (const auto& spec : tableISpecs()) {
        Corpus corpus = Corpus::generate(spec, per_problem, 42);
        Summary s = summarize(corpus.runtimes());
        table.addRow({spec.tag, spec.contest,
                      familyAlgorithms(spec.family),
                      std::to_string(per_problem),
                      fmtDouble(s.min, 0), fmtDouble(s.median, 0),
                      fmtDouble(s.max, 0), fmtDouble(s.stddev, 0),
                      std::to_string(spec.paperCount),
                      fmtDouble(spec.paperMinMs, 0),
                      fmtDouble(spec.paperMedianMs, 0),
                      fmtDouble(spec.paperMaxMs, 0),
                      fmtDouble(spec.paperStdDev, 0)});
    }
    table.print(std::cout);
    table.writeCsv("table1_dataset.csv");

    std::printf("\nPaper corpus context: 1,278 problems, 4,313,322 "
                "correct solutions crawled from Codeforces;\n"
                "this reproduction generates solutions on demand via "
                "src/codegen + src/judge (see DESIGN.md).\n");
    return 0;
}
