/**
 * @file
 * Regenerates Table II: cross-problem accuracy matrix for the
 * DFS/graph algorithm group. Models trained on problems F, G, I are
 * each evaluated on pairs from F, G, I. Expected shape: F and G share
 * the full algorithm class (DFS/Graphs/Trees) and transfer well to
 * each other; I overlaps only partially (DFS/DP/Graphs), so F->I and
 * G->I are the weakest cells, while I->I stays strong.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace ccsa;

int
main()
{
    bench::banner("table2_cross_problem",
                  "Table II — transfer inside the DFS/graph group "
                  "(paper: F/G/I matrix, 0.67-0.82)");

    ExperimentConfig cfg = bench::defaultConfig();
    std::vector<ProblemFamily> group{ProblemFamily::F,
                                     ProblemFamily::G,
                                     ProblemFamily::I};

    TextTable table({"train\\test", "F", "G", "I"});
    for (ProblemFamily train_family : group) {
        const ProblemSpec& spec = tableISpec(train_family);
        TrainedModel tm = trainOnProblem(spec, cfg);
        std::vector<std::string> row{spec.tag};
        for (ProblemFamily test_family : group) {
            double acc;
            if (test_family == train_family)
                acc = evalHeldOut(tm, cfg);
            else
                acc = evalCrossProblem(tm, tableISpec(test_family),
                                       cfg);
            row.push_back(fmtDouble(acc, 2));
            std::printf("  %s -> %s: %.3f\n", spec.tag.c_str(),
                        tableISpec(test_family).tag.c_str(), acc);
        }
        table.addRow(row);
        bench::engineReport(tm);
    }

    std::printf("\n");
    table.print(std::cout);
    table.writeCsv("table2_cross_problem.csv");
    std::printf("\nPaper Table II:\n"
                "      F    G    I\n"
                "  F  .80  .72  .67\n"
                "  G  .82  .76  .68\n"
                "  I  .76  .67  .77\n");
    return 0;
}
