/**
 * @file
 * Regenerates Table III: impact of the tree-LSTM architecture choice
 * on problems A and C — uni- and bi-directional stacks of 1-3 layers
 * plus the 3-layer alternating variant. Expected shape: adding layers
 * changes accuracy insignificantly; the alternating architecture is
 * equal-or-best while training with half the bi-directional
 * parameters (the paper reports 0.77 on A and 0.804 on C for it).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace ccsa;

namespace
{

double
run(const ProblemSpec& spec, nn::TreeArch arch, int layers,
    const ExperimentConfig& base, std::size_t* params_out = nullptr)
{
    ExperimentConfig cfg = base;
    cfg.encoder.arch = arch;
    cfg.encoder.layers = layers;
    TrainedModel tm = trainOnProblem(spec, cfg);
    if (params_out)
        *params_out = tm.model->parameterCount();
    return evalHeldOut(tm, cfg);
}

} // namespace

int
main()
{
    bench::banner("table3_architecture",
                  "Table III — uni/bi/alternating tree-LSTM layers "
                  "on problems A and C");

    ExperimentConfig cfg = bench::defaultConfig();

    TextTable table({"Problem", "Architecture", "Layers", "Params",
                     "Accuracy"});

    for (ProblemFamily family : {ProblemFamily::A, ProblemFamily::C}) {
        const ProblemSpec& spec = tableISpec(family);
        for (int layers = 1; layers <= 3; ++layers) {
            for (nn::TreeArch arch : {nn::TreeArch::Uni,
                                      nn::TreeArch::Bi}) {
                std::size_t params = 0;
                double acc = run(spec, arch, layers, cfg, &params);
                table.addRow({spec.tag, treeArchName(arch),
                              std::to_string(layers),
                              std::to_string(params),
                              fmtDouble(acc, 3)});
                std::printf("  [%s] %s x%d: acc=%.3f (%zu params)\n",
                            spec.tag.c_str(), treeArchName(arch),
                            layers, acc, params);
            }
        }
        std::size_t params = 0;
        double acc = run(spec, nn::TreeArch::Alternating, 3, cfg,
                         &params);
        table.addRow({spec.tag, treeArchName(nn::TreeArch::Alternating),
                      "3", std::to_string(params), fmtDouble(acc, 3)});
        std::printf("  [%s] alternating x3: acc=%.3f (%zu params)\n",
                    spec.tag.c_str(), acc, params);
    }

    std::printf("\n");
    table.print(std::cout);
    table.writeCsv("table3_architecture.csv");
    std::printf("\nPaper Table III: uni 0.773-0.789, bi 0.767-0.786 "
                "(layers 1-3 ~flat); alternating 0.77 (A) and "
                "0.804 (C).\n");
    return 0;
}
