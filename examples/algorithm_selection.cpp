/**
 * @file
 * Use case 1 of the paper's introduction: "selecting the best
 * algorithm to solve a problem out of several alternative
 * solutions". Candidate solutions to problem C (greedy + sorting)
 * are ranked by round-robin pairwise comparison with the trained
 * predictor, then checked against the simulated judge's ground
 * truth.
 *
 * Usage: ./algorithm_selection
 */

#include <algorithm>
#include <cstdio>

#include "eval/experiment.hh"
#include "frontend/parser.hh"

using namespace ccsa;

int
main()
{
    std::printf("=== algorithm selection ===\n\n");

    const ProblemSpec& spec = tableISpec(ProblemFamily::C);

    std::printf("[1/3] training a predictor on problem %s (%s)...\n",
                spec.tag.c_str(), familyAlgorithms(spec.family));
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 24;
    cfg.encoder.hiddenDim = 32;
    cfg.submissionsPerProblem = 60;
    cfg.train.epochs = 3;
    cfg.trainPairs.maxPairs = 800;
    TrainedModel tm = trainOnProblem(spec, cfg);
    std::printf("      held-out accuracy: %.3f\n\n",
                evalHeldOut(tm, cfg));

    // Candidate pool: one fresh solution per algorithm variant.
    std::printf("[2/3] generating candidate implementations...\n");
    auto gen = makeGenerator(spec.family, spec.problemSeed);
    SimulatedJudge judge(spec.judge);
    Rng rng(2024);

    struct Candidate
    {
        std::string name;
        Ast ast;
        double judgeMs;
    };
    std::vector<Candidate> candidates;
    const char* names[] = {"counting-sort", "std::sort",
                           "bubble-sort"};
    for (int v = 0; v < gen->numVariants(); ++v) {
        Candidate c;
        c.name = names[v];
        GeneratedSolution sol = gen->generateVariant(v, rng);
        c.ast = parseAndPrune(sol.source);
        c.judgeMs = judge.deterministicMs(c.ast);
        candidates.push_back(std::move(c));
    }

    // One rank() request runs the whole round-robin tournament:
    // every ordered pair is compared, but each candidate tree is
    // encoded exactly once thanks to the engine's encoding cache.
    std::printf("[3/3] round-robin comparison via Engine::rank..."
                "\n\n");
    std::vector<const Ast*> pool;
    for (const Candidate& c : candidates)
        pool.push_back(&c.ast);
    Result<std::vector<Engine::RankedCandidate>> ranking =
        tm.engine->rank(pool);
    if (!ranking.isOk()) {
        std::printf("  ranking failed: %s\n",
                    ranking.status().toString().c_str());
        return 1;
    }
    const auto& ranked = ranking.value();

    std::printf("  rank  candidate       model wins   P(faster)   "
                "judge runtime\n");
    std::printf("  ----  -------------   ----------   ---------   "
                "-------------\n");
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const Candidate& c = candidates[ranked[i].index];
        std::printf("   %zu    %-14s  %6d       %7.3f   %9.1f ms\n",
                    i + 1, c.name.c_str(), ranked[i].wins,
                    ranked[i].meanProbFaster, c.judgeMs);
    }

    // Near-identical runtimes are ties: what matters is that no
    // clearly slower candidate is ranked above a clearly faster one.
    bool agrees = true;
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        double prev = candidates[ranked[i - 1].index].judgeMs;
        double cur = candidates[ranked[i].index].judgeMs;
        if (prev > 1.1 * cur)
            agrees = false;
    }
    std::printf("\n  model ranking %s the judge's ground truth "
                "(ties within 10%% allowed).\n",
                agrees ? "matches" : "deviates from");
    return 0;
}
