/**
 * @file
 * Use case 1 of the paper's introduction: "selecting the best
 * algorithm to solve a problem out of several alternative
 * solutions". Candidate solutions to problem C (greedy + sorting)
 * are ranked by round-robin pairwise comparison with the trained
 * predictor, then checked against the simulated judge's ground
 * truth.
 *
 * Usage: ./algorithm_selection
 */

#include <algorithm>
#include <cstdio>

#include "eval/experiment.hh"
#include "frontend/parser.hh"

using namespace ccsa;

int
main()
{
    std::printf("=== algorithm selection ===\n\n");

    const ProblemSpec& spec = tableISpec(ProblemFamily::C);

    std::printf("[1/3] training a predictor on problem %s (%s)...\n",
                spec.tag.c_str(), familyAlgorithms(spec.family));
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 24;
    cfg.encoder.hiddenDim = 32;
    cfg.submissionsPerProblem = 60;
    cfg.train.epochs = 3;
    cfg.trainPairs.maxPairs = 800;
    TrainedModel tm = trainOnProblem(spec, cfg);
    std::printf("      held-out accuracy: %.3f\n\n",
                evalHeldOut(tm, cfg));

    // Candidate pool: one fresh solution per algorithm variant.
    std::printf("[2/3] generating candidate implementations...\n");
    auto gen = makeGenerator(spec.family, spec.problemSeed);
    SimulatedJudge judge(spec.judge);
    Rng rng(2024);

    struct Candidate
    {
        std::string name;
        Ast ast;
        double judgeMs;
        int wins = 0;
    };
    std::vector<Candidate> candidates;
    const char* names[] = {"counting-sort", "std::sort",
                           "bubble-sort"};
    for (int v = 0; v < gen->numVariants(); ++v) {
        Candidate c;
        c.name = names[v];
        GeneratedSolution sol = gen->generateVariant(v, rng);
        c.ast = parseAndPrune(sol.source);
        c.judgeMs = judge.deterministicMs(c.ast);
        candidates.push_back(std::move(c));
    }

    // Round-robin: a candidate scores a win when the model predicts
    // it is the faster element of the pair.
    std::printf("[3/3] round-robin comparison...\n\n");
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        for (std::size_t j = 0; j < candidates.size(); ++j) {
            if (i == j)
                continue;
            double p = tm.model->probFirstSlower(candidates[i].ast,
                                                 candidates[j].ast);
            if (p >= 0.5)
                candidates[j].wins++;
            else
                candidates[i].wins++;
        }
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  return a.wins > b.wins;
              });

    std::printf("  rank  candidate       model wins   judge runtime\n");
    std::printf("  ----  -------------   ----------   -------------\n");
    for (std::size_t i = 0; i < candidates.size(); ++i)
        std::printf("   %zu    %-14s  %6d       %9.1f ms\n", i + 1,
                    candidates[i].name.c_str(), candidates[i].wins,
                    candidates[i].judgeMs);

    // Near-identical runtimes are ties: what matters is that no
    // clearly slower candidate is ranked above a clearly faster one.
    bool agrees = true;
    for (std::size_t i = 1; i < candidates.size(); ++i)
        if (candidates[i - 1].judgeMs > 1.1 * candidates[i].judgeMs)
            agrees = false;
    std::printf("\n  model ranking %s the judge's ground truth "
                "(ties within 10%% allowed).\n",
                agrees ? "matches" : "deviates from");
    return 0;
}
