/**
 * @file
 * Use case 2 of the paper's introduction: "predicting performance as
 * a code evolves". A program goes through a series of commits; after
 * each commit the predictor compares the new version against the
 * previous one and flags likely regressions — the nightly
 * performance-regression-test scenario of paper §VII, with no
 * execution required.
 *
 * Usage: ./code_evolution
 */

#include <cstdio>
#include <vector>

#include "eval/experiment.hh"

using namespace ccsa;

int
main()
{
    std::printf("=== code evolution watch ===\n\n");

    std::printf("[1/2] training a predictor on problem E...\n");
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 24;
    cfg.encoder.hiddenDim = 32;
    cfg.submissionsPerProblem = 60;
    cfg.train.epochs = 3;
    cfg.trainPairs.maxPairs = 800;
    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::E),
                                     cfg);
    std::printf("      held-out accuracy: %.3f\n\n",
                evalHeldOut(tm, cfg));

    // A small commit history: v2 introduces endl-flushing in a loop,
    // v3 makes the scan quadratic, v4 fixes both.
    struct Commit
    {
        const char* message;
        std::string source;
    };
    std::vector<Commit> history{
        {"v1: initial linear implementation", R"(
#include <bits/stdc++.h>
using namespace std;
int a[100005];
int freq[100005];
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; i++) cin >> a[i];
    long long total = 0;
    for (int i = 0; i < n; i++) {
        total += freq[a[i]];
        freq[a[i]] += 1;
    }
    cout << total << "\n";
    return 0;
}
)"},
        {"v2: add per-element progress output (endl flushes!)", R"(
#include <bits/stdc++.h>
using namespace std;
int a[100005];
int freq[100005];
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; i++) cin >> a[i];
    long long total = 0;
    for (int i = 0; i < n; i++) {
        total += freq[a[i]];
        freq[a[i]] += 1;
        cout << total << endl;
    }
    return 0;
}
)"},
        {"v3: 'simplify' by rescanning the prefix (quadratic)", R"(
#include <bits/stdc++.h>
using namespace std;
int a[100005];
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; i++) cin >> a[i];
    long long total = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < i; j++) {
            if (a[j] == a[i]) total++;
        }
        cout << total << endl;
    }
    return 0;
}
)"},
        {"v4: fix regression, back to linear + buffered output", R"(
#include <bits/stdc++.h>
using namespace std;
int a[100005];
int freq[100005];
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; i++) cin >> a[i];
    long long total = 0;
    for (int i = 0; i < n; i++) {
        total += freq[a[i]];
        freq[a[i]] += 1;
    }
    cout << total << "\n";
    return 0;
}
)"},
    };

    // One batched request covers the whole history: consecutive
    // commits share a tree, so the engine encodes each version once.
    std::printf("[2/2] replaying commit history...\n\n");
    Engine& engine = *tm.engine;
    std::vector<Ast> versions;
    versions.reserve(history.size());
    for (const Commit& commit : history) {
        Result<Ast> ast = Engine::parseSource(commit.source);
        if (!ast.isOk()) {
            std::printf("  unparseable commit (%s): %s\n",
                        commit.message,
                        ast.status().toString().c_str());
            return 1;
        }
        versions.push_back(ast.take());
    }
    std::vector<Engine::PairRequest> deltas;
    for (std::size_t i = 1; i < history.size(); ++i)
        deltas.push_back({&versions[i - 1], &versions[i]});
    Result<std::vector<double>> probs = engine.compareMany(deltas);
    if (!probs.isOk()) {
        std::printf("  comparison failed: %s\n",
                    probs.status().toString().c_str());
        return 1;
    }

    for (std::size_t i = 1; i < history.size(); ++i) {
        // P(previous slower) < 0.5 means the NEW version is slower:
        // flag it.
        double p_prev_slower = probs.value()[i - 1];
        bool regression = p_prev_slower < 0.5;
        std::printf("  commit %zu: %s\n", i + 1, history[i].message);
        std::printf("    P(new version faster) = %.3f -> %s\n\n",
                    p_prev_slower,
                    regression
                        ? "!! PERFORMANCE REGRESSION FLAGGED"
                        : "ok (no regression predicted)");
    }

    std::printf("expected: v2 and v3 flagged, v4 clean.\n");
    return 0;
}
