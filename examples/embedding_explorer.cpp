/**
 * @file
 * Explore the learned node-kind embedding space (paper Fig. 7a /
 * §VI-F): after training, print each syntactic category's members
 * and the nearest neighbours of a few interesting node kinds — the
 * paper observes for/while and the literal kinds grouping together.
 *
 * Usage: ./embedding_explorer
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "eval/experiment.hh"

using namespace ccsa;

namespace
{

double
distance(const Tensor& table, int a, int b)
{
    double s = 0.0;
    for (int j = 0; j < table.cols(); ++j) {
        double d = table.at(a, j) - table.at(b, j);
        s += d * d;
    }
    return std::sqrt(s);
}

void
printNeighbours(const Tensor& table, NodeKind kind, int k)
{
    std::vector<std::pair<double, int>> dists;
    for (int i = 0; i < kNumNodeKinds; ++i) {
        if (i == kindId(kind))
            continue;
        dists.emplace_back(distance(table, kindId(kind), i), i);
    }
    std::sort(dists.begin(), dists.end());
    std::printf("  %-14s ->", nodeKindName(kind));
    for (int i = 0; i < k; ++i)
        std::printf(" %s(%.2f)",
                    nodeKindName(static_cast<NodeKind>(
                        dists[i].second)),
                    dists[i].first);
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== embedding explorer ===\n\n");

    std::printf("[1/2] training on a problem mixture so the "
                "embedding sees all node kinds...\n");
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 24;
    cfg.encoder.hiddenDim = 32;
    cfg.train.epochs = 4;
    cfg.trainPairs.maxPairs = 1400;
    auto corpus = std::make_shared<Corpus>(
        Corpus::generateMixed(6, 22, 1234));
    TrainedModel tm = trainOnCorpus(corpus, cfg);
    std::printf("      held-out accuracy: %.3f\n\n",
                evalHeldOut(tm, cfg));

    // Weight-level access goes through the engine's model handle.
    const Tensor& table =
        tm.engine->model().encoder().embedding().table();

    std::printf("[2/2] nearest neighbours in embedding space "
                "(euclidean):\n\n");
    printNeighbours(table, NodeKind::ForStmt, 4);
    printNeighbours(table, NodeKind::WhileStmt, 4);
    printNeighbours(table, NodeKind::Add, 4);
    printNeighbours(table, NodeKind::IntLiteral, 4);
    printNeighbours(table, NodeKind::CallExpr, 4);
    printNeighbours(table, NodeKind::PostInc, 4);

    std::printf("\ncategory rosters (Fig. 7a colour classes):\n");
    for (NodeCategory cat : {NodeCategory::Support,
                             NodeCategory::Statement,
                             NodeCategory::Expression,
                             NodeCategory::Operation,
                             NodeCategory::Literal}) {
        std::printf("  %-11s:", nodeCategoryName(cat));
        int shown = 0;
        for (int i = 0; i < kNumNodeKinds && shown < 8; ++i) {
            auto kind = static_cast<NodeKind>(i);
            if (nodeKindCategory(kind) == cat) {
                std::printf(" %s", nodeKindName(kind));
                ++shown;
            }
        }
        std::printf(" ...\n");
    }
    return 0;
}
