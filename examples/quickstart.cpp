/**
 * @file
 * Quickstart: train a small comparative predictor on one problem and
 * ask it which of two hand-written programs will run faster.
 *
 * Usage: ./quickstart
 */

#include <cstdio>

#include "eval/experiment.hh"

using namespace ccsa;

int
main()
{
    std::printf("=== ccsa quickstart ===\n\n");

    // 1. Train a small model on generated solutions to problem E
    //    (the fastest family to judge).
    std::printf("[1/3] training a tree-LSTM predictor on problem E "
                "(~30s)...\n");
    ExperimentConfig cfg;
    cfg.encoder.embedDim = 24;
    cfg.encoder.hiddenDim = 32;
    cfg.submissionsPerProblem = 60;
    cfg.train.epochs = 3;
    cfg.trainPairs.maxPairs = 800;
    TrainedModel tm = trainOnProblem(tableISpec(ProblemFamily::E),
                                     cfg);
    std::printf("      held-out pairwise accuracy: %.3f\n\n",
                evalHeldOut(tm, cfg));

    // 2. Two implementations of the same task: count duplicate
    //    values. One rescans the prefix (quadratic), the other uses
    //    a counting array (linear).
    std::string quadratic = R"(
#include <bits/stdc++.h>
using namespace std;
int a[100005];
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; i++) cin >> a[i];
    long long dup = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < i; j++) {
            if (a[j] == a[i]) dup++;
        }
    }
    cout << dup << "\n";
    return 0;
}
)";
    std::string linear = R"(
#include <bits/stdc++.h>
using namespace std;
int a[100005];
int freq[100005];
int main() {
    int n;
    cin >> n;
    for (int i = 0; i < n; i++) cin >> a[i];
    long long dup = 0;
    for (int i = 0; i < n; i++) {
        dup += freq[a[i]];
        freq[a[i]] += 1;
    }
    cout << dup << "\n";
    return 0;
}
)";

    // 3. Compare through the serving engine: P(first slower) > 0.5
    //    means the second program is predicted to be the better
    //    version (paper Eq. 1). Parse errors come back as a Status
    //    instead of tearing the process down.
    std::printf("[2/3] comparing a quadratic rescan vs a counting "
                "array...\n");
    Engine& engine = *tm.engine;
    Result<double> p = engine.compareSources(quadratic, linear);
    if (!p.isOk()) {
        std::printf("      comparison failed: %s\n",
                    p.status().toString().c_str());
        return 1;
    }
    std::printf("      P(quadratic is slower) = %.3f -> %s\n\n",
                p.value(),
                p.value() >= 0.5
                    ? "prefer the counting-array version"
                    : "prefer the quadratic version (?)");

    std::printf("[3/3] sanity: reversed comparison\n");
    Result<double> q = engine.compareSources(linear, quadratic);
    if (!q.isOk()) {
        std::printf("      comparison failed: %s\n",
                    q.status().toString().c_str());
        return 1;
    }
    std::printf("      P(linear is slower)    = %.3f\n\n", q.value());

    Engine::Stats stats = engine.stats();
    std::printf("engine: %llu pairs served, %llu trees encoded, "
                "%llu cache hits\n\n",
                static_cast<unsigned long long>(stats.pairsServed),
                static_cast<unsigned long long>(stats.treesEncoded),
                static_cast<unsigned long long>(stats.cacheHits));

    std::printf("done. See examples/algorithm_selection.cpp and\n"
                "examples/code_evolution.cpp for the paper's other "
                "use cases.\n");
    return 0;
}
