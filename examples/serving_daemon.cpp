/**
 * @file
 * Serving daemon: the shape of a production deployment of ccsa. An
 * AsyncServer wraps an Engine; concurrent client threads submit
 * comparisons and ranking tournaments as futures; the batcher
 * coalesces everything in flight into shared encoding batches. On
 * exit the daemon drains cleanly and prints the ServerStats snapshot
 * an operator would scrape (queue pressure, batch-size histogram,
 * latency percentiles, cache counters).
 *
 * The second half shows the next rungs of the ladder: the same
 * traffic on a ShardedServer — N batcher workers over a partitioned
 * encoding cache — with the per-shard stats rows an operator would
 * use to spot a hot shard; then multi-model serving through a
 * ModelRegistry: two problem-family models behind one sharded
 * front, traffic split by model name, and one model hot-swapped
 * mid-run without stopping the service (the paper's
 * continuous-learning deployment); then multi-tenant serving with
 * an AdmissionController quota shedding a bulk tenant's flood while
 * an interactive tenant rides the fast lane, every request leaving
 * a chrome://tracing span chain via TraceRecorder; and finally the
 * metrics plane: a MetricsRegistry fed by every layer, a
 * MetricsSampler scraping the pull-style gauges, an SloTracker
 * burning error budget while a load shift is inside its window and
 * recovering once it ages out — with windowed p99 diverging from
 * lifetime p99 to show why "p99 over the last 1.5s" and "p99 since
 * boot" answer different questions.
 *
 * The engines here are untrained so the demo runs instantly — a
 * real daemon would registry.load("family-a.bin") at startup (v2
 * checkpoints embed their own config; see examples/quickstart.cpp
 * for training one).
 *
 * Usage: ./serving_daemon [--trace trace.json]
 *                         [--metrics-out metrics.prom]
 *        ./serving_daemon --ipc [--fault-inject SPEC]
 *                         [--metrics-out metrics.prom]
 * (--trace exports the [6/7] demo's spans as chrome-trace JSON;
 * tools/check_trace.py validates the file and CI runs it.
 * --metrics-out dumps the Prometheus-text exposition after every
 * sampler sweep, plus a mid-run scrape at <path>.1 and the final
 * scrape at <path>; tools/check_metrics.py validates the pair.
 * --ipc is an exclusive mode: the same traffic on a
 * ProcessShardedServer — crash-isolated worker processes — with an
 * optional injected fault (crash:N | stall:N[:ms] | torn:N |
 * eintr:N, see serve/ipc/fault_injector.hh) on shard 0. It prints
 * worker restart counts and the request-conservation identity, and
 * exits non-zero if any request leaked; tools/check_crash_recovery.py
 * drives it in CI with a mid-run crash and validates the metrics.)
 */

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/async_server.hh"
#include "serve/ipc/process_sharded_server.hh"
#include "serve/metrics/metrics.hh"
#include "serve/metrics/metrics_sampler.hh"
#include "serve/metrics/slo_tracker.hh"
#include "serve/model_registry.hh"
#include "serve/sharded_server.hh"
#include "serve/trace/trace_recorder.hh"

using namespace ccsa;

namespace
{

/** A candidate implementation: `loops` loops, `pad` extra decls. */
Ast
makeVariant(int loops, int pad)
{
    std::string src = "int main() {\n int n;\n cin >> n;\n";
    for (int p = 0; p < pad; ++p)
        src += " int pad" + std::to_string(p) + " = " +
            std::to_string(p) + ";\n";
    for (int i = 0; i < loops; ++i) {
        std::string v = "i" + std::to_string(i);
        src += " for (int " + v + " = 0; " + v + " < n; " + v +
            "++) { int z" + std::to_string(i) + " = " + v + "; }\n";
    }
    src += " return 0;\n}\n";
    return Engine::parseSource(src).take();
}

/**
 * The --ipc exclusive mode: crash-isolated serving under client
 * load, optionally with an injected worker fault. Exit code 0 means
 * every accepted request's future resolved AND the conservation
 * identity submitted == completed + failed + deadline held — the
 * "no request is ever lost" contract, checked from the outside.
 */
int
runIpcMode(const std::string& faultSpec,
           const std::string& metricsPath)
{
    std::printf("=== ccsa serving daemon (--ipc) ===\n\n");
    std::printf("process-sharded serving: 2 worker processes%s%s\n\n",
                faultSpec.empty() ? "" : ", injected fault ",
                faultSpec.c_str());

    std::vector<Ast> variants;
    for (int v = 0; v < 12; ++v)
        variants.push_back(makeVariant(v % 6 + 1, v / 6));

    MetricsRegistry metrics;
    EncoderConfig cfg;
    cfg.embedDim = 24;
    cfg.hiddenDim = 32;
    auto model =
        std::make_shared<ComparativePredictor>(cfg, /*seed=*/7);
    ProcessShardedServer server(
        model, ProcessShardedServer::Options()
                   .withNumShards(2)
                   .withQueueCapacity(512)
                   .withMaxBatchSize(128)
                   .withMaxBatchDelay(std::chrono::microseconds(800))
                   .withMetrics(&metrics)
                   .withFault(faultSpec, /*shard=*/0));

    // 4 clients x 40 requests; every 10th request carries a
    // deliberately tiny deadline so the deadline-rejection path is
    // exercised and must show up in the conservation identity
    // (never as a leaked future).
    constexpr int kClients = 4;
    constexpr int kRequests = 40;
    std::atomic<int> resolved{0};
    std::atomic<int> okCount{0};
    std::atomic<int> failedCount{0};
    std::atomic<int> deadlineCount{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(55 + static_cast<std::uint64_t>(c));
            for (int k = 0; k < kRequests; ++k) {
                int i = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 1);
                int j = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 2);
                if (j >= i)
                    ++j;
                SubmitOptions opts;
                if (k % 10 == 9)
                    opts.deadline = std::chrono::microseconds(1);
                Result<double> r =
                    server
                        .submitCompare(
                            opts,
                            variants[static_cast<std::size_t>(i)],
                            variants[static_cast<std::size_t>(j)])
                        .get();
                ++resolved;
                if (r.isOk())
                    ++okCount;
                else if (r.status().code() ==
                         StatusCode::DeadlineExceeded)
                    ++deadlineCount;
                else
                    ++failedCount;
            }
        });
    }
    for (std::thread& t : clients)
        t.join();

    // Scrape while the workers are still up, then shut down.
    server.sampleMetrics();
    if (!metricsPath.empty()) {
        Status wrote = metrics.exposeToFile(metricsPath);
        std::printf("wrote %s%s\n", metricsPath.c_str(),
                    wrote.isOk() ? "" : " FAILED");
    }
    server.shutdown();

    ProcessShardedServerStats stats = server.stats();
    std::uint64_t restarts = 0;
    for (std::size_t sh = 0; sh < stats.health.size(); ++sh) {
        const WorkerHealth& h = stats.health[sh];
        std::printf("worker %zu: generation=%llu restarts=%llu%s\n",
                    sh,
                    static_cast<unsigned long long>(h.generation),
                    static_cast<unsigned long long>(h.restarts),
                    h.degraded ? " DEGRADED" : "");
        restarts += h.restarts;
    }
    std::printf("futures: %d resolved (%d ok, %d failed, %d "
                "deadline) of %d submitted\n",
                resolved.load(), okCount.load(), failedCount.load(),
                deadlineCount.load(), kClients * kRequests);

    const ServerStats& agg = stats.aggregate;
    bool conserved = agg.requestsSubmitted ==
        agg.requestsCompleted + agg.requestsFailed +
            agg.requestsRejectedDeadline;
    std::printf("conservation: submitted=%llu completed=%llu "
                "failed=%llu deadline=%llu -> %s\n",
                static_cast<unsigned long long>(
                    agg.requestsSubmitted),
                static_cast<unsigned long long>(
                    agg.requestsCompleted),
                static_cast<unsigned long long>(agg.requestsFailed),
                static_cast<unsigned long long>(
                    agg.requestsRejectedDeadline),
                conserved ? "OK" : "VIOLATED");
    std::printf("worker restarts: %llu\n",
                static_cast<unsigned long long>(restarts));

    bool everyFutureResolved =
        resolved.load() == kClients * kRequests;
    if (!everyFutureResolved)
        std::printf("FAIL: leaked futures\n");
    return conserved && everyFutureResolved ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string tracePath;
    std::string metricsPath;
    std::string faultSpec;
    bool ipcMode = false;
    for (int a = 1; a < argc; ++a) {
        if (std::string(argv[a]) == "--ipc")
            ipcMode = true;
        if (a + 1 >= argc)
            continue;
        if (std::string(argv[a]) == "--trace")
            tracePath = argv[a + 1];
        if (std::string(argv[a]) == "--metrics-out")
            metricsPath = argv[a + 1];
        if (std::string(argv[a]) == "--fault-inject")
            faultSpec = argv[a + 1];
    }
    if (ipcMode)
        return runIpcMode(faultSpec, metricsPath);

    std::printf("=== ccsa serving daemon ===\n\n");

    // 1. One engine, one async front. Tuning knobs: maxBatchSize
    //    bounds per-tick work, maxBatchDelay bounds added latency,
    //    queueCapacity bounds memory (backpressure beyond it).
    Engine engine(Engine::Options()
                      .withEmbedDim(24)
                      .withHiddenDim(32)
                      .withThreads(0)
                      .withCacheCapacity(4096));
    AsyncServer server(
        engine, AsyncServer::Options()
                    .withQueueCapacity(512)
                    .withMaxBatchSize(128)
                    .withMaxBatchDelay(std::chrono::microseconds(800)));

    // 2. A library of candidate implementations clients ask about.
    std::vector<Ast> variants;
    for (int v = 0; v < 12; ++v)
        variants.push_back(makeVariant(v % 6 + 1, v / 6));

    // 3. Concurrent clients: pairwise comparisons plus the paper's
    //    algorithm-selection tournaments, all through futures.
    constexpr int kClients = 4;
    constexpr int kRequests = 40;
    std::printf("[1/7] %d clients x %d requests (compares + ranks)"
                "...\n",
                kClients, kRequests);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(77 + static_cast<std::uint64_t>(c));
            int ok = 0;
            for (int k = 0; k < kRequests; ++k) {
                if (k % 8 == 7) {
                    // Every eighth request: rank a 5-way tournament.
                    std::vector<const Ast*> field;
                    for (int f = 0; f < 5; ++f)
                        field.push_back(
                            &variants[static_cast<std::size_t>(
                                rng.uniformInt(
                                    0,
                                    static_cast<int>(
                                        variants.size()) -
                                        1))]);
                    if (server.submitRank(field).get().isOk())
                        ++ok;
                } else {
                    int i = rng.uniformInt(
                        0, static_cast<int>(variants.size()) - 1);
                    int j = rng.uniformInt(
                        0, static_cast<int>(variants.size()) - 2);
                    if (j >= i)
                        ++j;
                    auto f = server.submitCompare(
                        variants[static_cast<std::size_t>(i)],
                        variants[static_cast<std::size_t>(j)]);
                    if (f.get().isOk())
                        ++ok;
                }
            }
            std::printf("      client %d: %d/%d ok\n", c, ok,
                        kRequests);
        });
    }
    for (std::thread& t : clients)
        t.join();

    // 4. Drain and stop; futures submitted after this fail fast with
    //    Unavailable instead of hanging.
    std::printf("\n[2/7] clean shutdown (drains pending work)...\n");
    server.shutdown();
    auto late = server
                    .submitCompare(variants[0], variants[1])
                    .get();
    std::printf("      post-shutdown submit -> %s\n",
                late.status().toString().c_str());

    // 5. The operator's view.
    std::printf("\n[3/7] server stats\n");
    ServerStats s = server.stats();
    std::printf("      queue: depth=%zu capacity=%zu\n",
                s.queueDepth, s.queueCapacity);
    std::printf("      requests: submitted=%llu completed=%llu "
                "failed=%llu rejected=%llu\n",
                static_cast<unsigned long long>(s.requestsSubmitted),
                static_cast<unsigned long long>(s.requestsCompleted),
                static_cast<unsigned long long>(s.requestsFailed),
                static_cast<unsigned long long>(s.requestsRejected));
    std::printf("      batching: %llu batches, %llu pairs, mean "
                "batch %.1f\n",
                static_cast<unsigned long long>(s.batches),
                static_cast<unsigned long long>(s.pairsServed),
                s.batchSizes.meanValue());
    std::printf("      batch-size histogram: %s\n",
                s.batchSizes.toString().c_str());
    std::printf("      latency ms: p50=%.3f p99=%.3f mean=%.3f "
                "max=%.3f\n",
                s.latencyP50Ms, s.latencyP99Ms, s.latencyMeanMs,
                s.latencyMaxMs);
    std::printf("      encoding cache: hits=%llu misses=%llu "
                "evictions=%llu size=%zu (trees encoded %llu)\n",
                static_cast<unsigned long long>(s.engine.cacheHits),
                static_cast<unsigned long long>(s.engine.cacheMisses),
                static_cast<unsigned long long>(
                    s.engine.cacheEvictions),
                s.engine.cacheSize,
                static_cast<unsigned long long>(
                    s.engine.treesEncoded));

    // 6. The same clients against a sharded front: four batcher
    //    workers over one queue, each with its own engine, all
    //    sharing a 4-way partitioned encoding cache (every variant's
    //    latent lives on exactly one shard). Results are bitwise
    //    what the AsyncServer returned above.
    std::printf("\n[4/7] sharded serving (4 workers, partitioned "
                "cache)...\n");
    ShardedServer sharded(Engine::Options()
                              .withEmbedDim(24)
                              .withHiddenDim(32)
                              .withCacheCapacity(1024),
                          ShardedServer::Options()
                              .withNumShards(4)
                              .withQueueCapacity(512)
                              .withMaxBatchSize(128)
                              .withMaxBatchDelay(
                                  std::chrono::microseconds(800)));
    std::vector<std::thread> shardClients;
    for (int c = 0; c < kClients; ++c) {
        shardClients.emplace_back([&, c] {
            Rng rng(77 + static_cast<std::uint64_t>(c));
            int ok = 0;
            for (int k = 0; k < kRequests; ++k) {
                int i = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 1);
                int j = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 2);
                if (j >= i)
                    ++j;
                if (sharded
                        .submitCompare(
                            variants[static_cast<std::size_t>(i)],
                            variants[static_cast<std::size_t>(j)])
                        .get()
                        .isOk())
                    ++ok;
            }
            std::printf("      client %d: %d/%d ok\n", c, ok,
                        kRequests);
        });
    }
    for (std::thread& t : shardClients)
        t.join();
    sharded.shutdown();

    ShardedServerStats ss = sharded.stats();
    std::printf("      aggregate: %llu batches, %llu pairs, p50=%.3f"
                " p99=%.3f ms (from merged histograms)\n",
                static_cast<unsigned long long>(ss.aggregate.batches),
                static_cast<unsigned long long>(
                    ss.aggregate.pairsServed),
                ss.aggregate.latencyP50Ms, ss.aggregate.latencyP99Ms);
    for (std::size_t sh = 0; sh < ss.shards.size(); ++sh) {
        const ServerStats& row = ss.shards[sh];
        std::printf("      shard %zu: batches=%llu pairs=%llu "
                    "cache hits=%llu misses=%llu resident=%zu\n",
                    sh,
                    static_cast<unsigned long long>(row.batches),
                    static_cast<unsigned long long>(row.pairsServed),
                    static_cast<unsigned long long>(
                        row.engine.cacheHits),
                    static_cast<unsigned long long>(
                        row.engine.cacheMisses),
                    row.engine.cacheSize);
    }

    // 7. Multi-model serving: two problem-family models behind one
    //    registry, traffic split by model name, family-a hot-swapped
    //    with a retrained build mid-run. Requests admitted before the
    //    swap complete on the old version; nothing stops.
    std::printf("\n[5/7] multi-model serving (registry, hot swap "
                "mid-run)...\n");
    auto registry = std::make_shared<ModelRegistry>();
    EncoderConfig famCfg;
    famCfg.embedDim = 24;
    famCfg.hiddenDim = 32;
    registry->publish("family-a",
                      std::make_shared<ComparativePredictor>(
                          famCfg, /*seed=*/101));
    registry->publish("family-b",
                      std::make_shared<ComparativePredictor>(
                          famCfg, /*seed=*/202));
    ShardedServer multi(registry,
                        Engine::Options().withCacheCapacity(1024),
                        ShardedServer::Options()
                            .withNumShards(2)
                            .withQueueCapacity(512)
                            .withMaxBatchSize(128)
                            .withMaxBatchDelay(
                                std::chrono::microseconds(800)));
    std::vector<std::thread> multiClients;
    for (int c = 0; c < kClients; ++c) {
        multiClients.emplace_back([&, c] {
            Rng rng(177 + static_cast<std::uint64_t>(c));
            // Clients for family A and B alternate by thread.
            const char* family = c % 2 == 0 ? "family-a" : "family-b";
            int ok = 0;
            for (int k = 0; k < kRequests; ++k) {
                int i = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 1);
                int j = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 2);
                if (j >= i)
                    ++j;
                if (multi
                        .submitCompare(
                            family,
                            variants[static_cast<std::size_t>(i)],
                            variants[static_cast<std::size_t>(j)])
                        .get()
                        .isOk())
                    ++ok;
                if (c == 0 && k == kRequests / 2) {
                    // Mid-run redeploy of family-a: the "retrained"
                    // model goes live between two of this client's
                    // own requests. In-flight work finishes on the
                    // old version's snapshot; the old latents age
                    // out of the cache under their own namespace.
                    auto v = registry->publish(
                        "family-a",
                        std::make_shared<ComparativePredictor>(
                            famCfg, /*seed=*/303));
                    std::printf("      hot-swapped family-a -> "
                                "version %llu\n",
                                static_cast<unsigned long long>(
                                    v->sequence));
                }
            }
            std::printf("      client %d (%s): %d/%d ok\n", c,
                        family, ok, kRequests);
        });
    }
    for (std::thread& t : multiClients)
        t.join();
    multi.shutdown();

    ShardedServerStats ms = multi.stats();
    std::printf("      per-model cache namespaces:\n");
    for (const ModelCacheStats& row : ms.aggregate.models) {
        std::printf("        %-10s v%llu: hits=%llu misses=%llu "
                    "evictions=%llu resident=%zu\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.sequence),
                    static_cast<unsigned long long>(row.cache.hits),
                    static_cast<unsigned long long>(row.cache.misses),
                    static_cast<unsigned long long>(
                        row.cache.evictions),
                    row.cache.residents);
    }
    std::printf("      (family-a shows v2: the swapped build owns a "
                "fresh namespace;\n       the v1 latents expire "
                "through plain LRU aging)\n");

    // 8. Multi-tenant serving: an interactive "checkout" tenant and
    //    a quota-capped "bulk" tenant share one server. The token
    //    bucket admits bulk's first burst, then sheds the rest with
    //    ResourceExhausted before it can crowd the queue; checkout's
    //    requests ride the interactive lane, which flushes on its
    //    own deadline even while bulk traffic is held for fuller
    //    batches. Every executed request leaves an admission ->
    //    queue -> coalesce -> encode -> score span chain in the
    //    TraceRecorder.
    std::printf("\n[6/7] multi-tenant admission + tracing (bulk "
                "tenant quota-capped)...\n");

    // The process-wide metrics plane, shared by the remaining
    // demos: every layer feeds one MetricsRegistry; a MetricsSampler
    // scrapes the pull-style gauges; an SloTracker judges (model,
    // tenant) latency objectives over a rolling window. The window
    // is deliberately short (5 x 300 ms) so [7/7] can show a load
    // shift aging out of it in demo time.
    MetricsRegistry metrics;
    SloTracker slo(metrics);
    const WindowedHistogram::Options demoWindow =
        WindowedHistogram::Options()
            .withBucketWidth(std::chrono::milliseconds(300))
            .withNumBuckets(5);
    slo.setObjective("model", "checkout",
                     SloTracker::Objective()
                         .withLatencyThresholdUs(50000)
                         .withTargetGoodFraction(0.99)
                         .withWindow(demoWindow));
    slo.setObjective("model", "canary",
                     SloTracker::Objective()
                         .withLatencyThresholdUs(2500)
                         .withTargetGoodFraction(0.95)
                         .withWindow(demoWindow));
    MetricsSampler sampler(
        metrics, MetricsSampler::Options()
                     .withPeriod(std::chrono::milliseconds(200))
                     .withExpositionPath(metricsPath));

    AdmissionController admission;
    admission.setQuota(
        "bulk", AdmissionController::Quota{/*pairsPerSec=*/50.0,
                                           /*burst=*/40.0});
    TraceRecorder trace;
    trace.attachMetrics(&metrics);
    Engine tenantEngine(Engine::Options()
                            .withEmbedDim(24)
                            .withHiddenDim(32)
                            .withThreads(0)
                            .withCacheCapacity(4096)
                            .withMetrics(&metrics));
    AsyncServer tenantServer(
        tenantEngine,
        AsyncServer::Options()
            .withQueueCapacity(512)
            .withMaxBatchSize(128)
            .withMaxBatchDelay(std::chrono::microseconds(200))
            .withAdmission(&admission)
            .withTrace(&trace)
            .withMetrics(&metrics)
            .withSlo(&slo)
            .withMetricsWindow(demoWindow));
    sampler.addProbe([&] { tenantServer.sampleMetrics(); });
    sampler.addProbe([&] { admission.publishMetrics(metrics); });
    sampler.addProbe([&] { slo.publishGauges(); });
    sampler.start();

    std::thread bulkClient([&] {
        // 20 batch-class tournaments of 8 pairs each = 160 pairs
        // against a 40-pair bucket refilling at 50/s: the flood's
        // tail is shed, not queued.
        Rng rng(991);
        const SubmitOptions bulk =
            SubmitOptions().withTenant("bulk").withPriority(
                Priority::kBatch);
        int okCount = 0, shed = 0;
        for (int k = 0; k < 20; ++k) {
            std::vector<Engine::PairRequest> pairs;
            for (int p = 0; p < 8; ++p) {
                int i = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 1);
                int j = rng.uniformInt(
                    0, static_cast<int>(variants.size()) - 2);
                if (j >= i)
                    ++j;
                pairs.push_back(
                    {&variants[static_cast<std::size_t>(i)],
                     &variants[static_cast<std::size_t>(j)]});
            }
            Result<std::vector<double>> r =
                tenantServer.submitCompareMany(bulk, pairs).get();
            if (r.isOk())
                ++okCount;
            else if (r.status().code() ==
                     StatusCode::ResourceExhausted)
                ++shed;
        }
        std::printf("      bulk: %d tournaments served, %d shed by "
                    "quota\n",
                    okCount, shed);
    });
    std::thread checkoutClient([&] {
        Rng rng(992);
        const SubmitOptions fg = SubmitOptions().withTenant("checkout");
        int okCount = 0;
        for (int k = 0; k < 2 * kRequests; ++k) {
            int i = rng.uniformInt(
                0, static_cast<int>(variants.size()) - 1);
            int j = rng.uniformInt(
                0, static_cast<int>(variants.size()) - 2);
            if (j >= i)
                ++j;
            if (tenantServer
                    .submitCompare(
                        fg, variants[static_cast<std::size_t>(i)],
                        variants[static_cast<std::size_t>(j)])
                    .get()
                    .isOk())
                ++okCount;
        }
        std::printf("      checkout: %d/%d interactive compares ok\n",
                    okCount, 2 * kRequests);
    });
    bulkClient.join();
    checkoutClient.join();
    tenantServer.shutdown();

    ServerStats ts = tenantServer.stats();
    std::printf("      rejected: shed=%llu shutdown=%llu quota=%llu\n",
                static_cast<unsigned long long>(
                    ts.requestsRejectedShed),
                static_cast<unsigned long long>(
                    ts.requestsRejectedShutdown),
                static_cast<unsigned long long>(
                    ts.requestsRejectedQuota));
    for (const TenantStats& row : ts.tenants)
        std::printf("      tenant %-10s submitted=%llu "
                    "completed=%llu quota-rejected=%llu p99=%.3f ms\n",
                    row.tenant.empty() ? "(default)"
                                       : row.tenant.c_str(),
                    static_cast<unsigned long long>(row.submitted),
                    static_cast<unsigned long long>(row.completed),
                    static_cast<unsigned long long>(
                        row.rejectedQuota),
                    row.latencyP99Ms);
    std::printf("      trace: %zu spans buffered (%llu dropped)\n",
                trace.spanCount(),
                static_cast<unsigned long long>(
                    trace.droppedSpans()));
    if (!tracePath.empty()) {
        Status wrote = trace.writeJson(tracePath);
        std::printf("      %s\n",
                    wrote.isOk()
                        ? ("wrote " + tracePath +
                           " (open in chrome://tracing or "
                           "ui.perfetto.dev)")
                              .c_str()
                        : wrote.toString().c_str());
    }

    // 9. The metrics plane under a load shift. A canary tenant's
    //    traffic goes through two phases: a slow one (every request
    //    encodes giant, never-seen trees — a "bad deploy" blowing
    //    the 2.5 ms objective), then a fast one (one cached pair)
    //    that runs LONGER than the 1.5 s judgment window. While the
    //    slow phase is inside the window the burn rate screams and
    //    windowed p99 matches lifetime p99; once it ages out the
    //    burn rate recovers and windowed p99 drops to the fast
    //    phase's — but lifetime p99 still remembers the incident.
    //    That recovery-vs-memory split is the canary
    //    promotion/rollback signal (see ROADMAP).
    std::printf("\n[7/7] windowed metrics + SLO burn rate (load "
                "shift ages out of the window)...\n");
    Engine canaryEngine(Engine::Options()
                            .withEmbedDim(24)
                            .withHiddenDim(32)
                            .withThreads(0)
                            .withCacheCapacity(4096)
                            .withMetrics(&metrics));
    AsyncServer canaryServer(
        canaryEngine,
        AsyncServer::Options()
            .withQueueCapacity(512)
            .withMaxBatchSize(64)
            .withMaxBatchDelay(std::chrono::microseconds(100))
            .withMetrics(&metrics)
            .withSlo(&slo)
            .withMetricsWindow(demoWindow));
    sampler.addProbe([&] { canaryServer.sampleMetrics(); });
    const SubmitOptions canary = SubmitOptions().withTenant("canary");

    // Slow phase: 10 concurrent requests, each a 24-pair batch over
    // distinct cold trees. Every request pays ~24 full encodes AND
    // queues behind the requests ahead of it — the compounding
    // latency a real bad deploy shows under load.
    std::vector<Ast> giants;
    for (int g = 0; g < 240; ++g)
        giants.push_back(makeVariant(12 + g % 4, 60 + g / 4));
    std::vector<std::future<Result<std::vector<double>>>> slowWork;
    for (int r = 0; r < 10; ++r) {
        std::vector<Engine::PairRequest> pairs;
        for (int p = 0; p < 24; ++p) {
            const Ast& a = giants[static_cast<std::size_t>(r * 24 + p)];
            const Ast& b = giants[static_cast<std::size_t>(
                r * 24 + (p + 1) % 24)];
            pairs.push_back({&a, &b});
        }
        slowWork.push_back(
            canaryServer.submitCompareMany(canary,
                                           std::move(pairs)));
    }
    for (auto& f : slowWork)
        f.get();
    auto hotNow = std::chrono::steady_clock::now();
    SloTracker::WindowCounts hotCounts =
        slo.windowCounts("model", "canary", hotNow);
    double burnHot = slo.burnRate("model", "canary", hotNow);
    std::printf("      slow phase done: window good=%llu bad=%llu "
                "burn=%.1f (>1 burns budget)\n",
                static_cast<unsigned long long>(hotCounts.good),
                static_cast<unsigned long long>(hotCounts.bad),
                burnHot);
    if (!metricsPath.empty()) {
        sampler.sampleOnce();
        Status mid = metrics.exposeToFile(metricsPath + ".1");
        std::printf("      %s\n",
                    mid.isOk()
                        ? ("wrote " + metricsPath + ".1 (mid-run "
                           "scrape)")
                              .c_str()
                        : mid.toString().c_str());
    }

    // Fast phase: one cached pair, repeated for longer than the
    // window span so every slow sample rotates out of the ring.
    auto fastUntil = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::milliseconds>(
            demoWindow.bucketWidth) *
            static_cast<int>(demoWindow.numBuckets) +
        std::chrono::milliseconds(500);
    int fastCount = 0;
    while (std::chrono::steady_clock::now() < fastUntil) {
        canaryServer.submitCompare(canary, variants[0], variants[1])
            .get();
        ++fastCount;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    canaryServer.shutdown();

    WindowedHistogram& canaryLat = serverLatencyHistogram(
        metrics, "async", "model", "canary", Priority::kInteractive,
        demoWindow);
    auto coolNow = std::chrono::steady_clock::now();
    Histogram windowHist = canaryLat.window(coolNow);
    Histogram lifeHist = canaryLat.lifetime();
    double burnCool = slo.burnRate("model", "canary", coolNow);
    std::printf("      fast phase: %d cached compares over > window "
                "span\n",
                fastCount);
    std::printf("      lifetime p99 <= %.3f ms over %llu samples "
                "(remembers the slow phase)\n",
                static_cast<double>(
                    lifeHist.quantileUpperBound(0.99)) /
                    1000.0,
                static_cast<unsigned long long>(lifeHist.count()));
    std::printf("      windowed p99 <= %.3f ms over %llu samples "
                "(last %lld ms only)\n",
                static_cast<double>(
                    windowHist.quantileUpperBound(0.99)) /
                    1000.0,
                static_cast<unsigned long long>(windowHist.count()),
                static_cast<long long>(
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        canaryLat.windowSpan())
                        .count()));
    std::printf("      burn rate: %.1f during incident -> %.1f "
                "after it aged out\n",
                burnHot, burnCool);

    sampler.stop();
    sampler.sampleOnce(); // final deterministic sweep + dump
    if (!metricsPath.empty())
        std::printf("      wrote %s (final scrape; validate both "
                    "with tools/check_metrics.py)\n",
                    metricsPath.c_str());

    std::printf("\ndone. Tune maxBatchDelay down for latency, up "
                "for throughput;\nshard when one batcher saturates;"
                " register models when one service must\nserve many"
                " problem families; quota tenants that crowd the"
                " queue; scrape\nthe MetricsRegistry and alert on"
                " ccsa_slo_burn_rate — see README\n\"Metrics &"
                " SLOs\".\n");
    return 0;
}
