#include "ast/ast.hh"

#include <sstream>

#include "base/logging.hh"

namespace ccsa
{

Ast::Ast(NodeKind root_kind)
{
    AstNode root;
    root.kind = root_kind;
    root.parent = -1;
    nodes_.push_back(std::move(root));
}

int
Ast::addNode(NodeKind kind, int parent, std::string text)
{
    if (parent < 0 || parent >= size())
        panic("Ast::addNode: invalid parent ", parent);
    int id = size();
    AstNode n;
    n.kind = kind;
    n.parent = parent;
    n.text = std::move(text);
    nodes_.push_back(std::move(n));
    nodes_[parent].children.push_back(id);
    return id;
}

const AstNode&
Ast::node(int id) const
{
    if (id < 0 || id >= size())
        panic("Ast::node: invalid id ", id);
    return nodes_[id];
}

AstNode&
Ast::node(int id)
{
    if (id < 0 || id >= size())
        panic("Ast::node: invalid id ", id);
    return nodes_[id];
}

std::vector<int>
Ast::parents() const
{
    std::vector<int> out(nodes_.size());
    for (int i = 0; i < size(); ++i)
        out[i] = nodes_[i].parent;
    return out;
}

std::vector<int>
Ast::kindIds() const
{
    std::vector<int> out(nodes_.size());
    for (int i = 0; i < size(); ++i)
        out[i] = kindId(nodes_[i].kind);
    return out;
}

int
Ast::depth() const
{
    std::vector<int> d(nodes_.size(), 1);
    int best = 1;
    // Nodes are appended after their parents, so a forward pass works.
    for (int i = 1; i < size(); ++i) {
        d[i] = d[nodes_[i].parent] + 1;
        best = std::max(best, d[i]);
    }
    return best;
}

int
Ast::countKind(NodeKind kind) const
{
    int c = 0;
    for (const auto& n : nodes_)
        if (n.kind == kind)
            ++c;
    return c;
}

std::vector<int>
Ast::nodesOfKind(NodeKind kind) const
{
    std::vector<int> out;
    visitPreorder([&](int id) {
        if (nodes_[id].kind == kind)
            out.push_back(id);
    });
    return out;
}

int
Ast::subtreeSize(int id) const
{
    int count = 0;
    std::vector<int> stack{id};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        ++count;
        for (int c : node(cur).children)
            stack.push_back(c);
    }
    return count;
}

void
Ast::visitPreorder(const std::function<void(int)>& fn) const
{
    std::vector<int> stack{root()};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        fn(cur);
        const auto& ch = nodes_[cur].children;
        for (auto it = ch.rbegin(); it != ch.rend(); ++it)
            stack.push_back(*it);
    }
}

namespace
{

void
sexprRec(const Ast& ast, int id, std::ostringstream& os)
{
    const AstNode& n = ast.node(id);
    os << "(" << nodeKindName(n.kind);
    if (!n.text.empty())
        os << ":" << n.text;
    for (int c : n.children) {
        os << " ";
        sexprRec(ast, c, os);
    }
    os << ")";
}

} // namespace

std::string
Ast::toSExpression() const
{
    std::ostringstream os;
    sexprRec(*this, root(), os);
    return os.str();
}

std::string
Ast::toDot() const
{
    std::ostringstream os;
    os << "digraph ast {\n  node [shape=box];\n";
    for (int i = 0; i < size(); ++i) {
        os << "  n" << i << " [label=\"" << nodeKindName(nodes_[i].kind);
        if (!nodes_[i].text.empty())
            os << "\\n" << nodes_[i].text;
        os << "\"];\n";
    }
    for (int i = 0; i < size(); ++i)
        for (int c : nodes_[i].children)
            os << "  n" << i << " -> n" << c << ";\n";
    os << "}\n";
    return os.str();
}

namespace
{

void
copySubtree(const Ast& src, int src_id, Ast& dst, int dst_parent)
{
    const AstNode& n = src.node(src_id);
    int id = dst.addNode(n.kind, dst_parent, n.text);
    for (int c : n.children)
        copySubtree(src, c, dst, id);
}

} // namespace

Ast
pruneToFunctions(const Ast& full)
{
    Ast pruned(NodeKind::Root);
    // Collect function definitions in preorder; nested functions are
    // impossible in MiniCxx, so these subtrees are disjoint.
    for (int id : full.nodesOfKind(NodeKind::FunctionDef))
        copySubtree(full, id, pruned, pruned.root());
    if (pruned.size() == 1)
        fatal("pruneToFunctions: no function definitions in input");
    return pruned;
}

} // namespace ccsa
