/**
 * @file
 * Arena-backed abstract syntax tree. Node 0 is always the root; every
 * other node records its parent and ordered children. The deep models
 * consume only the kind sequence plus the tree shape, mirroring the
 * paper's pruned ROSE output (§IV-A: "a list of the node IDs and a
 * list of links between nodes").
 */

#ifndef CCSA_AST_AST_HH
#define CCSA_AST_AST_HH

#include <functional>
#include <string>
#include <vector>

#include "ast/node_kind.hh"

namespace ccsa
{

/** One AST node stored inside an Ast arena. */
struct AstNode
{
    NodeKind kind = NodeKind::Root;
    int parent = -1;
    std::vector<int> children;
    /** Identifier / literal spelling, kept for debugging & the judge. */
    std::string text;
};

/** A rooted ordered tree of AstNodes. */
class Ast
{
  public:
    /** Create a tree containing only a root of the given kind. */
    explicit Ast(NodeKind root_kind = NodeKind::Root);

    /**
     * Append a node under an existing parent.
     * @return the new node id.
     */
    int addNode(NodeKind kind, int parent, std::string text = "");

    /** @return node count. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** @return the root id (always 0). */
    int root() const { return 0; }

    const AstNode& node(int id) const;
    AstNode& node(int id);

    /** @return parent array (root = -1), e.g. for nn::TreeSpec. */
    std::vector<int> parents() const;

    /** @return per-node kind ids (embedding lookup indices). */
    std::vector<int> kindIds() const;

    /** @return maximum root-to-leaf depth (root alone = 1). */
    int depth() const;

    /** @return number of nodes with the given kind. */
    int countKind(NodeKind kind) const;

    /** @return ids of all nodes with the given kind, in preorder. */
    std::vector<int> nodesOfKind(NodeKind kind) const;

    /** @return the number of nodes in the subtree rooted at id. */
    int subtreeSize(int id) const;

    /** Preorder visit (parent before children). */
    void visitPreorder(const std::function<void(int)>& fn) const;

    /** Render as an s-expression (tests / debugging). */
    std::string toSExpression() const;

    /** Render as Graphviz DOT. */
    std::string toDot() const;

  private:
    std::vector<AstNode> nodes_;
};

/**
 * Prune a parsed translation unit per paper §IV-A: keep only the
 * subtrees of function definitions, re-hung as direct children of a
 * fresh root node.
 */
Ast pruneToFunctions(const Ast& full);

} // namespace ccsa

#endif // CCSA_AST_AST_HH
