#include "ast/node_kind.hh"

#include "base/logging.hh"

namespace ccsa
{

const char*
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Root: return "Root";
      case NodeKind::FunctionDef: return "FunctionDef";
      case NodeKind::ParamList: return "ParamList";
      case NodeKind::Param: return "Param";
      case NodeKind::ArrayExtent: return "ArrayExtent";
      case NodeKind::CompoundStmt: return "CompoundStmt";
      case NodeKind::DeclStmt: return "DeclStmt";
      case NodeKind::VarDecl: return "VarDecl";
      case NodeKind::IfStmt: return "IfStmt";
      case NodeKind::ForStmt: return "ForStmt";
      case NodeKind::WhileStmt: return "WhileStmt";
      case NodeKind::DoWhileStmt: return "DoWhileStmt";
      case NodeKind::ReturnStmt: return "ReturnStmt";
      case NodeKind::BreakStmt: return "BreakStmt";
      case NodeKind::ContinueStmt: return "ContinueStmt";
      case NodeKind::ExprStmt: return "ExprStmt";
      case NodeKind::EmptyStmt: return "EmptyStmt";
      case NodeKind::CallExpr: return "CallExpr";
      case NodeKind::SubscriptExpr: return "SubscriptExpr";
      case NodeKind::MemberExpr: return "MemberExpr";
      case NodeKind::VarRef: return "VarRef";
      case NodeKind::CondExpr: return "CondExpr";
      case NodeKind::InitList: return "InitList";
      case NodeKind::Assign: return "Assign";
      case NodeKind::AddAssign: return "AddAssign";
      case NodeKind::SubAssign: return "SubAssign";
      case NodeKind::MulAssign: return "MulAssign";
      case NodeKind::DivAssign: return "DivAssign";
      case NodeKind::ModAssign: return "ModAssign";
      case NodeKind::Add: return "Add";
      case NodeKind::Sub: return "Sub";
      case NodeKind::Mul: return "Mul";
      case NodeKind::Div: return "Div";
      case NodeKind::Mod: return "Mod";
      case NodeKind::Less: return "Less";
      case NodeKind::Greater: return "Greater";
      case NodeKind::LessEq: return "LessEq";
      case NodeKind::GreaterEq: return "GreaterEq";
      case NodeKind::Equal: return "Equal";
      case NodeKind::NotEqual: return "NotEqual";
      case NodeKind::LogicalAnd: return "LogicalAnd";
      case NodeKind::LogicalOr: return "LogicalOr";
      case NodeKind::LogicalNot: return "LogicalNot";
      case NodeKind::BitAnd: return "BitAnd";
      case NodeKind::BitOr: return "BitOr";
      case NodeKind::BitXor: return "BitXor";
      case NodeKind::ShiftLeft: return "ShiftLeft";
      case NodeKind::ShiftRight: return "ShiftRight";
      case NodeKind::Negate: return "Negate";
      case NodeKind::PreInc: return "PreInc";
      case NodeKind::PreDec: return "PreDec";
      case NodeKind::PostInc: return "PostInc";
      case NodeKind::PostDec: return "PostDec";
      case NodeKind::IntLiteral: return "IntLiteral";
      case NodeKind::DoubleLiteral: return "DoubleLiteral";
      case NodeKind::CharLiteral: return "CharLiteral";
      case NodeKind::StringLiteral: return "StringLiteral";
      case NodeKind::BoolLiteral: return "BoolLiteral";
      case NodeKind::NumKinds: break;
    }
    panic("nodeKindName: invalid kind");
}

NodeCategory
nodeKindCategory(NodeKind k)
{
    int id = kindId(k);
    if (id >= kindId(NodeKind::Root) &&
        id <= kindId(NodeKind::ArrayExtent))
        return NodeCategory::Support;
    if (id >= kindId(NodeKind::CompoundStmt) &&
        id <= kindId(NodeKind::EmptyStmt))
        return NodeCategory::Statement;
    if (id >= kindId(NodeKind::CallExpr) &&
        id <= kindId(NodeKind::InitList))
        return NodeCategory::Expression;
    if (id >= kindId(NodeKind::Assign) &&
        id <= kindId(NodeKind::PostDec))
        return NodeCategory::Operation;
    if (id >= kindId(NodeKind::IntLiteral) &&
        id <= kindId(NodeKind::BoolLiteral))
        return NodeCategory::Literal;
    panic("nodeKindCategory: invalid kind");
}

const char*
nodeCategoryName(NodeCategory c)
{
    switch (c) {
      case NodeCategory::Support: return "support";
      case NodeCategory::Statement: return "statement";
      case NodeCategory::Expression: return "expression";
      case NodeCategory::Operation: return "operation";
      case NodeCategory::Literal: return "literal";
    }
    panic("nodeCategoryName: invalid category");
}

} // namespace ccsa
