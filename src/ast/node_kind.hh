/**
 * @file
 * The vocabulary of AST node kinds. Mirrors the information channel of
 * the paper's ROSE-derived trees: each node carries only its syntactic
 * kind; a kind maps to one embedding-table row, "consistent across all
 * trees in the database" (§IV-B).
 *
 * Kinds are grouped into the five categories used to colour Figure 7a:
 * operations, other expressions, statements, literal values, and
 * support nodes.
 */

#ifndef CCSA_AST_NODE_KIND_HH
#define CCSA_AST_NODE_KIND_HH

#include <cstdint>
#include <string>

namespace ccsa
{

/** Every syntactic construct MiniCxx can represent. */
enum class NodeKind : std::uint8_t
{
    // Support nodes.
    Root,
    FunctionDef,
    ParamList,
    Param,
    ArrayExtent,

    // Statements.
    CompoundStmt,
    DeclStmt,
    VarDecl,
    IfStmt,
    ForStmt,
    WhileStmt,
    DoWhileStmt,
    ReturnStmt,
    BreakStmt,
    ContinueStmt,
    ExprStmt,
    EmptyStmt,

    // Other expressions.
    CallExpr,
    SubscriptExpr,
    MemberExpr,
    VarRef,
    CondExpr,
    InitList,

    // Operations.
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    ModAssign,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Less,
    Greater,
    LessEq,
    GreaterEq,
    Equal,
    NotEqual,
    LogicalAnd,
    LogicalOr,
    LogicalNot,
    BitAnd,
    BitOr,
    BitXor,
    ShiftLeft,
    ShiftRight,
    Negate,
    PreInc,
    PreDec,
    PostInc,
    PostDec,

    // Literals.
    IntLiteral,
    DoubleLiteral,
    CharLiteral,
    StringLiteral,
    BoolLiteral,

    NumKinds, ///< sentinel: total kind count
};

/** Total number of real node kinds (embedding vocabulary size). */
constexpr int kNumNodeKinds = static_cast<int>(NodeKind::NumKinds);

/** Figure 7a colour categories. */
enum class NodeCategory
{
    Support,
    Statement,
    Expression,
    Operation,
    Literal,
};

/** @return stable integer id of a kind (embedding row index). */
constexpr int
kindId(NodeKind k)
{
    return static_cast<int>(k);
}

/** @return human-readable kind name. */
const char* nodeKindName(NodeKind k);

/** @return the category a kind belongs to (Fig. 7a colouring). */
NodeCategory nodeKindCategory(NodeKind k);

/** @return human-readable category name. */
const char* nodeCategoryName(NodeCategory c);

} // namespace ccsa

#endif // CCSA_AST_NODE_KIND_HH
