/**
 * @file
 * BoundedQueue<T>: a bounded multi-producer multi-consumer FIFO with
 * blocking, non-blocking, and timed operations — the backpressure
 * primitive under the async serving layer. Producers block (or fail
 * fast via tryPush) when the queue is at capacity; consumers block
 * (or time out via popFor) when it is empty. close() transitions the
 * queue to a draining state: further pushes fail with Closed, while
 * pops keep returning the remaining items and then report exhaustion,
 * so a consumer can always finish every request that was accepted.
 *
 * Shutdown semantics (the one place this contract is written down —
 * every serving layer builds on it):
 *
 *  - close() is idempotent and wakes EVERY blocked thread, producers
 *    included: a push() parked on a full queue returns Closed with
 *    the caller's item untouched (nothing was moved from it), so the
 *    caller can still fail the request with an attributed Status.
 *    No thread stays parked across a shutdown.
 *  - Drain, not shed: items accepted before close() remain poppable
 *    afterwards. pop()/popFor() return them in FIFO order and only
 *    then report exhaustion (nullopt). "Accepted" is the commitment
 *    point — AsyncServer, ShardedServer, and ProcessShardedServer
 *    all promise that an accepted request's future resolves, and
 *    this queue is what makes that promise cheap to keep.
 *  - Shedding is the producer's job, before the commitment point:
 *    tryPush() returning Full is the only shed signal; a request
 *    rejected there was never accepted and is not owed a drain.
 *  - ThreadPool::shutdown() composes the same way: it closes its
 *    task queue, drains queued work, then joins (thread_pool.hh has
 *    the pool-side half of this contract).
 */

#ifndef CCSA_BASE_BOUNDED_QUEUE_HH
#define CCSA_BASE_BOUNDED_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ccsa
{

/** Outcome of a push attempt on a BoundedQueue. */
enum class QueuePush
{
    Ok,
    /** tryPush only: the queue is at capacity right now. */
    Full,
    /** The queue was close()d; no new items are accepted. */
    Closed,
};

/** Bounded MPMC FIFO with blocking push/pop and close-to-drain. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum queued items; clamped to >= 1. */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /**
     * Block until there is room (or the queue closes), then enqueue.
     * On Closed the item is left untouched in the caller's hands.
     */
    QueuePush
    push(T&& item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFull_.wait(lock, [this] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return QueuePush::Closed;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Enqueue without blocking. On Full or Closed the item is left
     * untouched in the caller's hands (nothing is moved from it).
     */
    QueuePush
    tryPush(T&& item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return QueuePush::Closed;
            if (items_.size() >= capacity_)
                return QueuePush::Full;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Enqueue every item or none, without blocking: the batch is
     * admitted only when the queue has room for all of it. The
     * all-or-nothing contract is what lets a sharded submitter split
     * one request into per-shard pieces without ever stranding half
     * of them in the queue on load-shed. On Ok the items are
     * moved-from; on Full or Closed they are left untouched.
     * An empty batch is Ok and a no-op.
     */
    QueuePush
    tryPushAll(std::vector<T>& items)
    {
        if (items.empty())
            return QueuePush::Ok;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return QueuePush::Closed;
            if (items_.size() + items.size() > capacity_)
                return QueuePush::Full;
            for (T& item : items)
                items_.push_back(std::move(item));
        }
        if (items.size() == 1)
            notEmpty_.notify_one();
        else
            notEmpty_.notify_all();
        return QueuePush::Ok;
    }

    /**
     * Block until an item is available and dequeue it.
     * @return nullopt only when the queue is closed AND drained.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> out;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock, [this] {
                return closed_ || !items_.empty();
            });
            if (items_.empty())
                return std::nullopt; // closed and drained
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        notFull_.notify_one();
        return out;
    }

    /**
     * Dequeue without blocking.
     * @return nullopt when nothing is queued right now.
     */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        notFull_.notify_one();
        return out;
    }

    /**
     * pop() with a deadline: wait at most `timeout` for an item.
     * @return nullopt on timeout or when closed and drained.
     */
    std::optional<T>
    popFor(std::chrono::microseconds timeout)
    {
        std::optional<T> out;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait_for(lock, timeout, [this] {
                return closed_ || !items_.empty();
            });
            if (items_.empty())
                return std::nullopt; // timed out, or closed+drained
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        notFull_.notify_one();
        return out;
    }

    /**
     * Stop accepting items and wake every blocked producer/consumer.
     * Already-queued items remain poppable (drain semantics).
     * Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace ccsa

#endif // CCSA_BASE_BOUNDED_QUEUE_HH
