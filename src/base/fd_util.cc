#include "base/fd_util.hh"

#include <cerrno>
#include <csignal>

#include <sys/socket.h>
#include <unistd.h>

namespace ccsa
{

namespace
{

bool (*ioInterruptHook)() = nullptr;

} // namespace

const char*
ioStatusName(IoStatus s)
{
    switch (s) {
      case IoStatus::Ok: return "ok";
      case IoStatus::Eof: return "eof";
      case IoStatus::Error: return "error";
    }
    return "unknown";
}

void
setIoInterruptHook(bool (*hook)())
{
    ioInterruptHook = hook;
}

IoStatus
readFull(int fd, void* buf, std::size_t n)
{
    char* p = static_cast<char*>(buf);
    std::size_t done = 0;
    while (done < n) {
        if (ioInterruptHook != nullptr && ioInterruptHook())
            continue; // simulated EINTR: retry like the real one
        ssize_t got = ::read(fd, p + done, n - done);
        if (got > 0) {
            done += static_cast<std::size_t>(got);
            continue;
        }
        if (got == 0)
            return done == 0 ? IoStatus::Eof : IoStatus::Error;
        if (errno == EINTR)
            continue;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

IoStatus
writeFull(int fd, const void* buf, std::size_t n)
{
    const char* p = static_cast<const char*>(buf);
    std::size_t done = 0;
    while (done < n) {
        if (ioInterruptHook != nullptr && ioInterruptHook())
            continue; // simulated EINTR: retry like the real one
        ssize_t put = ::write(fd, p + done, n - done);
        if (put > 0) {
            done += static_cast<std::size_t>(put);
            continue;
        }
        if (put < 0 && errno == EINTR)
            continue;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

IoStatus
sendFull(int fd, const void* buf, std::size_t n)
{
    const char* p = static_cast<const char*>(buf);
    std::size_t done = 0;
    while (done < n) {
        if (ioInterruptHook != nullptr && ioInterruptHook())
            continue; // simulated EINTR: retry like the real one
        ssize_t put = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
        if (put > 0) {
            done += static_cast<std::size_t>(put);
            continue;
        }
        if (put < 0 && errno == EINTR)
            continue;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

bool
makeSocketPair(int fds[2])
{
#ifdef SOCK_CLOEXEC
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) ==
        0)
        return true;
#endif
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return false;
    return true;
}

void
FdGuard::reset(int fd)
{
    if (fd_ >= 0) {
        // close() is not retried on EINTR: POSIX leaves the fd state
        // unspecified and Linux guarantees it is released either way;
        // retrying can close a recycled descriptor.
        ::close(fd_);
    }
    fd_ = fd;
}

} // namespace ccsa
