/**
 * @file
 * POSIX file-descriptor plumbing for the multi-process serving layer:
 * RAII fd ownership, EINTR-safe full-buffer read/write loops, and a
 * CLOEXEC socketpair helper. Every byte the IPC layer moves goes
 * through readFull/writeFull, so partial transfers and interrupted
 * syscalls are handled in exactly one place — and that place exposes
 * a test seam (setIoInterruptHook) through which the FaultInjector
 * simulates EINTR storms deterministically, without depending on
 * signal timing.
 */

#ifndef CCSA_BASE_FD_UTIL_HH
#define CCSA_BASE_FD_UTIL_HH

#include <cstddef>

namespace ccsa
{

/** Outcome of a full-buffer I/O loop. */
enum class IoStatus
{
    Ok,
    /** Clean EOF before any byte of this read (peer closed). */
    Eof,
    /** errno-level failure, or EOF mid-buffer (torn frame). */
    Error,
};

/** @return printable name of an IoStatus. */
const char* ioStatusName(IoStatus s);

/**
 * Read exactly `n` bytes into `buf`, retrying on EINTR and short
 * reads. Eof is reported only when the peer closed BEFORE the first
 * byte; a close mid-buffer is an Error (a torn frame is corruption,
 * not a clean shutdown).
 */
IoStatus readFull(int fd, void* buf, std::size_t n);

/** Write exactly `n` bytes from `buf`, retrying on EINTR and short
 * writes. EPIPE (peer gone) reports as Error. */
IoStatus writeFull(int fd, const void* buf, std::size_t n);

/** writeFull for sockets: same contract, but writing to a dead peer
 * returns IoStatus::Error (EPIPE) instead of raising SIGPIPE — the
 * IPC frame writer hits exactly this when a worker was SIGKILLed
 * between request and reply, and a library must not require the
 * host process to change its signal disposition. */
IoStatus sendFull(int fd, const void* buf, std::size_t n);

/**
 * Test/fault-injection seam: when set, the hook is consulted before
 * every read()/write() syscall in readFull/writeFull; returning true
 * simulates that syscall failing with EINTR (the loop then retries,
 * exactly as for a real signal interruption). Pass nullptr to
 * uninstall. Not thread-synchronised with concurrent I/O — install
 * before the loops run (the worker process installs it at startup).
 */
void setIoInterruptHook(bool (*hook)());

/**
 * Create a connected CLOEXEC stream socketpair.
 * @return true on success and fill fds[0] / fds[1].
 */
bool makeSocketPair(int fds[2]);

/** Owns a file descriptor; closes it on destruction (EINTR-safe). */
class FdGuard
{
  public:
    FdGuard() = default;
    explicit FdGuard(int fd) : fd_(fd) {}
    ~FdGuard() { reset(); }

    FdGuard(const FdGuard&) = delete;
    FdGuard& operator=(const FdGuard&) = delete;

    FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}

    FdGuard&
    operator=(FdGuard&& other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close the held fd (if any) and take ownership of `fd`. */
    void reset(int fd = -1);

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

} // namespace ccsa

#endif // CCSA_BASE_FD_UTIL_HH
