#include "base/logging.hh"

#include <iostream>

namespace ccsa
{

namespace
{
bool verboseFlag = false;
} // namespace

void
warn(const std::string& msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string& msg)
{
    if (verboseFlag)
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

} // namespace ccsa
