/**
 * @file
 * Error and status reporting for ccsa, following the gem5 discipline:
 * panic() for internal invariant violations (a ccsa bug), fatal() for
 * conditions caused by the caller (bad configuration, malformed input),
 * and warn()/inform() for non-fatal status messages.
 *
 * Unlike gem5, panic() and fatal() throw typed exceptions instead of
 * aborting the process, so that library users (and the test suite) can
 * recover from user-level errors.
 */

#ifndef CCSA_BASE_LOGGING_HH
#define CCSA_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccsa
{

/** Thrown by fatal(): the caller supplied invalid input or config. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): an internal invariant was violated (a ccsa bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an unrecoverable user-level error (bad input, bad config).
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/**
 * Report a violated internal invariant — a bug in ccsa itself.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Emit a warning to stderr; never stops execution. */
void warn(const std::string& msg);

/** Emit an informational message to stderr; never stops execution. */
void inform(const std::string& msg);

/** Enable/disable inform() output (warnings always print). */
void setVerbose(bool verbose);

/** @return whether inform() output is currently enabled. */
bool verbose();

/**
 * Assert an internal invariant; panics with the message on failure.
 * Kept as a function (not a macro) so it is always evaluated.
 */
inline void
ccsaAssert(bool cond, const std::string& msg)
{
    if (!cond)
        panic(msg);
}

} // namespace ccsa

/**
 * Debug-only invariant check for hot paths (indexing, pointer math).
 * Compiles to nothing under NDEBUG so Release code pays zero cost;
 * in debug builds a failure panics with the condition and message.
 */
#ifdef NDEBUG
#define CCSA_DCHECK(cond, msg) ((void)0)
#else
#define CCSA_DCHECK(cond, msg)                                        \
    do {                                                              \
        if (!(cond))                                                  \
            ::ccsa::panic("CCSA_DCHECK failed: ", #cond, ": ", msg);  \
    } while (0)
#endif

#endif // CCSA_BASE_LOGGING_HH
