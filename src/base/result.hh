/**
 * @file
 * Status / Result<T>: value-based error reporting for the serving
 * layer. The library core keeps the gem5-style fatal()/panic() typed
 * exceptions for programming errors, but a serving facade must not
 * tear down the process because one request carried an unparseable
 * source file — Engine endpoints therefore report per-request
 * failures through these types instead.
 */

#ifndef CCSA_BASE_RESULT_HH
#define CCSA_BASE_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "base/logging.hh"

namespace ccsa
{

/** Machine-checkable category of a Status. */
enum class StatusCode
{
    Ok,
    /** Malformed request payload (e.g. unparseable source text). */
    InvalidArgument,
    /** Filesystem / stream failure while persisting or loading. */
    IoError,
    /** An internal invariant broke while serving the request. */
    Internal,
    /** The serving component is shut down (or shutting down). */
    Unavailable,
    /** A bounded resource (e.g. a request queue) is full. */
    ResourceExhausted,
    /** The caller's deadline expired before the work ran (the
     * request was NOT executed — safe to retry with a new one). */
    DeadlineExceeded,
};

/** @return printable name of a StatusCode. */
inline const char*
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidArgument: return "invalid-argument";
      case StatusCode::IoError: return "io-error";
      case StatusCode::Internal: return "internal";
      case StatusCode::Unavailable: return "unavailable";
      case StatusCode::ResourceExhausted: return "resource-exhausted";
      case StatusCode::DeadlineExceeded: return "deadline-exceeded";
    }
    return "unknown";
}

/** Success-or-error outcome of a serving operation. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    static Status
    ok()
    {
        return Status();
    }

    static Status
    error(StatusCode code, std::string message)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    static Status
    invalidArgument(std::string message)
    {
        return error(StatusCode::InvalidArgument, std::move(message));
    }

    static Status
    ioError(std::string message)
    {
        return error(StatusCode::IoError, std::move(message));
    }

    static Status
    internal(std::string message)
    {
        return error(StatusCode::Internal, std::move(message));
    }

    static Status
    unavailable(std::string message)
    {
        return error(StatusCode::Unavailable, std::move(message));
    }

    static Status
    resourceExhausted(std::string message)
    {
        return error(StatusCode::ResourceExhausted,
                     std::move(message));
    }

    static Status
    deadlineExceeded(std::string message)
    {
        return error(StatusCode::DeadlineExceeded,
                     std::move(message));
    }

    bool isOk() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "ok" or "<code>: <message>". */
    std::string
    toString() const
    {
        if (isOk())
            return "ok";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A Status plus, on success, a value of type T. Modelled on
 * absl::StatusOr: either `ok()` and `value()` is usable, or the
 * error status explains what went wrong.
 */
template <typename T>
class Result
{
  public:
    /** Success. */
    Result(T value) // NOLINT: implicit by design, mirrors StatusOr
        : value_(std::move(value))
    {}

    /** Failure; `status` must not be ok. */
    Result(Status status) // NOLINT: implicit by design
        : status_(std::move(status))
    {
        if (status_.isOk())
            panic("Result: ok Status without a value");
    }

    bool isOk() const { return status_.isOk(); }
    explicit operator bool() const { return isOk(); }

    const Status& status() const { return status_; }

    /** @return the held value; panics if this is an error. */
    const T&
    value() const
    {
        if (!value_)
            panic("Result::value on error: ", status_.toString());
        return *value_;
    }

    T&
    value()
    {
        if (!value_)
            panic("Result::value on error: ", status_.toString());
        return *value_;
    }

    /** Move the value out (panics if this is an error). */
    T
    take()
    {
        if (!value_)
            panic("Result::take on error: ", status_.toString());
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace ccsa

#endif // CCSA_BASE_RESULT_HH
