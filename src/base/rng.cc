#include "base/rng.hh"

#include <cmath>
#include <numeric>

namespace ccsa
{

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box–Muller transform; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

std::vector<int>
Rng::sampleIndices(int n, int k)
{
    if (k < 0 || k > n)
        panic("Rng::sampleIndices: k out of range");
    std::vector<int> all(n);
    std::iota(all.begin(), all.end(), 0);
    // Partial Fisher–Yates: first k positions are the sample.
    for (int i = 0; i < k; ++i) {
        int j = i + static_cast<int>(nextU64() % (n - i));
        std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
}

} // namespace ccsa
