/**
 * @file
 * Deterministic pseudo-random number generation for ccsa.
 *
 * All stochastic behaviour in the library (corpus generation, judge
 * noise, weight initialisation, pair sampling, SGD shuffling) flows
 * through Rng instances seeded explicitly by the caller, so every
 * experiment in the repository is bit-reproducible.
 *
 * The generator is PCG32 (O'Neill, 2014): small state, good statistical
 * quality, and identical output on every platform — unlike std::mt19937
 * distributions, whose results vary across standard libraries.
 */

#ifndef CCSA_BASE_RNG_HH
#define CCSA_BASE_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace ccsa
{

/** Deterministic PCG32-based random number generator. */
class Rng
{
  public:
    /** Construct with a seed and an optional stream id. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 1)
    {
        reseed(seed, stream);
    }

    /** Re-initialise the generator state. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 1)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** @return the next raw 32-bit output. */
    std::uint32_t
    nextU32()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** @return the next raw 64-bit output. */
    std::uint64_t
    nextU64()
    {
        return (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    }

    /** @return a uniform integer in [lo, hi] inclusive. Requires lo<=hi. */
    int
    uniformInt(int lo, int hi)
    {
        if (lo > hi)
            panic("Rng::uniformInt: lo > hi");
        std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
        return lo + static_cast<int>(nextU64() % span);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** @return a uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return true with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** @return a standard-normal sample (Box–Muller, cached pair). */
    double normal();

    /** @return a normal sample with the given mean and stddev. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** @return a log-normal sample: exp(N(mu, sigma)). */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(normal(mu, sigma));
    }

    /** Fisher–Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextU64() % i;
            std::swap(v[i - 1], v[j]);
        }
    }

    /** @return a uniformly chosen element of a non-empty vector. */
    template <typename T>
    const T&
    choice(const std::vector<T>& v)
    {
        if (v.empty())
            panic("Rng::choice: empty vector");
        return v[nextU64() % v.size()];
    }

    /**
     * Sample k distinct indices from [0, n) without replacement.
     * @return indices in random order.
     */
    std::vector<int> sampleIndices(int n, int k);

    /** Split off an independent child generator (for sub-tasks). */
    Rng
    split()
    {
        return Rng(nextU64(), nextU64() | 1);
    }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace ccsa

#endif // CCSA_BASE_RNG_HH
