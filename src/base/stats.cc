#include "base/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.hh"

namespace ccsa
{

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        fatal("mean: empty sample");
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
        static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
quantile(std::vector<double> xs, double p)
{
    if (xs.empty())
        fatal("quantile: empty sample");
    if (p < 0.0 || p > 1.0)
        fatal("quantile: p out of [0,1]");
    std::sort(xs.begin(), xs.end());
    double pos = p * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
median(const std::vector<double>& xs)
{
    return quantile(xs, 0.5);
}

Summary
summarize(const std::vector<double>& xs)
{
    if (xs.empty())
        fatal("summarize: empty sample");
    Summary s;
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    s.q1 = quantile(xs, 0.25);
    s.median = quantile(xs, 0.5);
    s.q3 = quantile(xs, 0.75);
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    s.count = xs.size();
    return s;
}

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        fatal("pearson: samples must have equal size >= 2");
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
Histogram::add(std::size_t value)
{
    counts_[bucketIndex(value)]++;
    total_++;
    sum_ += value;
    if (value > max_)
        max_ = value;
}

void
Histogram::merge(const Histogram& other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_ > max_)
        max_ = other.max_;
}

std::size_t
Histogram::quantileUpperBound(double p) const
{
    if (p < 0.0 || p > 1.0)
        fatal("Histogram::quantileUpperBound: p out of [0,1]");
    if (total_ == 0)
        return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i + 1 < kBuckets; ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_; // open-ended overflow bucket: max is the bound
}

double
Histogram::meanValue() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    if (i >= kBuckets)
        fatal("Histogram: bucket index out of range");
    return counts_[i];
}

std::size_t
Histogram::bucketIndex(std::size_t value)
{
    std::size_t i = 0;
    std::size_t bound = 1;
    while (value > bound && i + 1 < kBuckets) {
        bound <<= 1;
        ++i;
    }
    return i;
}

std::size_t
Histogram::bucketUpperBound(std::size_t i)
{
    if (i >= kBuckets)
        fatal("Histogram: bucket index out of range");
    return static_cast<std::size_t>(1) << i;
}

std::string
Histogram::toString() const
{
    if (total_ == 0)
        return "(empty)";
    std::string out;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        if (!out.empty())
            out += ' ';
        if (i + 1 == kBuckets)
            out += ">" + std::to_string(bucketUpperBound(i - 1));
        else
            out += "<=" + std::to_string(bucketUpperBound(i));
        out += ':' + std::to_string(counts_[i]);
    }
    return out;
}

} // namespace ccsa
