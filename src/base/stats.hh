/**
 * @file
 * Descriptive statistics used throughout the benchmark harness —
 * primarily to reproduce the per-problem runtime summaries of Table I
 * and the boxplots of Figure 3 — plus the Histogram used by the
 * serving layer to report batch-size distributions.
 */

#ifndef CCSA_BASE_STATS_HH
#define CCSA_BASE_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccsa
{

/** Five-number-plus summary of a sample. */
struct Summary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

/** @return the arithmetic mean of a non-empty sample. */
double mean(const std::vector<double>& xs);

/** @return the sample standard deviation (n-1 denominator; 0 if n<2). */
double stddev(const std::vector<double>& xs);

/**
 * @return the p-quantile (0<=p<=1) with linear interpolation between
 * order statistics; fatal on an empty sample.
 */
double quantile(std::vector<double> xs, double p);

/** @return the median of the sample. */
double median(const std::vector<double>& xs);

/** @return a complete Summary of the sample (fatal if empty). */
Summary summarize(const std::vector<double>& xs);

/** @return Pearson correlation of two equal-length samples. */
double pearson(const std::vector<double>& xs,
               const std::vector<double>& ys);

/**
 * Power-of-two-bucketed histogram of non-negative integer samples
 * (batch sizes, queue depths, microsecond latencies). Bucket i
 * covers values in (2^(i-1), 2^i], with bucket 0 covering {0, 1};
 * the last bucket is open-ended. Cheap enough to update under a
 * serving-path lock.
 */
class Histogram
{
  public:
    /** Bucket upper bounds 1, 2, 4, ..., 2^24, then overflow. The
     * bounded range must comfortably cover microsecond request
     * latencies (2^24 us ~ 16.8 s): quantiles collapse to max()
     * inside the overflow bucket, so only pathological samples may
     * land there. */
    static constexpr std::size_t kBuckets = 26;

    /** Record one sample. */
    void add(std::size_t value);

    /**
     * Fold another histogram into this one (bucket counts, total,
     * sum, and max all combine losslessly). This is the correct way
     * to aggregate distributions across serving shards: quantiles do
     * NOT merge — averaging per-shard p99s answers a different (and
     * wrong) question — but the underlying histograms do, and the
     * merged histogram yields the quantiles of the combined sample.
     */
    void merge(const Histogram& other);

    /**
     * Estimate the p-quantile (0 <= p <= 1) of the recorded sample:
     * the upper bound of the bucket holding the ceil(p * count)-th
     * smallest sample, clamped to the observed max so quantile(1)
     * reports max() exactly. Resolution is one power-of-two bucket.
     * @return 0 when the histogram is empty.
     */
    std::size_t quantileUpperBound(double p) const;

    /** @return total number of recorded samples. */
    std::uint64_t count() const { return total_; }

    /** @return sum of all recorded samples. */
    std::uint64_t sum() const { return sum_; }

    /** @return largest recorded sample (0 when empty). */
    std::size_t max() const { return max_; }

    /** @return mean sample value (0 when empty). */
    double meanValue() const;

    /** @return number of samples in bucket i. */
    std::uint64_t bucket(std::size_t i) const;

    /** @return the bucket index a value falls into. */
    static std::size_t bucketIndex(std::size_t value);

    /** @return inclusive upper bound of bucket i (last is open). */
    static std::size_t bucketUpperBound(std::size_t i);

    /** Compact rendering of non-empty buckets: "<=1:3 <=4:2". */
    std::string toString() const;

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::size_t max_ = 0;
};

} // namespace ccsa

#endif // CCSA_BASE_STATS_HH
