/**
 * @file
 * Descriptive statistics used throughout the benchmark harness —
 * primarily to reproduce the per-problem runtime summaries of Table I
 * and the boxplots of Figure 3.
 */

#ifndef CCSA_BASE_STATS_HH
#define CCSA_BASE_STATS_HH

#include <vector>

namespace ccsa
{

/** Five-number-plus summary of a sample. */
struct Summary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

/** @return the arithmetic mean of a non-empty sample. */
double mean(const std::vector<double>& xs);

/** @return the sample standard deviation (n-1 denominator; 0 if n<2). */
double stddev(const std::vector<double>& xs);

/**
 * @return the p-quantile (0<=p<=1) with linear interpolation between
 * order statistics; fatal on an empty sample.
 */
double quantile(std::vector<double> xs, double p);

/** @return the median of the sample. */
double median(const std::vector<double>& xs);

/** @return a complete Summary of the sample (fatal if empty). */
Summary summarize(const std::vector<double>& xs);

/** @return Pearson correlation of two equal-length samples. */
double pearson(const std::vector<double>& xs,
               const std::vector<double>& ys);

} // namespace ccsa

#endif // CCSA_BASE_STATS_HH
