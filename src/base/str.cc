#include "base/str.hh"

#include <cctype>
#include <cstdlib>

#include "base/logging.hh"

namespace ccsa
{

std::vector<std::string>
split(const std::string& s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

double
envScale(const char* name)
{
    const char* v = std::getenv(name);
    if (!v)
        return 1.0;
    double scale = std::atof(v);
    if (scale <= 0.0) {
        warn(std::string(name) + " must be positive; using 1.0");
        return 1.0;
    }
    return scale;
}

} // namespace ccsa
