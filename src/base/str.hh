/**
 * @file
 * Small string helpers shared across modules.
 */

#ifndef CCSA_BASE_STR_HH
#define CCSA_BASE_STR_HH

#include <string>
#include <vector>

namespace ccsa
{

/** Split a string on a delimiter character (keeps empty fields). */
std::vector<std::string> split(const std::string& s, char delim);

/** Join strings with a separator. */
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/** @return true if s starts with prefix. */
bool startsWith(const std::string& s, const std::string& prefix);

/** @return true if s ends with suffix. */
bool endsWith(const std::string& s, const std::string& suffix);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string& s);

/**
 * Read a positive scaling factor from the environment (default 1.0).
 * Bench binaries use CCSA_SCALE to grow dataset sizes / epochs for
 * higher-fidelity runs on bigger machines.
 */
double envScale(const char* name = "CCSA_SCALE");

} // namespace ccsa

#endif // CCSA_BASE_STR_HH
