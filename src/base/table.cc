#include "base/table.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace ccsa
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        fatal("TextTable::addRow: expected ", headers_.size(),
              " cells, got ", row.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addRow(const std::string& label,
                  const std::vector<double>& values, int precision)
{
    std::vector<std::string> row;
    row.push_back(label);
    for (double v : values)
        row.push_back(fmtDouble(v, precision));
    addRow(std::move(row));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << std::left << std::setw(
                static_cast<int>(widths[c])) << row[c] << " ";
        }
        os << "|\n";
    };

    auto emitRule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << "+" << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    emitRule();
    emitRow(headers_);
    emitRule();
    for (const auto& row : rows_)
        emitRow(row);
    emitRule();
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            bool quote = row[c].find(',') != std::string::npos;
            if (quote)
                os << '"' << row[c] << '"';
            else
                os << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

void
TextTable::writeCsv(const std::string& path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("TextTable::writeCsv: cannot open " + path);
        return;
    }
    printCsv(f);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace ccsa
