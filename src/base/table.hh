/**
 * @file
 * Console table and CSV emission for the benchmark harness. Every bench
 * binary prints paper-style rows through TextTable and optionally dumps
 * machine-readable CSV next to the console output.
 */

#ifndef CCSA_BASE_TABLE_HH
#define CCSA_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ccsa
{

/** A simple left/right-aligned console table with a header row. */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision into a row. */
    void addRow(const std::string& label,
                const std::vector<double>& values, int precision = 3);

    /** Render the table with aligned columns. */
    void print(std::ostream& os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream& os) const;

    /** Write CSV to a file path; warns (does not throw) on I/O failure. */
    void writeCsv(const std::string& path) const;

    /** @return number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 3);

} // namespace ccsa

#endif // CCSA_BASE_TABLE_HH
