#include "base/thread_pool.hh"

#include <algorithm>
#include <exception>
#include <memory>

namespace ccsa
{

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        threads = 1;
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    // A one-thread pool would only add queue latency over running
    // inline, so anything <= 1 stays worker-less.
    if (threads <= 1)
        return;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    std::lock_guard<std::mutex> serial(shutdownMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return; // already shut down (workers joined below us)
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
    workers_.clear();
}

bool
ThreadPool::isShutdown() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopping_;
}

Status
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return Status::unavailable(
                "ThreadPool: submit after shutdown");
        if (!workers_.empty()) {
            tasks_.push(std::move(task));
            cv_.notify_one();
            return Status::ok();
        }
    }
    // Worker-less pool: run inline on the submitting thread.
    task();
    return Status::ok();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping_ and drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (isShutdown())
        fatal("ThreadPool: parallelFor after shutdown");
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    struct SharedState
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::mutex doneMutex;
        std::condition_variable doneCv;
        std::mutex errorMutex;
        std::exception_ptr error;
    };
    auto state = std::make_shared<SharedState>();

    // One self-scheduling task per worker: each pulls the next free
    // index until the range is exhausted, so uneven per-item cost
    // (trees vary widely in size) balances automatically.
    std::size_t tasks = std::min<std::size_t>(workers_.size(), n);
    for (std::size_t t = 0; t < tasks; ++t) {
        std::function<void()> task = [state, n, &fn] {
            std::size_t finished = 0;
            for (;;) {
                std::size_t i =
                    state->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->errorMutex);
                    if (!state->error)
                        state->error = std::current_exception();
                }
                ++finished;
            }
            if (finished > 0 &&
                state->done.fetch_add(finished) + finished == n) {
                std::lock_guard<std::mutex> lock(state->doneMutex);
                state->doneCv.notify_all();
            }
        };
        // If shutdown raced us between the check above and this
        // submit, fall back to running the span inline — the wait
        // below must never deadlock on a task that was dropped.
        if (!submit(task).isOk())
            task();
    }

    std::unique_lock<std::mutex> lock(state->doneMutex);
    state->doneCv.wait(lock, [&state, n] {
        return state->done.load() == n;
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace ccsa
