/**
 * @file
 * A small reusable worker pool for data-parallel sections. Built for
 * the serving layer's batch encoding (every tree in a batch is
 * independent), but generic: submit() runs one task, parallelFor()
 * partitions an index range over the workers and blocks until done.
 *
 * Determinism contract: parallelFor(n, fn) invokes fn(i) exactly once
 * for every i in [0, n) with no ordering guarantee, so callers that
 * write result[i] from fn(i) observe output that is bitwise-identical
 * regardless of the worker count — the property the Engine tests pin.
 * A pool of size <= 1 executes inline on the calling thread.
 *
 * Lifecycle contract: shutdown() drains outstanding tasks, joins the
 * workers, and is idempotent (double-shutdown is a no-op; the
 * destructor just calls it). After shutdown, submit() reports
 * Unavailable instead of silently running inline, and parallelFor()
 * throws FatalError — enqueue-after-shutdown is a caller bug, never
 * undefined behavior.
 */

#ifndef CCSA_BASE_THREAD_POOL_HH
#define CCSA_BASE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "base/result.hh"

namespace ccsa
{

/** Fixed-size worker pool with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means one per hardware thread,
     * 1 means run every task inline on the submitting thread.
     * Negative values (and a hardware probe of 0) clamp to 1.
     */
    explicit ThreadPool(int threads = 0);

    /** Equivalent to shutdown(). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** @return the number of worker threads (0 when inline-only). */
    int workerCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /**
     * Drain outstanding tasks, then join and release the workers.
     * Safe to call more than once; later calls are no-ops.
     */
    void shutdown();

    /** @return true once shutdown() has begun. */
    bool isShutdown() const;

    /**
     * Enqueue one task; runs inline when the pool has no workers.
     * @return Unavailable (and does not run the task) after
     * shutdown().
     */
    Status submit(std::function<void()> task);

    /**
     * Run fn(i) for every i in [0, n), spread across the workers, and
     * block until all iterations finished. Exceptions thrown by fn
     * are rethrown on the calling thread (first one wins). Throws
     * FatalError if the pool has been shut down.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    /** Serialises shutdown() callers so double-shutdown never races
     * a join in progress. */
    std::mutex shutdownMutex_;
};

} // namespace ccsa

#endif // CCSA_BASE_THREAD_POOL_HH
