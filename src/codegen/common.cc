#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

void
prolog(CodeWriter& w)
{
    w.line("#include <bits/stdc++.h>");
    w.line("using namespace std;");
    w.blank();
}

void
readArray(CodeWriter& w, const StyleKnobs& k, const std::string& arr,
          const std::string& count)
{
    openCountLoop(w, k, k.idx(0), "0", count);
    w.line("cin >> " + arr + "[" + k.idx(0) + "];");
    w.close();
}

void
bubbleSort(CodeWriter& w, const StyleKnobs& k, const std::string& arr,
           const std::string& count)
{
    std::string i = k.idx(0);
    std::string j = k.idx(1);
    w.open("for (int " + i + " = 0; " + i + " < " + count + "; " + i +
           "++)");
    w.open("for (int " + j + " = 0; " + j + " + 1 < " + count + " - " +
           i + "; " + j + "++)");
    w.open("if (" + arr + "[" + j + "] > " + arr + "[" + j + " + 1])");
    if (k.extraTemp) {
        w.line("int " + k.tmp() + " = " + arr + "[" + j + "];");
        w.line(arr + "[" + j + "] = " + arr + "[" + j + " + 1];");
        w.line(arr + "[" + j + " + 1] = " + k.tmp() + ";");
    } else {
        w.line("swap(" + arr + "[" + j + "], " + arr + "[" + j +
               " + 1]);");
    }
    w.close();
    w.close();
    w.close();
}

void
stdSort(CodeWriter& w, const std::string& arr, const std::string& count)
{
    w.line("sort(" + arr + ", " + arr + " + " + count + ");");
}

void
deadCode(CodeWriter& w, const StyleKnobs& k, Rng& rng)
{
    if (!k.deadCode)
        return;
    int which = rng.uniformInt(0, 2);
    if (which == 0) {
        w.line("int unused_flag = 0;");
        w.open("if (unused_flag == 12345)");
        w.line("cout << \"impossible\" << \"\\n\";");
        w.close();
    } else if (which == 1) {
        w.line("double dbg_ratio = 0.0;");
        w.line("dbg_ratio = dbg_ratio + 1.0;");
    } else {
        w.line("int spare[4];");
        w.line("spare[0] = 0;");
        w.line("spare[1] = spare[0] + 1;");
    }
}

void
secondPass(CodeWriter& w, const StyleKnobs& k, const std::string& arr,
           const std::string& count)
{
    if (!k.secondPass)
        return;
    std::string i = k.idx(2);
    w.line("long long check_sum = 0;");
    w.open("for (int " + i + " = 0; " + i + " < " + count + "; " + i +
           "++)");
    w.line("check_sum += " + arr + "[" + i + "];");
    w.close();
    w.open("if (check_sum < 0)");
    w.line("return 0;");
    w.close();
}

void
openCountLoop(CodeWriter& w, const StyleKnobs& k, const std::string& var,
              const std::string& from, const std::string& to)
{
    std::string inc = k.preIncrement ? "++" + var : var + "++";
    if (k.useWhileLoops) {
        w.line("int " + var + " = " + from + ";");
        w.open("while (" + var + " < " + to + ")");
        // Caller's body comes first; increment is emitted by a trick:
        // we cannot inject after the body, so emit increment-first
        // form with adjusted semantics instead.
        w.line(inc + ";");
    } else {
        w.open("for (int " + var + " = " + from + "; " + var + " < " +
               to + "; " + inc + ")");
    }
}

} // namespace gen
} // namespace ccsa
