/**
 * @file
 * Shared emission fragments used by several family generators:
 * standard prologs, array-reading loops, the three sorting idioms
 * (counting / std::sort / bubble), dead code and redundant passes.
 */

#ifndef CCSA_CODEGEN_COMMON_HH
#define CCSA_CODEGEN_COMMON_HH

#include "base/rng.hh"
#include "codegen/style.hh"
#include "codegen/writer.hh"

namespace ccsa
{
namespace gen
{

/** Emit the #include / using prolog. */
void prolog(CodeWriter& w);

/** Emit a loop reading count elements of arr from cin. */
void readArray(CodeWriter& w, const StyleKnobs& k,
               const std::string& arr, const std::string& count);

/** Emit an in-place bubble sort of arr[0..count). O(n^2). */
void bubbleSort(CodeWriter& w, const StyleKnobs& k,
                const std::string& arr, const std::string& count);

/** Emit a call to std::sort over arr[0..count). O(n log n). */
void stdSort(CodeWriter& w, const std::string& arr,
             const std::string& count);

/** Emit harmless unused declarations / dead branches. */
void deadCode(CodeWriter& w, const StyleKnobs& k, Rng& rng);

/** Emit a redundant O(count) verification pass over arr. */
void secondPass(CodeWriter& w, const StyleKnobs& k,
                const std::string& arr, const std::string& count);

/**
 * Emit a counting loop header "for (var = from; var < to; ++var)"
 * honouring the while-loop and pre-increment knobs; the caller must
 * close() the block.
 */
void openCountLoop(CodeWriter& w, const StyleKnobs& k,
                   const std::string& var, const std::string& from,
                   const std::string& to);

} // namespace gen
} // namespace ccsa

#endif // CCSA_CODEGEN_COMMON_HH
