/**
 * @file
 * Per-family generator factories (one translation unit per family).
 */

#ifndef CCSA_CODEGEN_FAMILIES_HH
#define CCSA_CODEGEN_FAMILIES_HH

#include <memory>

#include "codegen/generator.hh"

namespace ccsa
{
namespace gen
{

std::unique_ptr<ProblemGenerator> makeFamilyA(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyB(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyC(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyD(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyE(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyF(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyG(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyH(int problem_seed);
std::unique_ptr<ProblemGenerator> makeFamilyI(int problem_seed);

} // namespace gen
} // namespace ccsa

#endif // CCSA_CODEGEN_FAMILIES_HH
