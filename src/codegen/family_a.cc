/**
 * @file
 * Family A — "Registration" (Codeforces 4C), the hashing problem of
 * Table I. Read n names; print OK for first occurrences, name+count
 * for repeats. Variants:
 *   0: open-addressing hash table            ~ O(n)
 *   1: offline std::sort + binary search     ~ O(n log n)
 *   2: linear scan over previous names       ~ O(n^2)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyA : public ProblemGenerator
{
  public:
    explicit FamilyA(int seed)
        : hashSize_(seed % 2 == 0 ? 131072 : 262144),
          hashMul_(seed % 3 == 0 ? 31 : 131),
          probeStep_(seed % 4 == 0 ? 7 : 1)
    {}

    ProblemFamily family() const override { return ProblemFamily::A; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        switch (variant) {
          case 0: emitHash(w, k, rng); break;
          case 1: emitSortSearch(w, k, rng); break;
          default: emitLinearScan(w, k, rng); break;
        }
        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitHash(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        std::string hs = std::to_string(hashSize_);
        w.line("const int HS = " + hs + ";");
        w.line("string keys[" + hs + "];");
        w.line("int cnt[" + hs + "];");
        w.blank();
        std::string sArg = k.passByValue ? "string s" : "string& s";
        w.open("int hashName(" + sArg + ")");
        w.line("long long h = 7;");
        w.open("for (int " + k.idx(0) + " = 0; " + k.idx(0) +
               " < s.size(); " + k.idx(0) + "++)");
        w.line("h = h * " + std::to_string(hashMul_) + " + s[" +
               k.idx(0) + "];");
        w.line("h = h % " + hs + ";");
        w.close();
        w.open("if (h < 0)");
        w.line("h += " + hs + ";");
        w.close();
        w.line("return h;");
        w.close();
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
        w.open("for (int " + k.idx(0) + " = 0; " + k.idx(0) + " < n; " +
               (k.preIncrement ? "++" + k.idx(0) : k.idx(0) + "++") +
               ")");
        w.line("string name;");
        w.line("cin >> name;");
        w.line("int h = hashName(name);");
        w.open("while (cnt[h] > 0 && keys[h] != name)");
        w.line("h = h + " + std::to_string(probeStep_) + ";");
        w.open("if (h >= HS)");
        w.line("h = h - HS;");
        w.close();
        w.close();
        w.open("if (cnt[h] == 0)");
        w.line("keys[h] = name;");
        w.line("cnt[h] = 1;");
        w.line("cout << \"OK\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << name << cnt[h] << " + k.eol() + ";");
        w.line("cnt[h] += 1;");
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    void
    emitSortSearch(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
        w.line("vector<string> names(n);");
        readArray(w, k, "names", "n");
        w.line("vector<string> pool(n);");
        w.open("for (int " + k.idx(0) + " = 0; " + k.idx(0) +
               " < n; " + k.idx(0) + "++)");
        w.line("pool[" + k.idx(0) + "] = names[" + k.idx(0) + "];");
        w.close();
        w.line("sort(pool.begin(), pool.end());");
        w.line("vector<int> seen(n, 0);");
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 0; " + i + " < n; " + i + "++)");
        w.line("int lo = 0;");
        w.line("int hi = n;");
        w.open("while (lo < hi)");
        w.line("int mid = (lo + hi) / 2;");
        w.open("if (pool[mid] < names[" + i + "])");
        w.line("lo = mid + 1;");
        w.close();
        w.open("else");
        w.line("hi = mid;");
        w.close();
        w.close();
        if (k.extraTemp) {
            w.line("int " + k.tmp() + " = seen[lo];");
            w.open("if (" + k.tmp() + " == 0)");
        } else {
            w.open("if (seen[lo] == 0)");
        }
        w.line("cout << \"OK\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << names[" + i + "] << seen[lo] << " + k.eol() +
               ";");
        w.close();
        w.line("seen[lo] += 1;");
        w.close();
        secondPass(w, k, "seen", "n");
        w.line("return 0;");
        w.close();
    }

    void
    emitLinearScan(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        bool helper = k.useHelperFunction;
        if (helper) {
            std::string vecArg = k.passByValue
                ? "vector<string> names" : "vector<string>& names";
            w.open("int countBefore(" + vecArg + ", int upto)");
            w.line("int c = 0;");
            w.open("for (int " + k.idx(1) + " = 0; " + k.idx(1) +
                   " < upto; " + k.idx(1) + "++)");
            w.open("if (names[" + k.idx(1) + "] == names[upto])");
            w.line("c++;");
            w.close();
            w.close();
            w.line("return c;");
            w.close();
            w.blank();
        }
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
        w.line("vector<string> names(n);");
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 0; " + i + " < n; " + i + "++)");
        w.line("cin >> names[" + i + "];");
        w.line("int c = 0;");
        if (helper) {
            w.line("c = countBefore(names, " + i + ");");
        } else {
            std::string j = k.idx(1);
            w.open("for (int " + j + " = 0; " + j + " < " + i + "; " +
                   j + "++)");
            w.open("if (names[" + j + "] == names[" + i + "])");
            w.line("c++;");
            w.close();
            w.close();
        }
        w.open("if (c == 0)");
        w.line("cout << \"OK\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << names[" + i + "] << c << " + k.eol() + ";");
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    int hashSize_;
    int hashMul_;
    int probeStep_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyA(int problem_seed)
{
    return std::make_unique<FamilyA>(problem_seed);
}

} // namespace gen
} // namespace ccsa
