/**
 * @file
 * Family B — "T-Prime" (Codeforces 230B), binary search / number
 * theory. Read t numbers; answer YES iff the number is the square of
 * a prime. Variants:
 *   0: sieve of Eratosthenes + O(1) lookups      ~ O(LIM log log LIM)
 *   1: trial division up to sqrt(x) per query    ~ O(t sqrt(x))
 *   2: trial division with sqrt() re-evaluated in the loop condition
 *      and the whole check repeated redundantly  ~ O(c t sqrt(x))
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyB : public ProblemGenerator
{
  public:
    explicit FamilyB(int seed)
        : limit_(seed % 2 == 0 ? 1000000 : 1048576),
          repeats_(seed % 3 == 0 ? 2 : 3)
    {}

    ProblemFamily family() const override { return ProblemFamily::B; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        switch (variant) {
          case 0: emitSieve(w, k, rng); break;
          case 1: emitTrialDivision(w, k, rng, false); break;
          default: emitTrialDivision(w, k, rng, true); break;
        }
        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitSieve(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        std::string lim = std::to_string(limit_);
        w.line("const int LIM = " + lim + ";");
        w.line("int composite[" + lim + "];");
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        std::string i = k.idx(0);
        std::string j = k.idx(1);
        w.open("for (int " + i + " = 2; " + i + " < LIM; " + i + "++)");
        w.open("if (composite[" + i + "] == 0)");
        w.open("for (int " + j + " = " + i + " + " + i + "; " + j +
               " < LIM; " + j + " += " + i + ")");
        w.line("composite[" + j + "] = 1;");
        w.close();
        w.close();
        w.close();
        w.line("int t;");
        w.line("cin >> t;");
        w.open("while (t > 0)");
        w.line("t--;");
        w.line("long long x;");
        w.line("cin >> x;");
        w.line("double root = sqrt(1.0 * x);");
        w.line("long long r = root;");
        emitRootFix(w);
        w.open("if (r > 1 && r * r == x && r < LIM && composite[r]"
               " == 0)");
        w.line("cout << \"YES\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << \"NO\" << " + k.eol() + ";");
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    void
    emitTrialDivision(CodeWriter& w, const StyleKnobs& k, Rng& rng,
                      bool slow) const
    {
        bool helper = k.useHelperFunction;
        if (helper) {
            w.open("int isPrime(long long v)");
            emitPrimeLoop(w, k, slow, "v");
            w.close();
            w.blank();
        }
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int t;");
        w.line("cin >> t;");
        w.open("while (t > 0)");
        w.line("t--;");
        w.line("long long x;");
        w.line("cin >> x;");
        w.line("double root = sqrt(1.0 * x);");
        w.line("long long r = root;");
        emitRootFix(w);
        w.line("int good = 0;");
        w.open("if (r > 1 && r * r == x)");
        if (helper) {
            if (slow) {
                w.open("for (int rep = 0; rep < " +
                       std::to_string(repeats_) + "; rep++)");
                w.line("good = isPrime(r);");
                w.close();
            } else {
                w.line("good = isPrime(r);");
            }
        } else {
            if (slow) {
                w.open("for (int rep = 0; rep < " +
                       std::to_string(repeats_) + "; rep++)");
            }
            w.line("int prime = 1;");
            std::string d = k.idx(1);
            if (slow) {
                w.open("for (long long " + d + " = 2; " + d +
                       " <= sqrt(1.0 * x); " + d + "++)");
            } else {
                w.open("for (long long " + d + " = 2; " + d + " * " +
                       d + " <= r; " + d + "++)");
            }
            w.open("if (r % " + d + " == 0)");
            w.line("prime = 0;");
            w.close();
            w.close();
            w.line("good = prime;");
            if (slow)
                w.close();
        }
        w.close();
        w.open("if (good == 1)");
        w.line("cout << \"YES\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << \"NO\" << " + k.eol() + ";");
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    void
    emitPrimeLoop(CodeWriter& w, const StyleKnobs& k, bool slow,
                  const std::string& v) const
    {
        w.line("int prime = 1;");
        std::string d = k.idx(2);
        if (slow) {
            w.open("for (long long " + d + " = 2; " + d +
                   " <= sqrt(1.0 * " + v + " * " + v + "); " + d +
                   "++)");
        } else {
            w.open("for (long long " + d + " = 2; " + d + " * " + d +
                   " <= " + v + "; " + d + "++)");
        }
        w.open("if (" + v + " % " + d + " == 0)");
        w.line("prime = 0;");
        w.close();
        w.close();
        w.line("return prime;");
    }

    void
    emitRootFix(CodeWriter& w) const
    {
        // Guard against floating-point truncation of the root.
        w.open("while (r * r < x)");
        w.line("r++;");
        w.close();
        w.open("while (r * r > x)");
        w.line("r--;");
        w.close();
    }

    int limit_;
    int repeats_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyB(int problem_seed)
{
    return std::make_unique<FamilyB>(problem_seed);
}

} // namespace gen
} // namespace ccsa
