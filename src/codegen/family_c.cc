/**
 * @file
 * Family C — "Minimum Value Rectangle" (Codeforces 1027C), greedy.
 * Read n stick lengths, find two pairs of equal sticks minimising
 * (P^2)/S. The greedy needs the sticks sorted; variants differ in how:
 *   0: counting sort over the bounded value domain  ~ O(n + V)
 *   1: std::sort                                    ~ O(n log n)
 *   2: bubble sort                                  ~ O(n^2)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyC : public ProblemGenerator
{
  public:
    explicit FamilyC(int seed)
        : maxValue_(seed % 2 == 0 ? 10000 : 16384)
    {}

    ProblemFamily family() const override { return ProblemFamily::C; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        std::string a = k.arr();
        w.line("int " + a + "[200005];");
        w.line("int pairs[200005];");
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
        readArray(w, k, a, "n");

        if (variant == 0)
            emitCountingSort(w, k, a);
        else if (variant == 1)
            stdSort(w, a, "n");
        else
            bubbleSort(w, k, a, "n");

        emitPairScan(w, k, a);
        secondPass(w, k, a, "n");
        w.line("return 0;");
        w.close();

        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitCountingSort(CodeWriter& w, const StyleKnobs& k,
                     const std::string& a) const
    {
        std::string maxv = std::to_string(maxValue_);
        std::string i = k.idx(0);
        std::string j = k.idx(1);
        w.line("int freq[" + std::to_string(maxValue_ + 1) + "];");
        w.open("for (int " + i + " = 0; " + i + " <= " + maxv + "; " +
               i + "++)");
        w.line("freq[" + i + "] = 0;");
        w.close();
        w.open("for (int " + i + " = 0; " + i + " < n; " + i + "++)");
        w.line("freq[" + a + "[" + i + "]] += 1;");
        w.close();
        w.line("int out_pos = 0;");
        w.open("for (int " + i + " = 0; " + i + " <= " + maxv + "; " +
               i + "++)");
        w.open("for (int " + j + " = 0; " + j + " < freq[" + i +
               "]; " + j + "++)");
        w.line(a + "[out_pos] = " + i + ";");
        w.line("out_pos++;");
        w.close();
        w.close();
    }

    void
    emitPairScan(CodeWriter& w, const StyleKnobs& k,
                 const std::string& a) const
    {
        std::string i = k.idx(0);
        // Collect equal adjacent sticks into pairs[].
        w.line("int np = 0;");
        w.open("for (int " + i + " = 0; " + i + " + 1 < n; " + i +
               "++)");
        w.open("if (" + a + "[" + i + "] == " + a + "[" + i + " + 1])");
        w.line("pairs[np] = " + a + "[" + i + "];");
        w.line("np++;");
        w.line(i + "++;");
        w.close();
        w.close();
        // Scan adjacent pairs for the best perimeter-to-area ratio.
        w.line("long long best_a = pairs[0];");
        w.line("long long best_b = pairs[1];");
        w.line("double best = 1e18;");
        w.open("for (int " + i + " = 0; " + i + " + 1 < np; " + i +
               "++)");
        if (k.extraTemp) {
            w.line("long long " + k.tmp() + " = pairs[" + i + "];");
            w.line("long long w2 = pairs[" + i + " + 1];");
            w.line("double ratio = 1.0 * (" + k.tmp() + " + w2) * (" +
                   k.tmp() + " + w2) / (1.0 * " + k.tmp() +
                   " * w2);");
        } else {
            w.line("double ratio = 1.0 * (pairs[" + i + "] + pairs[" +
                   i + " + 1]) * (pairs[" + i + "] + pairs[" + i +
                   " + 1]) / (1.0 * pairs[" + i + "] * pairs[" + i +
                   " + 1]);");
        }
        w.open("if (ratio < best)");
        w.line("best = ratio;");
        w.line("best_a = pairs[" + i + "];");
        w.line("best_b = pairs[" + i + " + 1];");
        w.close();
        w.close();
        w.line("cout << best_a << \" \" << best_a << \" \" << best_b"
               " << \" \" << best_b << " + k.eol() + ";");
    }

    int maxValue_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyC(int problem_seed)
{
    return std::make_unique<FamilyC>(problem_seed);
}

} // namespace gen
} // namespace ccsa
