/**
 * @file
 * Family D — "Bash and a Tough Math Puzzle" (Codeforces 914D), data
 * structure + number theory: range-gcd queries with point updates.
 * Variants:
 *   0: iterative segment tree over gcd        ~ O((n + q) log n)
 *   1: sqrt decomposition into blocks         ~ O(n + q sqrt(n))
 *   2: naive full scan per query              ~ O(q n)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyD : public ProblemGenerator
{
  public:
    explicit FamilyD(int seed)
        : useBuiltinGcd_(seed % 2 == 1)
    {}

    ProblemFamily family() const override { return ProblemFamily::D; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        if (!useBuiltinGcd_)
            emitGcdFn(w);
        switch (variant) {
          case 0: emitSegTree(w, k, rng); break;
          case 1: emitSqrtDecomp(w, k, rng); break;
          default: emitNaive(w, k, rng); break;
        }
        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    std::string
    gcdCall(const std::string& a, const std::string& b) const
    {
        if (useBuiltinGcd_)
            return "__gcd(" + a + ", " + b + ")";
        return "gcdFn(" + a + ", " + b + ")";
    }

    void
    emitGcdFn(CodeWriter& w) const
    {
        w.open("long long gcdFn(long long a, long long b)");
        w.open("if (b == 0)");
        w.line("return a;");
        w.close();
        w.line("return gcdFn(b, a % b);");
        w.close();
        w.blank();
    }

    void
    emitQueryProlog(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
    }

    void
    emitSegTree(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        emitQueryProlog(w, k, rng);
        std::string i = k.idx(0);
        w.line("int sz = 1;");
        w.open("while (sz < n)");
        w.line("sz *= 2;");
        w.close();
        w.line("vector<long long> tree(2 * sz, 0);");
        w.open("for (int " + i + " = 0; " + i + " < n; " + i + "++)");
        w.line("cin >> tree[sz + " + i + "];");
        w.close();
        w.open("for (int " + i + " = sz - 1; " + i + " > 0; " + i +
               "--)");
        w.line("tree[" + i + "] = " +
               gcdCall("tree[2 * " + i + "]",
                       "tree[2 * " + i + " + 1]") + ";");
        w.close();
        w.line("int q;");
        w.line("cin >> q;");
        w.open("for (int qq = 0; qq < q; qq++)");
        w.line("int type;");
        w.line("cin >> type;");
        w.open("if (type == 2)");
        w.line("int pos;");
        w.line("long long val;");
        w.line("cin >> pos >> val;");
        w.line("pos = pos - 1 + sz;");
        w.line("tree[pos] = val;");
        w.line("pos /= 2;");
        w.open("while (pos >= 1)");
        w.line("tree[pos] = " +
               gcdCall("tree[2 * pos]", "tree[2 * pos + 1]") + ";");
        w.line("pos /= 2;");
        w.close();
        w.close();
        w.open("else");
        w.line("int l;");
        w.line("int r;");
        w.line("long long x;");
        w.line("cin >> l >> r >> x;");
        w.line("long long g = 0;");
        w.line("l = l - 1 + sz;");
        w.line("r = r + sz;");
        w.open("while (l < r)");
        w.open("if (l % 2 == 1)");
        w.line("g = " + gcdCall("g", "tree[l]") + ";");
        w.line("l++;");
        w.close();
        w.open("if (r % 2 == 1)");
        w.line("r--;");
        w.line("g = " + gcdCall("g", "tree[r]") + ";");
        w.close();
        w.line("l /= 2;");
        w.line("r /= 2;");
        w.close();
        w.open("if (g % x == 0 || g == x)");
        w.line("cout << \"YES\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << \"NO\" << " + k.eol() + ";");
        w.close();
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    void
    emitSqrtDecomp(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        emitQueryProlog(w, k, rng);
        std::string i = k.idx(0);
        std::string b = k.idx(1);
        w.line("vector<long long> " + k.arr() + "(n, 0);");
        readArray(w, k, k.arr(), "n");
        w.line("int bs = 1;");
        w.open("while (bs * bs < n)");
        w.line("bs++;");
        w.close();
        w.line("int nb = n / bs + 1;");
        w.line("vector<long long> blockG(nb + 1, 0);");
        w.open("for (int " + b + " = 0; " + b + " <= nb; " + b + "++)");
        w.open("for (int " + i + " = 0; " + i + " < bs; " + i + "++)");
        w.line("int pos = " + b + " * bs + " + i + ";");
        w.open("if (pos < n)");
        w.line("blockG[" + b + "] = " +
               gcdCall("blockG[" + b + "]",
                       k.arr() + "[pos]") + ";");
        w.close();
        w.close();
        w.close();
        w.line("int q;");
        w.line("cin >> q;");
        w.open("for (int qq = 0; qq < q; qq++)");
        w.line("int type;");
        w.line("cin >> type;");
        w.open("if (type == 2)");
        w.line("int pos;");
        w.line("long long val;");
        w.line("cin >> pos >> val;");
        w.line(k.arr() + "[pos - 1] = val;");
        w.line("int tb = (pos - 1) / bs;");
        w.line("blockG[tb] = 0;");
        w.open("for (int " + i + " = 0; " + i + " < bs; " + i + "++)");
        w.line("int p2 = tb * bs + " + i + ";");
        w.open("if (p2 < n)");
        w.line("blockG[tb] = " +
               gcdCall("blockG[tb]", k.arr() + "[p2]") + ";");
        w.close();
        w.close();
        w.close();
        w.open("else");
        w.line("int l;");
        w.line("int r;");
        w.line("long long x;");
        w.line("cin >> l >> r >> x;");
        w.line("long long g = 0;");
        w.open("for (int " + b + " = 0; " + b + " <= nb; " + b + "++)");
        w.line("g = " + gcdCall("g", "blockG[" + b + "]") + ";");
        w.close();
        w.open("if (g % x == 0 || g == x)");
        w.line("cout << \"YES\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << \"NO\" << " + k.eol() + ";");
        w.close();
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    void
    emitNaive(CodeWriter& w, const StyleKnobs& k, Rng& rng) const
    {
        emitQueryProlog(w, k, rng);
        std::string i = k.idx(0);
        w.line("vector<long long> " + k.arr() + "(n, 0);");
        readArray(w, k, k.arr(), "n");
        w.line("int q;");
        w.line("cin >> q;");
        w.open("for (int qq = 0; qq < q; qq++)");
        w.line("int type;");
        w.line("cin >> type;");
        w.open("if (type == 2)");
        w.line("int pos;");
        w.line("long long val;");
        w.line("cin >> pos >> val;");
        w.line(k.arr() + "[pos - 1] = val;");
        w.close();
        w.open("else");
        w.line("int l;");
        w.line("int r;");
        w.line("long long x;");
        w.line("cin >> l >> r >> x;");
        w.line("long long g = 0;");
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.open("if (" + i + " >= l && " + i + " <= r)");
        w.line("g = " + gcdCall("g", k.arr() + "[" + i + " - 1]") +
               ";");
        w.close();
        w.close();
        w.open("if (g % x == 0 || g == x)");
        w.line("cout << \"YES\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << \"NO\" << " + k.eol() + ";");
        w.close();
        w.close();
        w.close();
        w.line("return 0;");
        w.close();
    }

    bool useBuiltinGcd_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyD(int problem_seed)
{
    return std::make_unique<FamilyD>(problem_seed);
}

} // namespace gen
} // namespace ccsa
