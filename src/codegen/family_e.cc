/**
 * @file
 * Family E — constructive problem (Codeforces 1004C style): for every
 * first occurrence a_i, add the number of distinct values in the
 * suffix after i; print the total. Variants:
 *   0: two linear passes with count arrays        ~ O(n + V)
 *   1: sorted-copy + binary search bookkeeping    ~ O(n log n)
 *   2: per-position suffix rescan                 ~ O(n^2)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyE : public ProblemGenerator
{
  public:
    explicit FamilyE(int seed)
        : maxValue_(seed % 2 == 0 ? 100001 : 131072)
    {}

    ProblemFamily family() const override { return ProblemFamily::E; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        std::string a = k.arr();
        std::string maxv = std::to_string(maxValue_);
        w.line("int " + a + "[100005];");
        w.line("int suffix_distinct[100005];");
        w.line("int seen_before[" + maxv + "];");
        w.line("int seen_after[" + maxv + "];");
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
        readArray(w, k, a, "n");
        switch (variant) {
          case 0: emitLinear(w, k, a); break;
          case 1: emitSorted(w, k, a); break;
          default: emitQuadratic(w, k, a); break;
        }
        secondPass(w, k, a, "n");
        w.line("return 0;");
        w.close();

        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitLinear(CodeWriter& w, const StyleKnobs& k,
               const std::string& a) const
    {
        std::string i = k.idx(0);
        // Suffix distinct counts, right to left.
        w.line("int distinct = 0;");
        w.open("for (int " + i + " = n - 1; " + i + " >= 0; " + i +
               "--)");
        w.open("if (seen_after[" + a + "[" + i + "]] == 0)");
        w.line("seen_after[" + a + "[" + i + "]] = 1;");
        w.line("distinct++;");
        w.close();
        w.line("suffix_distinct[" + i + "] = distinct;");
        w.close();
        w.line("long long total = 0;");
        w.open("for (int " + i + " = 0; " + i + " + 1 < n; " + i +
               "++)");
        w.open("if (seen_before[" + a + "[" + i + "]] == 0)");
        w.line("seen_before[" + a + "[" + i + "]] = 1;");
        w.line("total += suffix_distinct[" + i + " + 1];");
        w.close();
        w.close();
        w.line("cout << total << " + k.eol() + ";");
    }

    void
    emitSorted(CodeWriter& w, const StyleKnobs& k,
               const std::string& a) const
    {
        std::string i = k.idx(0);
        // Sort a copy to count distinct values by adjacency, then use
        // binary searches to track suffix membership thresholds.
        w.line("int pool[100005];");
        w.open("for (int " + i + " = 0; " + i + " < n; " + i + "++)");
        w.line("pool[" + i + "] = " + a + "[" + i + "];");
        w.close();
        stdSort(w, "pool", "n");
        // Right-to-left suffix distinct with count array (kept), but
        // first-occurrence test via binary search in the sorted pool
        // plus a seen counter per rank.
        w.line("int distinct = 0;");
        w.open("for (int " + i + " = n - 1; " + i + " >= 0; " + i +
               "--)");
        w.open("if (seen_after[" + a + "[" + i + "]] == 0)");
        w.line("seen_after[" + a + "[" + i + "]] = 1;");
        w.line("distinct++;");
        w.close();
        w.line("suffix_distinct[" + i + "] = distinct;");
        w.close();
        w.line("long long total = 0;");
        w.open("for (int " + i + " = 0; " + i + " + 1 < n; " + i +
               "++)");
        w.line("int lo = 0;");
        w.line("int hi = n;");
        w.open("while (lo < hi)");
        w.line("int mid = (lo + hi) / 2;");
        w.open("if (pool[mid] < " + a + "[" + i + "])");
        w.line("lo = mid + 1;");
        w.close();
        w.open("else");
        w.line("hi = mid;");
        w.close();
        w.close();
        w.open("if (seen_before[" + a + "[" + i + "]] == 0)");
        w.line("seen_before[" + a + "[" + i + "]] = 1;");
        w.line("total += suffix_distinct[" + i + " + 1];");
        w.close();
        w.close();
        w.line("cout << total << " + k.eol() + ";");
    }

    void
    emitQuadratic(CodeWriter& w, const StyleKnobs& k,
                  const std::string& a) const
    {
        std::string i = k.idx(0);
        std::string j = k.idx(1);
        w.line("long long total = 0;");
        w.open("for (int " + i + " = 0; " + i + " + 1 < n; " + i +
               "++)");
        // First-occurrence test: rescan the prefix.
        w.line("int first_here = 1;");
        w.open("for (int " + j + " = 0; " + j + " < " + i + "; " + j +
               "++)");
        w.open("if (" + a + "[" + j + "] == " + a + "[" + i + "])");
        w.line("first_here = 0;");
        w.close();
        w.close();
        w.open("if (first_here == 1)");
        // Count suffix distinct with a mark array, then undo marks.
        w.line("int distinct = 0;");
        w.open("for (int " + j + " = " + i + " + 1; " + j + " < n; " +
               j + "++)");
        w.open("if (seen_after[" + a + "[" + j + "]] == 0)");
        w.line("seen_after[" + a + "[" + j + "]] = 1;");
        w.line("distinct++;");
        w.close();
        w.close();
        w.open("for (int " + j + " = " + i + " + 1; " + j + " < n; " +
               j + "++)");
        w.line("seen_after[" + a + "[" + j + "]] = 0;");
        w.close();
        w.line("total += distinct;");
        w.close();
        w.close();
        w.line("cout << total << " + k.eol() + ";");
    }

    int maxValue_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyE(int problem_seed)
{
    return std::make_unique<FamilyE>(problem_seed);
}

} // namespace gen
} // namespace ccsa
