/**
 * @file
 * Family F — "Military Problem" (Codeforces 1006E): rooted tree,
 * queries (u, k) ask for the k-th node in the preorder traversal of
 * u's subtree. Variants:
 *   0: one iterative DFS (tin/subtree size), O(1) queries  ~ O(n + q)
 *   1: one recursive DFS, O(1) queries                     ~ O(n + q)
 *      (larger constant: call overhead per node)
 *   2: fresh BFS walk of the subtree per query             ~ O(q n)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyF : public ProblemGenerator
{
  public:
    explicit FamilyF(int seed)
        : oneIndexed_(seed % 2 == 0)
    {}

    ProblemFamily family() const override { return ProblemFamily::F; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        w.line("int parentOf[200005];");
        w.line("int tin[200005];");
        w.line("int sz[200005];");
        w.line("int order[200005];");
        w.line("int timerPos = 0;");
        w.line("vector<vector<int>> kids(200005);");
        if (variant == 1)
            emitRecursiveDfs(w, k);
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("int q;");
        w.line("cin >> n >> q;");
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 2; " + i + " <= n; " + i + "++)");
        w.line("int p;");
        w.line("cin >> p;");
        w.line("parentOf[" + i + "] = p;");
        w.line("kids[p].push_back(" + i + ");");
        w.close();

        if (variant == 0)
            emitIterativeDfs(w, k);
        else if (variant == 1)
            w.line("dfs(1);");

        if (variant <= 1)
            emitFastQueries(w, k);
        else
            emitNaiveQueries(w, k);
        w.line("return 0;");
        w.close();

        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitRecursiveDfs(CodeWriter& w, const StyleKnobs& k) const
    {
        w.blank();
        w.open("void dfs(int u)");
        w.line("tin[u] = timerPos;");
        w.line("order[timerPos] = u;");
        w.line("timerPos++;");
        w.line("sz[u] = 1;");
        std::string c = k.idx(1);
        w.open("for (int " + c + " = 0; " + c + " < kids[u].size(); " +
               c + "++)");
        w.line("int v = kids[u][" + c + "];");
        w.line("dfs(v);");
        w.line("sz[u] += sz[v];");
        w.close();
        w.close();
    }

    void
    emitIterativeDfs(CodeWriter& w, const StyleKnobs& k) const
    {
        // Explicit-stack preorder; the steps guard both bounds the
        // walk and keeps the trip count derivable from n.
        w.line("int stackArr[200005];");
        w.line("int top = 0;");
        w.line("stackArr[top] = 1;");
        w.line("top = 1;");
        w.line("int steps = 0;");
        w.open("while (top > 0 && steps < n)");
        w.line("steps++;");
        w.line("top--;");
        w.line("int u = stackArr[top];");
        w.line("tin[u] = timerPos;");
        w.line("order[timerPos] = u;");
        w.line("timerPos++;");
        std::string c = k.idx(1);
        w.open("for (int " + c + " = kids[u].size() - 1; " + c +
               " >= 0; " + c + "--)");
        w.line("stackArr[top] = kids[u][" + c + "];");
        w.line("top++;");
        w.close();
        w.close();
        // Subtree sizes: children come after parents in input order,
        // so accumulate from the back.
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.line("sz[" + i + "] = 1;");
        w.close();
        w.open("for (int " + i + " = n; " + i + " >= 2; " + i + "--)");
        w.line("sz[parentOf[" + i + "]] += sz[" + i + "];");
        w.close();
    }

    void
    emitFastQueries(CodeWriter& w, const StyleKnobs& k) const
    {
        w.open("for (int qq = 0; qq < q; qq++)");
        w.line("int u;");
        w.line("int kk;");
        w.line("cin >> u >> kk;");
        w.open("if (kk > sz[u])");
        w.line("cout << -1 << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << order[tin[u] + kk - 1] << " + k.eol() + ";");
        w.close();
        w.close();
    }

    void
    emitNaiveQueries(CodeWriter& w, const StyleKnobs& k) const
    {
        // Naive per-query scan: for every node, walk its ancestor
        // chain to test subtree membership, counting matches in
        // preorder — the classic accepted-but-slow O(q n) pattern.
        emitIterativeDfs(w, k);
        std::string v = k.idx(1);
        w.open("for (int qq = 0; qq < q; qq++)");
        w.line("int u;");
        w.line("int kk;");
        w.line("cin >> u >> kk;");
        w.line("int found = -1;");
        w.line("int seen = 0;");
        w.open("for (int " + v + " = 1; " + v + " <= n; " + v + "++)");
        w.line("int node = order[" + v + " - 1];");
        w.line("int anc = node;");
        w.line("int inside = 0;");
        w.open("while (anc != 0)");
        w.open("if (anc == u)");
        w.line("inside = 1;");
        w.close();
        w.line("anc = parentOf[anc];");
        w.close();
        w.open("if (inside == 1)");
        w.line("seen++;");
        w.open("if (seen == kk && found == -1)");
        w.line("found = node;");
        w.close();
        w.close();
        w.close();
        w.line("cout << found << " + k.eol() + ";");
        w.close();
        (void)oneIndexed_;
    }

    bool oneIndexed_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyF(int problem_seed)
{
    return std::make_unique<FamilyF>(problem_seed);
}

} // namespace gen
} // namespace ccsa
