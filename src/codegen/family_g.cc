/**
 * @file
 * Family G — "Valid BFS?" (Codeforces 1037D): given a tree and a
 * sequence, decide whether the sequence is a valid BFS order from
 * node 1. Variants:
 *   0: queue validation with per-level mark array      ~ O(n)
 *   1: sort children by sequence position, then walk   ~ O(n log n)
 *   2: per-step membership rescan over all nodes       ~ O(n^2)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyG : public ProblemGenerator
{
  public:
    explicit FamilyG(int seed)
        : yesWord_(seed % 2 == 0 ? "Yes" : "YES")
    {}

    ProblemFamily family() const override { return ProblemFamily::G; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        w.line("vector<vector<int>> adj(200005);");
        w.line("int seq[200005];");
        w.line("int pos[200005];");
        w.line("int markArr[200005];");
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("cin >> n;");
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 0; " + i + " + 1 < n; " + i +
               "++)");
        w.line("int u;");
        w.line("int v;");
        w.line("cin >> u >> v;");
        w.line("adj[u].push_back(v);");
        w.line("adj[v].push_back(u);");
        w.close();
        w.open("for (int " + i + " = 0; " + i + " < n; " + i + "++)");
        w.line("cin >> seq[" + i + "];");
        w.line("pos[seq[" + i + "]] = " + i + ";");
        w.close();
        switch (variant) {
          case 0: emitLinear(w, k); break;
          case 1: emitSorted(w, k); break;
          default: emitQuadratic(w, k); break;
        }
        w.line("return 0;");
        w.close();

        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitVerdict(CodeWriter& w, const StyleKnobs& k,
                const std::string& okVar) const
    {
        w.open("if (" + okVar + " == 1)");
        w.line("cout << \"" + yesWord_ + "\" << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << \"No\" << " + k.eol() + ";");
        w.close();
    }

    void
    emitLinear(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string c = k.idx(1);
        // Queue pass: for each dequeued node, the next deg(u) entries
        // of the sequence must be exactly its unvisited neighbours.
        w.line("int ok = 1;");
        w.line("int head = 0;");
        w.line("int cursor = 1;");
        w.line("markArr[1] = 1;");
        w.open("if (seq[0] != 1)");
        w.line("ok = 0;");
        w.close();
        w.line("int steps = 0;");
        w.open("while (head < n && steps < n)");
        w.line("steps++;");
        w.line("int u = seq[head];");
        w.line("head++;");
        w.line("int expected = 0;");
        w.open("for (int " + c + " = 0; " + c + " < adj[u].size(); " +
               c + "++)");
        w.open("if (markArr[adj[u][" + c + "]] == 0)");
        w.line("expected++;");
        w.line("markArr[adj[u][" + c + "]] = 2;");
        w.close();
        w.close();
        w.open("for (int " + c + " = 0; " + c + " < expected; " + c +
               "++)");
        w.open("if (cursor >= n || markArr[seq[cursor]] != 2)");
        w.line("ok = 0;");
        w.close();
        w.open("if (cursor < n)");
        w.line("markArr[seq[cursor]] = 1;");
        w.line("cursor++;");
        w.close();
        w.close();
        w.close();
        emitVerdict(w, k, "ok");
    }

    void
    emitSorted(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string i = k.idx(0);
        std::string c = k.idx(1);
        // Re-key every adjacency entry by sequence position, sort the
        // flattened (2n-2)-entry edge array, then replay the BFS.
        w.line("vector<long long> keyed(2 * n + 2, 0);");
        w.line("int ecount = 0;");
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.open("for (int " + c + " = 0; " + c + " < adj[" + i +
               "].size(); " + c + "++)");
        w.line("long long key = 1LL * " + i + " * 1000000 + pos[adj[" +
               i + "][" + c + "]];");
        w.line("keyed[ecount] = key;");
        w.line("ecount++;");
        w.close();
        w.close();
        w.line("sort(keyed.begin(), keyed.end());");
        // Rebuild each adjacency list in position order.
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.line("adj[" + i + "].clear();");
        w.close();
        w.open("for (int " + i + " = 0; " + i + " < ecount; " + i +
               "++)");
        w.line("long long key = keyed[" + i + "];");
        w.line("long long u = key / 1000000;");
        w.line("long long p = key % 1000000;");
        w.line("adj[u].push_back(seq[p]);");
        w.close();
        // Queue replay identical to the linear variant.
        emitLinear(w, k);
    }

    void
    emitQuadratic(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string i = k.idx(0);
        std::string v = k.idx(1);
        // For every sequence position, rescan all nodes to check that
        // the node's parent appeared earlier and level order holds.
        w.line("int ok = 1;");
        w.open("if (seq[0] != 1)");
        w.line("ok = 0;");
        w.close();
        w.line("markArr[1] = 1;");
        w.open("for (int " + i + " = 1; " + i + " < n; " + i + "++)");
        w.line("int cur = seq[" + i + "];");
        w.line("int has_visited_neighbor = 0;");
        w.open("for (int " + v + " = 1; " + v + " <= n; " + v + "++)");
        w.open("if (markArr[" + v + "] == 1)");
        std::string c = k.idx(2);
        w.open("for (int " + c + " = 0; " + c + " < adj[" + v +
               "].size(); " + c + "++)");
        w.open("if (adj[" + v + "][" + c + "] == cur)");
        w.line("has_visited_neighbor = 1;");
        w.close();
        w.close();
        w.close();
        w.close();
        w.open("if (has_visited_neighbor == 0)");
        w.line("ok = 0;");
        w.close();
        w.line("markArr[cur] = 1;");
        w.close();
        emitVerdict(w, k, "ok");
    }

    std::string yesWord_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyG(int problem_seed)
{
    return std::make_unique<FamilyG>(problem_seed);
}

} // namespace gen
} // namespace ccsa
