/**
 * @file
 * Family H — "Given Length and Sum of Digits" (Codeforces 489C):
 * find the minimum and maximum m-digit numbers with digit sum s.
 * The paper's smallest-runtime problem (2-29 ms). Variants:
 *   0: direct greedy construction                 ~ O(m)
 *   1: DP over (position, remaining sum)          ~ O(m * S * 10)
 *   2: two separate DP tables plus a validation
 *      sweep over the table                       ~ 2-3x variant 1
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyH : public ProblemGenerator
{
  public:
    explicit FamilyH(int seed)
        : sumCap_(seed % 2 == 0 ? 900 : 1024)
    {}

    ProblemFamily family() const override { return ProblemFamily::H; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        std::string cap = std::to_string(sumCap_);
        if (variant >= 1)
            w.line("int reach[105][" + cap + " + 5];");
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int m;");
        w.line("int s;");
        w.line("cin >> m >> s;");
        switch (variant) {
          case 0: emitGreedy(w, k); break;
          case 1: emitDp(w, k, false); break;
          default: emitDp(w, k, true); break;
        }
        w.line("return 0;");
        w.close();

        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitGreedy(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string i = k.idx(0);
        w.line("string big = \"\";");
        w.line("string small_num = \"\";");
        w.open("if (s == 0 && m == 1)");
        w.line("cout << 0 << \" \" << 0 << " + k.eol() + ";");
        w.line("return 0;");
        w.close();
        w.open("if (s == 0 || s > 9 * m)");
        w.line("cout << -1 << \" \" << -1 << " + k.eol() + ";");
        w.line("return 0;");
        w.close();
        // Maximum: greedily place 9s from the front.
        w.line("int rem = s;");
        w.open("for (int " + i + " = 0; " + i + " < m; " + i + "++)");
        w.line("int d = 9;");
        w.open("if (rem < 9)");
        w.line("d = rem;");
        w.close();
        w.line("big = big + \"x\";");
        w.line("rem -= d;");
        w.close();
        // Minimum: place from the back, keep one for the lead digit.
        w.line("rem = s - 1;");
        w.open("for (int " + i + " = 0; " + i + " < m; " + i + "++)");
        w.line("int d = 9;");
        w.open("if (rem < 9)");
        w.line("d = rem;");
        w.close();
        if (k.extraTemp) {
            w.line("int " + k.tmp() + " = d;");
            w.line("rem -= " + k.tmp() + ";");
        } else {
            w.line("rem -= d;");
        }
        w.line("small_num = small_num + \"x\";");
        w.close();
        w.line("cout << small_num << \" \" << big << " + k.eol() +
               ";");
    }

    void
    emitDp(CodeWriter& w, const StyleKnobs& k, bool slow) const
    {
        std::string cap = std::to_string(sumCap_);
        std::string i = k.idx(0);
        std::string j = k.idx(1);
        std::string d = k.idx(2);
        int passes = slow ? 2 : 1;
        for (int p = 0; p < passes; ++p) {
            // Reachability DP: reach[i][j] = can we write j as the
            // digit sum of an i-digit suffix.
            w.line("reach[0][0] = 1;");
            w.open("for (int " + i + " = 0; " + i + " < m; " + i +
                   "++)");
            w.open("for (int " + j + " = 0; " + j + " <= " + cap +
                   "; " + j + "++)");
            w.open("if (reach[" + i + "][" + j + "] == 1)");
            w.open("for (int " + d + " = 0; " + d + " <= 9; " + d +
                   "++)");
            w.open("if (" + j + " + " + d + " <= " + cap + ")");
            w.line("reach[" + i + " + 1][" + j + " + " + d +
                   "] = 1;");
            w.close();
            w.close();
            w.close();
            w.close();
            w.close();
        }
        if (slow) {
            // Redundant sweep of the completed table.
            w.line("long long cells = 0;");
            w.open("for (int " + i + " = 0; " + i + " <= m; " + i +
                   "++)");
            w.open("for (int " + j + " = 0; " + j + " <= " + cap +
                   "; " + j + "++)");
            w.line("cells += reach[" + i + "][" + j + "];");
            w.close();
            w.close();
            w.open("if (cells < 0)");
            w.line("return 0;");
            w.close();
        }
        w.open("if (reach[m][s] == 0)");
        w.line("cout << -1 << \" \" << -1 << " + k.eol() + ";");
        w.line("return 0;");
        w.close();
        // Reconstruct min and max by walking the table.
        w.line("string big = \"\";");
        w.line("int rem = s;");
        w.open("for (int " + i + " = m; " + i + " >= 1; " + i + "--)");
        w.open("for (int " + d + " = 9; " + d + " >= 0; " + d + "--)");
        w.open("if (rem - " + d + " >= 0 && reach[" + i +
               " - 1][rem - " + d + "] == 1)");
        w.line("big = big + \"x\";");
        w.line("rem -= " + d + ";");
        w.line("break;");
        w.close();
        w.close();
        w.close();
        w.line("cout << big << \" \" << big << " + k.eol() + ";");
    }

    int sumCap_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyH(int problem_seed)
{
    return std::make_unique<FamilyH>(problem_seed);
}

} // namespace gen
} // namespace ccsa
