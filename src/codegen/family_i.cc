/**
 * @file
 * Family I — "Substring" (Codeforces 919D): directed graph with a
 * letter per node; maximise the most frequent letter count along any
 * path (detect cycles -> -1). Variants:
 *   0: Kahn topological order + per-letter DP     ~ O(26 (n + m))
 *   1: memoised recursive DFS DP                  ~ O(26 (n + m)),
 *      higher constant from recursion
 *   2: Bellman-Ford-style repeated edge relaxation ~ O(n m)
 */

#include "codegen/families.hh"

#include "codegen/common.hh"

namespace ccsa
{
namespace gen
{

namespace
{

class FamilyI : public ProblemGenerator
{
  public:
    explicit FamilyI(int seed)
        : letterCount_(seed % 2 == 0 ? 26 : 20)
    {}

    ProblemFamily family() const override { return ProblemFamily::I; }
    int numVariants() const override { return 3; }

    GeneratedSolution
    generateVariant(int variant, Rng& rng) const override
    {
        StyleKnobs k = StyleKnobs::random(rng);
        CodeWriter w;
        prolog(w);
        std::string lc = std::to_string(letterCount_);
        w.line("vector<vector<int>> adj(300005);");
        w.line("int indeg[300005];");
        w.line("int dp[300005][" + lc + "];");
        w.line("int letterOf[300005];");
        w.line("string letters;");
        if (variant == 1)
            emitRecursiveDp(w, k);
        w.blank();
        w.open("int main()");
        deadCode(w, k, rng);
        w.line("int n;");
        w.line("int m;");
        w.line("cin >> n >> m;");
        w.line("cin >> letters;");
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.line("letterOf[" + i + "] = letters[" + i + " - 1] - 'a';");
        w.close();
        w.open("for (int " + i + " = 0; " + i + " < m; " + i + "++)");
        w.line("int u;");
        w.line("int v;");
        w.line("cin >> u >> v;");
        w.line("adj[u].push_back(v);");
        w.line("indeg[v] += 1;");
        w.close();
        switch (variant) {
          case 0: emitKahn(w, k); break;
          case 1: emitMemoMain(w, k); break;
          default: emitBellman(w, k); break;
        }
        w.line("return 0;");
        w.close();

        GeneratedSolution out;
        out.source = w.str();
        out.algoVariant = variant;
        out.numVariants = numVariants();
        out.knobs = k;
        return out;
    }

  private:
    void
    emitLetterLoopHeader(CodeWriter& w, const std::string& c) const
    {
        w.open("for (int " + c + " = 0; " + c + " < " +
               std::to_string(letterCount_) + "; " + c + "++)");
    }

    void
    emitKahn(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string i = k.idx(0);
        std::string c = k.idx(2);
        w.line("int queueArr[300005];");
        w.line("int head = 0;");
        w.line("int tail = 0;");
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.open("if (indeg[" + i + "] == 0)");
        w.line("queueArr[tail] = " + i + ";");
        w.line("tail++;");
        w.close();
        w.close();
        w.line("int processed = 0;");
        w.open("while (head < tail && processed <= n)");
        w.line("processed++;");
        w.line("int u = queueArr[head];");
        w.line("head++;");
        w.line("dp[u][letterOf[u]] += 1;");
        std::string e = k.idx(1);
        w.open("for (int " + e + " = 0; " + e + " < adj[u].size(); " +
               e + "++)");
        w.line("int v = adj[u][" + e + "];");
        emitLetterLoopHeader(w, c);
        w.open("if (dp[v][" + c + "] < dp[u][" + c + "])");
        w.line("dp[v][" + c + "] = dp[u][" + c + "];");
        w.close();
        w.close();
        w.line("indeg[v] -= 1;");
        w.open("if (indeg[v] == 0)");
        w.line("queueArr[tail] = v;");
        w.line("tail++;");
        w.close();
        w.close();
        w.close();
        emitAnswerScan(w, k, "processed < n");
    }

    void
    emitRecursiveDp(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string e = k.idx(1);
        std::string c = k.idx(2);
        w.line("int state[300005];");
        w.line("int has_cycle = 0;");
        w.blank();
        w.open("void dfs(int u)");
        w.open("if (state[u] == 1)");
        w.line("has_cycle = 1;");
        w.line("return;");
        w.close();
        w.open("if (state[u] == 2)");
        w.line("return;");
        w.close();
        w.line("state[u] = 1;");
        w.open("for (int " + e + " = 0; " + e + " < adj[u].size(); " +
               e + "++)");
        w.line("int v = adj[u][" + e + "];");
        w.line("dfs(v);");
        emitLetterLoopHeader(w, c);
        w.open("if (dp[u][" + c + "] < dp[v][" + c + "])");
        w.line("dp[u][" + c + "] = dp[v][" + c + "];");
        w.close();
        w.close();
        w.close();
        w.line("dp[u][letterOf[u]] += 1;");
        w.line("state[u] = 2;");
        w.close();
    }

    void
    emitMemoMain(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string i = k.idx(0);
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.open("if (state[" + i + "] == 0)");
        w.line("dfs(" + i + ");");
        w.close();
        w.close();
        emitAnswerScan(w, k, "has_cycle == 1");
    }

    void
    emitBellman(CodeWriter& w, const StyleKnobs& k) const
    {
        std::string i = k.idx(0);
        std::string e = k.idx(1);
        std::string c = k.idx(2);
        // Flatten the edge list for repeated relaxation.
        w.line("int edgeU[300005];");
        w.line("int edgeV[300005];");
        w.line("int ecount = 0;");
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.open("for (int " + e + " = 0; " + e + " < adj[" + i +
               "].size(); " + e + "++)");
        w.line("edgeU[ecount] = " + i + ";");
        w.line("edgeV[ecount] = adj[" + i + "][" + e + "];");
        w.line("ecount++;");
        w.close();
        w.close();
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        w.line("dp[" + i + "][letterOf[" + i + "]] = 1;");
        w.close();
        w.line("int changed = 1;");
        w.line("int rounds = 0;");
        // Practical cap: relaxation converges within the longest path
        // length; contestants commonly bound it by a constant.
        w.open("while (changed == 1 && rounds < 100)");
        w.line("rounds++;");
        w.line("changed = 0;");
        w.open("for (int " + e + " = 0; " + e + " < m; " + e + "++)");
        w.line("int u = edgeU[" + e + "];");
        w.line("int v = edgeV[" + e + "];");
        emitLetterLoopHeader(w, c);
        w.line("int cand = dp[u][" + c + "];");
        w.open("if (" + c + " == letterOf[v])");
        w.line("cand = cand + 1;");
        w.close();
        w.open("if (dp[v][" + c + "] < cand)");
        w.line("dp[v][" + c + "] = cand;");
        w.line("changed = 1;");
        w.close();
        w.close();
        w.close();
        w.close();
        emitAnswerScan(w, k, "rounds >= 100");
    }

    void
    emitAnswerScan(CodeWriter& w, const StyleKnobs& k,
                   const std::string& cycleCond) const
    {
        std::string i = k.idx(0);
        std::string c = k.idx(2);
        w.line("int best = 0;");
        w.open("for (int " + i + " = 1; " + i + " <= n; " + i + "++)");
        emitLetterLoopHeader(w, c);
        w.open("if (dp[" + i + "][" + c + "] > best)");
        w.line("best = dp[" + i + "][" + c + "];");
        w.close();
        w.close();
        w.close();
        w.open("if (" + cycleCond + ")");
        w.line("cout << -1 << " + k.eol() + ";");
        w.close();
        w.open("else");
        w.line("cout << best << " + k.eol() + ";");
        w.close();
    }

    int letterCount_;
};

} // namespace

std::unique_ptr<ProblemGenerator>
makeFamilyI(int problem_seed)
{
    return std::make_unique<FamilyI>(problem_seed);
}

} // namespace gen
} // namespace ccsa
