#include "codegen/generator.hh"

#include "base/logging.hh"
#include "codegen/families.hh"

namespace ccsa
{

const char*
familyTag(ProblemFamily f)
{
    static const char* tags[] = {"A", "B", "C", "D", "E", "F", "G",
                                 "H", "I"};
    int i = static_cast<int>(f);
    if (i < 0 || i >= kNumFamilies)
        panic("familyTag: invalid family");
    return tags[i];
}

const char*
familyAlgorithms(ProblemFamily f)
{
    switch (f) {
      case ProblemFamily::A: return "Hashing";
      case ProblemFamily::B: return "Binary search and number theory";
      case ProblemFamily::C: return "Greedy";
      case ProblemFamily::D: return "Data structure and number theory";
      case ProblemFamily::E: return "Constructive algorithm";
      case ProblemFamily::F: return "DFS, Graphs, and Trees";
      case ProblemFamily::G: return "DFS, Graphs, and Trees";
      case ProblemFamily::H: return "Dynamic programming (DP)";
      case ProblemFamily::I: return "DFS, DP, Graphs";
      case ProblemFamily::NumFamilies: break;
    }
    panic("familyAlgorithms: invalid family");
}

GeneratedSolution
ProblemGenerator::generate(Rng& rng) const
{
    // Skew towards mid/fast variants like real accepted submissions:
    // very slow solutions are rarer because many of them TLE.
    int v;
    double r = rng.uniform();
    int nv = numVariants();
    if (nv == 2) {
        v = r < 0.55 ? 0 : 1;
    } else {
        if (r < 0.40)
            v = 0;
        else if (r < 0.75)
            v = 1;
        else
            v = 2;
    }
    return generateVariant(v, rng);
}

std::unique_ptr<ProblemGenerator>
makeGenerator(ProblemFamily family, int problem_seed)
{
    switch (family) {
      case ProblemFamily::A: return gen::makeFamilyA(problem_seed);
      case ProblemFamily::B: return gen::makeFamilyB(problem_seed);
      case ProblemFamily::C: return gen::makeFamilyC(problem_seed);
      case ProblemFamily::D: return gen::makeFamilyD(problem_seed);
      case ProblemFamily::E: return gen::makeFamilyE(problem_seed);
      case ProblemFamily::F: return gen::makeFamilyF(problem_seed);
      case ProblemFamily::G: return gen::makeFamilyG(problem_seed);
      case ProblemFamily::H: return gen::makeFamilyH(problem_seed);
      case ProblemFamily::I: return gen::makeFamilyI(problem_seed);
      case ProblemFamily::NumFamilies: break;
    }
    panic("makeGenerator: invalid family");
}

} // namespace ccsa
