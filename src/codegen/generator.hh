/**
 * @file
 * Solution generators: the Codeforces-corpus substitute. Each problem
 * family (Table I tags A-I) owns a generator that emits structurally
 * distinct, correct-by-construction MiniCxx solutions. A solution is
 * an algorithm variant (different asymptotic class and/or constant
 * factor) crossed with random StyleKnobs, mirroring how thousands of
 * contestants solve the same problem differently.
 *
 * Contract with the simulated judge: every performance-relevant loop
 * bound in generated code is derivable from the input-size variables
 * (n, m, q, t) by constant propagation through the cost interpreter
 * (direct use, arithmetic, or sqrt). Container-iteration loops with
 * data-dependent bounds (adjacency lists) are left opaque on purpose;
 * the interpreter charges its average-degree default for them.
 */

#ifndef CCSA_CODEGEN_GENERATOR_HH
#define CCSA_CODEGEN_GENERATOR_HH

#include <memory>
#include <string>

#include "base/rng.hh"
#include "codegen/style.hh"

namespace ccsa
{

/** The nine problem families of Table I. */
enum class ProblemFamily
{
    A, ///< 4C Registration — hashing
    B, ///< 230B T-Prime — primality / number theory
    C, ///< 1027C Minimum Value Rectangle — greedy + sorting
    D, ///< 914D Bash and a Tough Math Puzzle — segment tree on gcd
    E, ///< 1004C — constructive, prefix/suffix distinct counts
    F, ///< 1006E Military Problem — DFS preorder + subtree sizes
    G, ///< 1037D Valid BFS? — BFS order verification
    H, ///< 489C Given Length and Sum of Digits — greedy/DP on digits
    I, ///< 919D Substring — DAG DP with DFS
    NumFamilies,
};

/** Total family count. */
constexpr int kNumFamilies = static_cast<int>(ProblemFamily::NumFamilies);

/** @return the single-letter tag of a family ("A".."I"). */
const char* familyTag(ProblemFamily f);

/** @return the family's algorithm-group description (Table I). */
const char* familyAlgorithms(ProblemFamily f);

/** One generated solution. */
struct GeneratedSolution
{
    std::string source;
    /** Algorithm variant index, 0 = asymptotically fastest. */
    int algoVariant = 0;
    /** Number of variants the family defines. */
    int numVariants = 0;
    /** The style knobs the solution was generated with. */
    StyleKnobs knobs;
};

/** Interface implemented by each family's generator. */
class ProblemGenerator
{
  public:
    virtual ~ProblemGenerator() = default;

    /** @return the family this generator belongs to. */
    virtual ProblemFamily family() const = 0;

    /** @return number of algorithm variants (>= 2). */
    virtual int numVariants() const = 0;

    /** Generate one solution with a random variant and style. */
    GeneratedSolution generate(Rng& rng) const;

    /** Generate one solution with a fixed algorithm variant. */
    virtual GeneratedSolution generateVariant(int variant,
                                              Rng& rng) const = 0;
};

/**
 * @param family which Table I problem to instantiate.
 * @param problem_seed varies surface parameters so the same family can
 * stand in for many distinct problems (used by the MP mixed dataset).
 * @return a generator for the family.
 */
std::unique_ptr<ProblemGenerator>
makeGenerator(ProblemFamily family, int problem_seed = 0);

} // namespace ccsa

#endif // CCSA_CODEGEN_GENERATOR_HH
