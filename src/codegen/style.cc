#include "codegen/style.hh"

namespace ccsa
{

StyleKnobs
StyleKnobs::random(Rng& rng)
{
    StyleKnobs k;
    k.useWhileLoops = rng.bernoulli(0.25);
    k.preIncrement = rng.bernoulli(0.5);
    k.useHelperFunction = rng.bernoulli(0.45);
    k.passByValue = rng.bernoulli(0.3);
    k.flushEndl = rng.bernoulli(0.3);
    k.extraTemp = rng.bernoulli(0.35);
    k.deadCode = rng.bernoulli(0.3);
    k.secondPass = rng.bernoulli(0.25);
    k.useLongLong = rng.bernoulli(0.4);
    k.nameScheme = rng.uniformInt(0, 3);
    return k;
}

std::string
StyleKnobs::idx(int level) const
{
    static const char* schemes[4][3] = {
        {"i", "j", "k"},
        {"idx", "jdx", "kdx"},
        {"p", "q2", "r"},
        {"it", "jt", "kt"},
    };
    return schemes[nameScheme][level % 3];
}

std::string
StyleKnobs::arr() const
{
    static const char* names[4] = {"a", "arr", "data", "v"};
    return names[nameScheme];
}

std::string
StyleKnobs::helper() const
{
    static const char* names[4] = {"solve", "work", "process", "calc"};
    return names[nameScheme];
}

std::string
StyleKnobs::tmp() const
{
    static const char* names[4] = {"tmp", "t1", "cur", "val"};
    return names[nameScheme];
}

std::string
StyleKnobs::intType() const
{
    return useLongLong ? "long long" : "int";
}

std::string
StyleKnobs::eol() const
{
    return flushEndl ? "endl" : "\"\\n\"";
}

} // namespace ccsa
