/**
 * @file
 * Style knobs: surface-level variation applied independently of the
 * algorithm choice when generating solutions. Mirrors the diversity of
 * real Codeforces submissions — identical algorithms written with
 * different loop forms, helper decomposition, I/O idioms and temporary
 * variables. Some knobs are cost-neutral (naming, pre/post increment),
 * others carry real constant-factor costs the judge charges for
 * (endl-flush inside loops, pass-by-value vector copies, redundant
 * passes), giving the models fine-grained structure/performance signal
 * beyond the coarse algorithm class.
 */

#ifndef CCSA_CODEGEN_STYLE_HH
#define CCSA_CODEGEN_STYLE_HH

#include <string>

#include "base/rng.hh"

namespace ccsa
{

/** Randomised surface-style choices for one generated solution. */
struct StyleKnobs
{
    /** Emit some counting loops as while instead of for. */
    bool useWhileLoops = false;
    /** ++i instead of i++ in loop increments. */
    bool preIncrement = false;
    /** Split the algorithm body into a helper function. */
    bool useHelperFunction = false;
    /** Helper takes its vector argument by value (real copy cost). */
    bool passByValue = false;
    /** Flush with endl inside output loops (real cost). */
    bool flushEndl = false;
    /** Introduce redundant temporaries in inner loops (small cost). */
    bool extraTemp = false;
    /** Emit unused declarations / never-taken branches (near-free). */
    bool deadCode = false;
    /** Run a redundant O(n) verification pass at the end (real cost). */
    bool secondPass = false;
    /** Use long long counters instead of int (cost-neutral). */
    bool useLongLong = false;
    /** Identifier naming scheme index (cost-neutral). */
    int nameScheme = 0;

    /** Draw a random style. */
    static StyleKnobs random(Rng& rng);

    /** Loop index name for nesting level 0/1/2 under this scheme. */
    std::string idx(int level) const;

    /** Name of the primary data array under this scheme. */
    std::string arr() const;

    /** Name of the helper function under this scheme. */
    std::string helper() const;

    /** Name of a temporary variable under this scheme. */
    std::string tmp() const;

    /** Integer counter type under this scheme. */
    std::string intType() const;

    /** The line-terminator expression for cout ("endl" or "\"\\n\""). */
    std::string eol() const;
};

} // namespace ccsa

#endif // CCSA_CODEGEN_STYLE_HH
