/**
 * @file
 * Indentation-aware source emitter used by the solution generators.
 */

#ifndef CCSA_CODEGEN_WRITER_HH
#define CCSA_CODEGEN_WRITER_HH

#include <sstream>
#include <string>

namespace ccsa
{

/** Accumulates MiniCxx source text with brace-scoped indentation. */
class CodeWriter
{
  public:
    /** Append one line at the current indent. */
    void
    line(const std::string& text)
    {
        for (int i = 0; i < indent_; ++i)
            os_ << "    ";
        os_ << text << "\n";
    }

    /** Append a blank line. */
    void blank() { os_ << "\n"; }

    /** Open a block: emits the header followed by '{' and indents. */
    void
    open(const std::string& header)
    {
        line(header + " {");
        ++indent_;
    }

    /** Close the innermost block. */
    void
    close(const std::string& suffix = "")
    {
        --indent_;
        line("}" + suffix);
    }

    /** @return the accumulated source text. */
    std::string str() const { return os_.str(); }

  private:
    std::ostringstream os_;
    int indent_ = 0;
};

} // namespace ccsa

#endif // CCSA_CODEGEN_WRITER_HH
