#include "dataset/corpus.hh"

#include "base/logging.hh"
#include "frontend/parser.hh"

namespace ccsa
{

Corpus
Corpus::generate(const ProblemSpec& spec, int count, std::uint64_t seed)
{
    if (count <= 0)
        fatal("Corpus::generate: count must be positive");
    Corpus corpus;
    corpus.problems_.push_back(spec);

    auto generator = makeGenerator(spec.family, spec.problemSeed);
    SimulatedJudge judge(spec.judge);
    Rng rng(seed, 0x1234 + static_cast<std::uint64_t>(
        spec.problemSeed));

    corpus.submissions_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        GeneratedSolution sol = generator->generate(rng);
        Submission sub;
        sub.id = i;
        sub.problemId = 0;
        sub.source = std::move(sol.source);
        sub.ast = parseAndPrune(sub.source);
        sub.runtimeMs = judge.run(sub.ast, rng);
        sub.algoVariant = sol.algoVariant;
        corpus.submissions_.push_back(std::move(sub));
    }
    return corpus;
}

Corpus
Corpus::generateMixed(int num_problems, int per_problem,
                      std::uint64_t seed)
{
    if (num_problems <= 0 || per_problem <= 0)
        fatal("Corpus::generateMixed: sizes must be positive");
    Corpus corpus;
    for (int p = 0; p < num_problems; ++p) {
        ProblemSpec spec = mpProblemSpec(p);
        Corpus one = generate(spec, per_problem,
                              seed + static_cast<std::uint64_t>(p));
        corpus.append(one);
    }
    return corpus;
}

std::vector<double>
Corpus::runtimes() const
{
    std::vector<double> out;
    out.reserve(submissions_.size());
    for (const auto& s : submissions_)
        out.push_back(s.runtimeMs);
    return out;
}

std::pair<std::vector<int>, std::vector<int>>
Corpus::split(double train_fraction, Rng& rng) const
{
    if (train_fraction <= 0.0 || train_fraction >= 1.0)
        fatal("Corpus::split: train_fraction must be in (0,1)");
    std::vector<int> idx(submissions_.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<int>(i);
    rng.shuffle(idx);
    std::size_t cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(idx.size()));
    cut = std::max<std::size_t>(std::min(cut, idx.size() - 1), 1);
    std::vector<int> train(idx.begin(), idx.begin() + cut);
    std::vector<int> test(idx.begin() + cut, idx.end());
    return {train, test};
}

void
Corpus::append(const Corpus& other)
{
    int problem_base = static_cast<int>(problems_.size());
    int id_base = static_cast<int>(submissions_.size());
    for (const auto& p : other.problems_)
        problems_.push_back(p);
    for (Submission s : other.submissions_) {
        s.problemId += problem_base;
        s.id += id_base;
        submissions_.push_back(std::move(s));
    }
}

} // namespace ccsa
