/**
 * @file
 * Corpus construction: the end-to-end substitute for the paper's
 * 4.3M-solution Codeforces crawl (§II-A). For each problem the corpus
 * holds generated source text, its pruned AST, and the simulated
 * judge's runtime — i.e. exactly the (code, label) channel the
 * paper's pipeline consumes.
 */

#ifndef CCSA_DATASET_CORPUS_HH
#define CCSA_DATASET_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ast/ast.hh"
#include "dataset/problem.hh"

namespace ccsa
{

/** One judged solution. */
struct Submission
{
    int id = 0;
    int problemId = 0;
    std::string source;
    /** Pruned AST (function definitions under a root, §IV-A). */
    Ast ast;
    /** Mean runtime over the judge's test cases, in ms. */
    double runtimeMs = 0.0;
    /** Ground-truth algorithm variant (for diagnostics only). */
    int algoVariant = 0;
};

/** A set of judged submissions spanning one or more problems. */
class Corpus
{
  public:
    /** Generate `count` solutions to a single problem. */
    static Corpus generate(const ProblemSpec& spec, int count,
                           std::uint64_t seed);

    /**
     * Generate the MP mixed dataset: `per_problem` solutions to each
     * of `num_problems` derived problems (paper: 100 x 100).
     */
    static Corpus generateMixed(int num_problems, int per_problem,
                                std::uint64_t seed);

    const std::vector<Submission>& submissions() const
    {
        return submissions_;
    }

    const std::vector<ProblemSpec>& problems() const
    {
        return problems_;
    }

    std::size_t size() const { return submissions_.size(); }

    /** All runtimes, in submission order. */
    std::vector<double> runtimes() const;

    /**
     * Random disjoint train/test split of submission indices.
     * @param train_fraction fraction assigned to training.
     */
    std::pair<std::vector<int>, std::vector<int>>
    split(double train_fraction, Rng& rng) const;

    /** Merge another corpus (problem ids are re-based). */
    void append(const Corpus& other);

  private:
    std::vector<Submission> submissions_;
    std::vector<ProblemSpec> problems_;
};

} // namespace ccsa

#endif // CCSA_DATASET_CORPUS_HH
