#include "dataset/io.hh"

#include <filesystem>
#include <fstream>
#include <iomanip>

#include "base/logging.hh"
#include "base/str.hh"
#include "frontend/parser.hh"

namespace ccsa
{

namespace fs = std::filesystem;

void
exportCorpus(const Corpus& corpus, const std::string& directory)
{
    std::error_code ec;
    fs::create_directories(directory, ec);
    if (ec)
        fatal("exportCorpus: cannot create ", directory, ": ",
              ec.message());

    std::ofstream index(fs::path(directory) / "index.csv");
    if (!index)
        fatal("exportCorpus: cannot open index.csv");
    // Full round-trip precision so reloaded pair labels are
    // bit-identical to the original run.
    index << std::setprecision(17);
    index << "id,problem_id,runtime_ms,algo_variant,source_file\n";
    for (const auto& sub : corpus.submissions()) {
        std::string fname = "sub_" + std::to_string(sub.id) + ".cpp";
        index << sub.id << "," << sub.problemId << ","
              << sub.runtimeMs << "," << sub.algoVariant << ","
              << fname << "\n";
        std::ofstream src(fs::path(directory) / fname);
        if (!src)
            fatal("exportCorpus: cannot write ", fname);
        src << sub.source;
    }
    if (!index)
        fatal("exportCorpus: write error on index.csv");
}

std::vector<Submission>
importSubmissions(const std::string& directory)
{
    std::ifstream index(fs::path(directory) / "index.csv");
    if (!index)
        fatal("importSubmissions: cannot open ", directory,
              "/index.csv");

    std::vector<Submission> out;
    std::string line;
    std::getline(index, line); // header
    while (std::getline(index, line)) {
        if (trim(line).empty())
            continue;
        auto fields = split(line, ',');
        if (fields.size() != 5)
            fatal("importSubmissions: malformed index row: ", line);
        Submission sub;
        try {
            sub.id = std::stoi(fields[0]);
            sub.problemId = std::stoi(fields[1]);
            sub.runtimeMs = std::stod(fields[2]);
            sub.algoVariant = std::stoi(fields[3]);
        } catch (const std::exception&) {
            fatal("importSubmissions: bad numeric field in: ", line);
        }
        std::ifstream src(fs::path(directory) / fields[4]);
        if (!src)
            fatal("importSubmissions: missing source file ",
                  fields[4]);
        std::string source((std::istreambuf_iterator<char>(src)),
                           std::istreambuf_iterator<char>());
        sub.source = std::move(source);
        sub.ast = parseAndPrune(sub.source);
        out.push_back(std::move(sub));
    }
    return out;
}

} // namespace ccsa
