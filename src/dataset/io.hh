/**
 * @file
 * Corpus persistence. The paper promises its crawled dataset "will be
 * made publicly available via Github along with the pipeline" (§II);
 * this module provides that interchange format for the generated
 * corpus: a human-readable index (CSV) plus one source file per
 * submission, loadable back into a Corpus-equivalent submission list
 * (ASTs are re-parsed and runtimes reused, so downstream training is
 * bit-identical to the original run).
 */

#ifndef CCSA_DATASET_IO_HH
#define CCSA_DATASET_IO_HH

#include <string>

#include "dataset/corpus.hh"

namespace ccsa
{

/**
 * Write a corpus to a directory: `index.csv` with one row per
 * submission (id, problem id, runtime ms, algorithm variant, source
 * file name) and `sub_<id>.cpp` source files.
 * @throws FatalError on I/O failure.
 */
void exportCorpus(const Corpus& corpus, const std::string& directory);

/**
 * Load the submissions written by exportCorpus. Sources are re-parsed
 * and re-pruned; judge runtimes come from the index, so no judge
 * re-run is needed.
 * @throws FatalError on missing/corrupt files.
 */
std::vector<Submission> importSubmissions(const std::string& directory);

} // namespace ccsa

#endif // CCSA_DATASET_IO_HH
