#include "dataset/pairs.hh"

#include <cmath>

#include "base/logging.hh"

namespace ccsa
{

std::vector<CodePair>
buildPairs(const std::vector<Submission>& submissions,
           const std::vector<int>& indices, const PairOptions& options,
           Rng& rng)
{
    if (options.ratio <= 0.0 || options.ratio > 1.0)
        fatal("buildPairs: ratio must be in (0,1]");

    std::vector<CodePair> pairs;
    auto consider = [&](int a, int b) {
        const Submission& sa = submissions[a];
        const Submission& sb = submissions[b];
        if (options.withinProblemOnly &&
            sa.problemId != sb.problemId)
            return;
        if (options.minGapMs > 0.0 &&
            std::fabs(sa.runtimeMs - sb.runtimeMs) < options.minGapMs)
            return;
        if (options.ratio < 1.0 && !rng.bernoulli(options.ratio))
            return;
        CodePair p;
        p.first = a;
        p.second = b;
        p.label = sa.runtimeMs >= sb.runtimeMs ? 1.0f : 0.0f;
        pairs.push_back(p);
    };

    for (std::size_t i = 0; i < indices.size(); ++i) {
        for (std::size_t j = i + 1; j < indices.size(); ++j) {
            // Randomise the canonical orientation so the one-way set
            // is not biased towards a fixed submission order.
            bool flip = rng.bernoulli(0.5);
            int a = flip ? indices[j] : indices[i];
            int b = flip ? indices[i] : indices[j];
            consider(a, b);
            if (options.symmetric)
                consider(b, a);
        }
    }

    rng.shuffle(pairs);
    if (pairs.size() > options.maxPairs)
        pairs.resize(options.maxPairs);
    return pairs;
}

double
positiveFraction(const std::vector<CodePair>& pairs)
{
    if (pairs.empty())
        return 0.0;
    double pos = 0.0;
    for (const auto& p : pairs)
        pos += p.label;
    return pos / static_cast<double>(pairs.size());
}

} // namespace ccsa
