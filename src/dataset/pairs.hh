/**
 * @file
 * Code-pair generation (paper §II-B). For N submissions there are
 * O(N^2) ordered pairs; the paper shows random subsets suffice and
 * that including both orderings of a pair helps slightly (§VI-D).
 * Labels follow Eq. (1): label 1 iff the first program's runtime is
 * greater than or equal to the second's (second is faster or equal).
 */

#ifndef CCSA_DATASET_PAIRS_HH
#define CCSA_DATASET_PAIRS_HH

#include <vector>

#include "dataset/corpus.hh"

namespace ccsa
{

/** One labelled ordered pair of submission indices. */
struct CodePair
{
    int first = 0;
    int second = 0;
    /** 1.0 iff runtime(first) >= runtime(second). */
    float label = 0.0f;
};

/** Knobs for pair construction. */
struct PairOptions
{
    /** Fraction of all candidate pairs to keep (random subset). */
    double ratio = 1.0;
    /** Include both (a,b) and (b,a) orderings. */
    bool symmetric = true;
    /** Hard cap on the number of pairs (applied after sampling). */
    std::size_t maxPairs = 200000;
    /**
     * Drop pairs whose |runtime difference| is below this threshold
     * (ms). 0 keeps everything; evaluation sweeps use it for the
     * Fig. 6 sensitivity study.
     */
    double minGapMs = 0.0;
    /** Only pair submissions that belong to the same problem. */
    bool withinProblemOnly = true;
};

/**
 * Build labelled pairs over a subset of a corpus.
 * @param submissions the corpus submissions.
 * @param indices which submissions participate.
 * @param options sampling knobs.
 * @param rng sampling source.
 */
std::vector<CodePair> buildPairs(
    const std::vector<Submission>& submissions,
    const std::vector<int>& indices, const PairOptions& options,
    Rng& rng);

/** Fraction of pairs with label 1 (class balance diagnostics). */
double positiveFraction(const std::vector<CodePair>& pairs);

} // namespace ccsa

#endif // CCSA_DATASET_PAIRS_HH
