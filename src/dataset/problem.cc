#include "dataset/problem.hh"

#include "base/logging.hh"

namespace ccsa
{

namespace
{

JudgeConfig
makeJudge(double max_size, int tests, double base_ms,
          std::map<std::string, double> size_vars = {},
          std::map<std::string, double> absolute_vars = {})
{
    JudgeConfig cfg;
    cfg.testSizes = JudgeConfig::ladder(max_size, tests);
    if (!size_vars.empty())
        cfg.sizeVars = std::move(size_vars);
    cfg.absoluteVars = std::move(absolute_vars);
    cfg.baseMs = base_ms;
    return cfg;
}

std::vector<ProblemSpec>
buildTableI()
{
    std::vector<ProblemSpec> specs;

    ProblemSpec a;
    a.family = ProblemFamily::A;
    a.tag = "A";
    a.contest = "4 C";
    a.judge = makeJudge(1e4, 9, 80.0);
    a.paperCount = 6616;
    a.paperMinMs = 86;
    a.paperMedianMs = 1269;
    a.paperMaxMs = 4063;
    a.paperStdDev = 445;
    specs.push_back(a);

    ProblemSpec b;
    b.family = ProblemFamily::B;
    b.tag = "B";
    b.contest = "230 B";
    b.judge = makeJudge(2e3, 9, 30.0,
                        {{"t", 1.0}, {"n", 1.0}},
                        {{"x", 1e8}});
    b.paperCount = 6099;
    b.paperMinMs = 31;
    b.paperMedianMs = 658;
    b.paperMaxMs = 1872;
    b.paperStdDev = 386;
    specs.push_back(b);

    ProblemSpec c;
    c.family = ProblemFamily::C;
    c.tag = "C";
    c.contest = "1027 C";
    c.judge = makeJudge(1e4, 7, 60.0);
    c.paperCount = 832;
    c.paperMinMs = 72;
    c.paperMedianMs = 437;
    c.paperMaxMs = 1455;
    c.paperStdDev = 344;
    specs.push_back(c);

    ProblemSpec d;
    d.family = ProblemFamily::D;
    d.tag = "D";
    d.contest = "914 D";
    d.judge = makeJudge(6e3, 7, 180.0);
    d.paperCount = 612;
    d.paperMinMs = 206;
    d.paperMedianMs = 534;
    d.paperMaxMs = 1965;
    d.paperStdDev = 464;
    specs.push_back(d);

    ProblemSpec e;
    e.family = ProblemFamily::E;
    e.tag = "E";
    e.contest = "1004 C";
    e.judge = makeJudge(3e3, 9, 3.0);
    e.paperCount = 505;
    e.paperMinMs = 3;
    e.paperMedianMs = 80;
    e.paperMaxMs = 137;
    e.paperStdDev = 48;
    specs.push_back(e);

    ProblemSpec f;
    f.family = ProblemFamily::F;
    f.tag = "F";
    f.contest = "1006 E";
    f.judge = makeJudge(5e3, 7, 45.0);
    f.paperCount = 599;
    f.paperMinMs = 51;
    f.paperMedianMs = 214;
    f.paperMaxMs = 1647;
    f.paperStdDev = 471;
    specs.push_back(f);

    ProblemSpec g;
    g.family = ProblemFamily::G;
    g.tag = "G";
    g.contest = "1037 D";
    g.judge = makeJudge(2.5e3, 7, 4.0);
    g.paperCount = 207;
    g.paperMinMs = 5;
    g.paperMedianMs = 90;
    g.paperMaxMs = 450;
    g.paperStdDev = 63;
    specs.push_back(g);

    ProblemSpec h;
    h.family = ProblemFamily::H;
    h.tag = "H";
    h.contest = "489 C";
    h.judge = makeJudge(100, 7, 2.0,
                        {{"m", 1.0}, {"n", 1.0}});
    h.paperCount = 5192;
    h.paperMinMs = 2;
    h.paperMedianMs = 9;
    h.paperMaxMs = 29;
    h.paperStdDev = 15;
    specs.push_back(h);

    ProblemSpec i;
    i.family = ProblemFamily::I;
    i.tag = "I";
    i.contest = "919 D";
    i.judge = makeJudge(5e3, 7, 2.0,
                        {{"n", 1.0}, {"m", 2.0}, {"q", 1.0},
                         {"t", 1.0}});
    i.paperCount = 475;
    i.paperMinMs = 2;
    i.paperMedianMs = 285;
    i.paperMaxMs = 800;
    i.paperStdDev = 202;
    specs.push_back(i);

    return specs;
}

} // namespace

const std::vector<ProblemSpec>&
tableISpecs()
{
    static const std::vector<ProblemSpec> specs = buildTableI();
    return specs;
}

const ProblemSpec&
tableISpec(ProblemFamily family)
{
    const auto& specs = tableISpecs();
    int idx = static_cast<int>(family);
    if (idx < 0 || idx >= static_cast<int>(specs.size()))
        fatal("tableISpec: invalid family");
    return specs[idx];
}

ProblemSpec
mpProblemSpec(int index)
{
    if (index < 0)
        fatal("mpProblemSpec: negative index");
    const auto& base = tableISpecs()[index % kNumFamilies];
    ProblemSpec spec = base;
    spec.problemSeed = index;
    spec.tag = "MP" + std::to_string(index);
    spec.contest = "derived from " + base.contest;
    // Rescale the input ladder so each derived problem has its own
    // work profile (0.5x .. 1.5x of the base problem).
    double scale = 0.5 + 0.1 * (index % 11);
    for (double& s : spec.judge.testSizes)
        s = std::max(s * scale, 1.0);
    return spec;
}

} // namespace ccsa
