/**
 * @file
 * Problem specifications: one per Table I row (tags A-I), binding a
 * codegen family to a calibrated judge configuration plus the
 * paper-reported runtime statistics for side-by-side comparison.
 */

#ifndef CCSA_DATASET_PROBLEM_HH
#define CCSA_DATASET_PROBLEM_HH

#include <string>
#include <vector>

#include "codegen/generator.hh"
#include "judge/judge.hh"

namespace ccsa
{

/** One concrete problem (a Table I row, or a derived MP problem). */
struct ProblemSpec
{
    ProblemFamily family = ProblemFamily::A;
    /** Varies surface constants so one family yields many problems. */
    int problemSeed = 0;
    /** Display tag ("A".."I" or "MP17"). */
    std::string tag;
    /** Codeforces contest reference (Table I "Contest" column). */
    std::string contest;
    /** Calibrated judging environment. */
    JudgeConfig judge;

    // Paper-reported statistics (Table I), for reporting only.
    int paperCount = 0;
    double paperMinMs = 0.0;
    double paperMedianMs = 0.0;
    double paperMaxMs = 0.0;
    double paperStdDev = 0.0;
};

/** @return the nine canonical Table I problems. */
const std::vector<ProblemSpec>& tableISpecs();

/** @return the spec for a single Table I tag (0=A .. 8=I). */
const ProblemSpec& tableISpec(ProblemFamily family);

/**
 * Derive the index-th problem of the MP mixed dataset: families are
 * cycled and re-seeded so each index behaves like a distinct problem
 * with its own constants and input scale.
 */
ProblemSpec mpProblemSpec(int index);

} // namespace ccsa

#endif // CCSA_DATASET_PROBLEM_HH
