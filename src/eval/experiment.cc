#include "eval/experiment.hh"

#include <cmath>
#include <map>

#include "base/str.hh"

namespace ccsa
{

void
ExperimentConfig::applyEnvScale()
{
    double scale = envScale();
    if (scale == 1.0)
        return;
    submissionsPerProblem = static_cast<int>(
        std::lround(submissionsPerProblem * scale));
    train.epochs = std::max(1, static_cast<int>(
        std::lround(train.epochs * std::sqrt(scale))));
    trainPairs.maxPairs = static_cast<std::size_t>(
        trainPairs.maxPairs * scale);
}

TrainedModel
trainOnProblem(const ProblemSpec& spec, const ExperimentConfig& cfg)
{
    auto corpus = std::make_shared<Corpus>(Corpus::generate(
        spec, cfg.submissionsPerProblem, cfg.corpusSeed));
    return trainOnCorpus(corpus, cfg);
}

TrainedModel
trainOnCorpus(std::shared_ptr<Corpus> corpus,
              const ExperimentConfig& cfg)
{
    TrainedModel out;
    out.corpus = std::move(corpus);

    Rng rng(cfg.corpusSeed, 0x5EED);
    auto [train_idx, test_idx] =
        out.corpus->split(cfg.trainFraction, rng);
    out.trainIdx = train_idx;
    out.testIdx = test_idx;

    out.model = std::make_shared<ComparativePredictor>(
        cfg.encoder, cfg.train.seed);

    auto pairs = buildPairs(out.corpus->submissions(), train_idx,
                            cfg.trainPairs, rng);
    Trainer trainer(*out.model, cfg.train);
    out.stats = trainer.fit(out.corpus->submissions(), pairs);

    // Serve the trained weights: every evaluation below fans out
    // through the engine's batch endpoints and shares its cache.
    out.engine = std::make_shared<Engine>(out.model);
    return out;
}

std::vector<ScoredPair>
scoreHeldOut(const TrainedModel& trained, const ExperimentConfig& cfg)
{
    Rng rng(cfg.corpusSeed, 0xE7A1);
    auto pairs = buildPairs(trained.corpus->submissions(),
                            trained.testIdx, cfg.evalPairs, rng);
    return scorePairs(*trained.engine, trained.corpus->submissions(),
                      pairs);
}

double
evalHeldOut(const TrainedModel& trained, const ExperimentConfig& cfg)
{
    return pairwiseAccuracy(scoreHeldOut(trained, cfg));
}

double
evalCrossProblem(const TrainedModel& trained, const ProblemSpec& other,
                 const ExperimentConfig& cfg)
{
    // Evaluation corpora are deterministic in (tag, seed, size), so
    // cache them: sweeps like Fig. 3 evaluate many models against the
    // same problems.
    static std::map<std::string, Corpus> cache;
    int count = std::max(std::min(cfg.submissionsPerProblem / 2, 32),
                         24);
    std::string key = other.tag + "/" +
        std::to_string(cfg.corpusSeed) + "/" + std::to_string(count);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, Corpus::generate(
            other, count, cfg.corpusSeed + 0x77)).first;
    }
    const Corpus& other_corpus = it->second;
    std::vector<int> idx(other_corpus.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<int>(i);
    Rng rng(cfg.corpusSeed, 0xC405);
    auto pairs = buildPairs(other_corpus.submissions(), idx,
                            cfg.evalPairs, rng);
    return pairwiseAccuracy(*trained.engine,
                            other_corpus.submissions(), pairs);
}

} // namespace ccsa
