/**
 * @file
 * Experiment driver shared by the benchmark harness: generate a
 * corpus, split it, build pairs, train a predictor, and evaluate on
 * disjoint same-problem or cross-problem pairs — the protocol of
 * paper §V / §VI-A ("train and test datasets are disjoint").
 */

#ifndef CCSA_EVAL_EXPERIMENT_HH
#define CCSA_EVAL_EXPERIMENT_HH

#include <memory>

#include "eval/metrics.hh"
#include "model/trainer.hh"

namespace ccsa
{

/** Everything one experiment run needs. */
struct ExperimentConfig
{
    EncoderConfig encoder;
    TrainConfig train;
    /** Submissions generated per problem. */
    int submissionsPerProblem = 160;
    /** Fraction of submissions used for training. */
    double trainFraction = 0.75;
    PairOptions trainPairs;
    PairOptions evalPairs;
    std::uint64_t corpusSeed = 100;

    ExperimentConfig()
    {
        trainPairs.maxPairs = 4000;
        evalPairs.maxPairs = 1500;
        evalPairs.symmetric = false;
    }

    /** Scale submissions/epochs by the CCSA_SCALE env factor. */
    void applyEnvScale();
};

/**
 * A trained predictor together with its data split, wrapped in a
 * serving Engine. All evaluation fans out through the Engine's batch
 * endpoints; `model` stays exposed for weight-level access (the
 * embedding explorer, serialization tests).
 */
struct TrainedModel
{
    std::shared_ptr<ComparativePredictor> model;
    std::shared_ptr<Engine> engine;
    std::shared_ptr<Corpus> corpus;
    std::vector<int> trainIdx;
    std::vector<int> testIdx;
    TrainStats stats;
};

/** Generate a corpus for a problem and fit a predictor on it. */
TrainedModel trainOnProblem(const ProblemSpec& spec,
                            const ExperimentConfig& cfg);

/** Fit a predictor on an existing corpus (e.g. the MP mixture). */
TrainedModel trainOnCorpus(std::shared_ptr<Corpus> corpus,
                           const ExperimentConfig& cfg);

/**
 * Accuracy on disjoint submissions of the training problem(s)
 * (Fig. 3 line plot protocol).
 */
double evalHeldOut(const TrainedModel& trained,
                   const ExperimentConfig& cfg);

/** Scored held-out pairs (for ROC / sensitivity analyses). */
std::vector<ScoredPair> scoreHeldOut(const TrainedModel& trained,
                                     const ExperimentConfig& cfg);

/**
 * Accuracy on pairs from a different problem (Fig. 3 boxplots /
 * Table II protocol). Fresh submissions are generated for `other`.
 */
double evalCrossProblem(const TrainedModel& trained,
                        const ProblemSpec& other,
                        const ExperimentConfig& cfg);

} // namespace ccsa

#endif // CCSA_EVAL_EXPERIMENT_HH
