#include "eval/metrics.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ccsa
{

std::vector<ScoredPair>
scorePairs(Engine& engine,
           const std::vector<Submission>& submissions,
           const std::vector<CodePair>& pairs)
{
    std::vector<Engine::PairRequest> requests;
    requests.reserve(pairs.size());
    for (const CodePair& p : pairs)
        requests.push_back({&submissions[p.first].ast,
                            &submissions[p.second].ast});
    Result<std::vector<double>> probs = engine.compareMany(requests);
    if (!probs.isOk())
        fatal("scorePairs: ", probs.status().toString());

    std::vector<ScoredPair> out;
    out.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const CodePair& p = pairs[i];
        ScoredPair s;
        s.score = probs.value()[i];
        s.label = p.label;
        s.gapMs = std::fabs(submissions[p.first].runtimeMs -
                            submissions[p.second].runtimeMs);
        out.push_back(s);
    }
    return out;
}

double
pairwiseAccuracy(const std::vector<ScoredPair>& scored)
{
    if (scored.empty())
        fatal("pairwiseAccuracy: no pairs");
    double correct = 0.0;
    for (const auto& s : scored) {
        bool predicted = s.score >= 0.5;
        if (predicted == (s.label >= 0.5f))
            correct += 1.0;
    }
    return correct / static_cast<double>(scored.size());
}

double
pairwiseAccuracy(Engine& engine,
                 const std::vector<Submission>& submissions,
                 const std::vector<CodePair>& pairs)
{
    return pairwiseAccuracy(scorePairs(engine, submissions, pairs));
}

std::vector<RocPoint>
rocCurve(const std::vector<ScoredPair>& scored)
{
    if (scored.empty())
        fatal("rocCurve: no pairs");
    std::vector<ScoredPair> sorted = scored;
    std::sort(sorted.begin(), sorted.end(),
              [](const ScoredPair& a, const ScoredPair& b) {
                  return a.score > b.score;
              });
    double pos = 0.0, neg = 0.0;
    for (const auto& s : sorted)
        (s.label >= 0.5f ? pos : neg) += 1.0;
    if (pos == 0.0 || neg == 0.0)
        fatal("rocCurve: need both classes present");

    std::vector<RocPoint> curve;
    curve.push_back({1.0 + sorted.front().score, 0.0, 0.0});
    double tp = 0.0, fp = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i].label >= 0.5f)
            tp += 1.0;
        else
            fp += 1.0;
        // Emit a point when the score changes (or at the end).
        if (i + 1 == sorted.size() ||
            sorted[i + 1].score != sorted[i].score) {
            curve.push_back({sorted[i].score, fp / neg, tp / pos});
        }
    }
    return curve;
}

double
rocAuc(const std::vector<ScoredPair>& scored)
{
    auto curve = rocCurve(scored);
    double auc = 0.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        double dx = curve[i].fpr - curve[i - 1].fpr;
        auc += dx * 0.5 * (curve[i].tpr + curve[i - 1].tpr);
    }
    return auc;
}

std::vector<SensitivityPoint>
sensitivitySweep(const std::vector<ScoredPair>& scored,
                 const std::vector<double>& thresholds_ms)
{
    std::vector<SensitivityPoint> out;
    for (double t : thresholds_ms) {
        SensitivityPoint pt;
        pt.minGapMs = t;
        double correct = 0.0;
        std::size_t kept = 0;
        for (const auto& s : scored) {
            if (s.gapMs < t)
                continue;
            ++kept;
            bool predicted = s.score >= 0.5;
            if (predicted == (s.label >= 0.5f))
                correct += 1.0;
        }
        pt.pairsRetained = kept;
        pt.accuracy = kept == 0
            ? 0.0 : correct / static_cast<double>(kept);
        out.push_back(pt);
    }
    return out;
}

Confusion
confusion(const std::vector<ScoredPair>& scored, double threshold)
{
    Confusion c;
    for (const auto& s : scored) {
        bool predicted = s.score >= threshold;
        bool actual = s.label >= 0.5f;
        if (predicted && actual)
            ++c.tp;
        else if (predicted && !actual)
            ++c.fp;
        else if (!predicted && !actual)
            ++c.tn;
        else
            ++c.fn;
    }
    return c;
}

} // namespace ccsa
