/**
 * @file
 * Evaluation metrics: pairwise accuracy (the paper's headline metric,
 * §I "model accuracy"), ROC curves and AUC (§VI-B), and the
 * runtime-difference sensitivity sweep (§VI-E / Fig. 6).
 */

#ifndef CCSA_EVAL_METRICS_HH
#define CCSA_EVAL_METRICS_HH

#include <vector>

#include "dataset/pairs.hh"
#include "serve/engine.hh"

namespace ccsa
{

/** One scored pair: model probability vs ground-truth label. */
struct ScoredPair
{
    double score = 0.0;
    float label = 0.0f;
    /** |runtime(first) - runtime(second)| in ms. */
    double gapMs = 0.0;
};

/**
 * Score every pair through the serving engine: all pairs share one
 * encoding batch, so each distinct submission is encoded at most
 * once (and often not at all, on a warm cache). The per-pair oracle
 * this path is pinned against lives in the tests
 * (tests/test_engine.cc) — it is no longer a library API.
 */
std::vector<ScoredPair> scorePairs(
    Engine& engine, const std::vector<Submission>& submissions,
    const std::vector<CodePair>& pairs);

/** Fraction of pairs classified correctly at threshold 0.5. */
double pairwiseAccuracy(const std::vector<ScoredPair>& scored);

/** Convenience: score + accuracy in one call. */
double pairwiseAccuracy(Engine& engine,
                        const std::vector<Submission>& submissions,
                        const std::vector<CodePair>& pairs);

/** One ROC operating point. */
struct RocPoint
{
    double threshold = 0.0;
    double fpr = 0.0;
    double tpr = 0.0;
};

/** Full ROC curve (thresholds swept over observed scores). */
std::vector<RocPoint> rocCurve(const std::vector<ScoredPair>& scored);

/** Area under the ROC curve (trapezoidal). */
double rocAuc(const std::vector<ScoredPair>& scored);

/** One point of the Fig. 6 sensitivity sweep. */
struct SensitivityPoint
{
    double minGapMs = 0.0;
    double accuracy = 0.0;
    std::size_t pairsRetained = 0;
};

/**
 * Accuracy restricted to pairs whose runtime gap is at least each
 * threshold (paper §VI-E: accuracy should rise with the gap).
 */
std::vector<SensitivityPoint> sensitivitySweep(
    const std::vector<ScoredPair>& scored,
    const std::vector<double>& thresholds_ms);

/** Confusion counts at threshold 0.5. */
struct Confusion
{
    std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

    double
    precision() const
    {
        return tp + fp == 0 ? 0.0
            : static_cast<double>(tp) / static_cast<double>(tp + fp);
    }

    double
    recall() const
    {
        return tp + fn == 0 ? 0.0
            : static_cast<double>(tp) / static_cast<double>(tp + fn);
    }
};

/** Confusion matrix of a scored set. */
Confusion confusion(const std::vector<ScoredPair>& scored,
                    double threshold = 0.5);

} // namespace ccsa

#endif // CCSA_EVAL_METRICS_HH
