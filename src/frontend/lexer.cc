#include "frontend/lexer.hh"

#include <cctype>
#include <unordered_map>

#include "base/logging.hh"

namespace ccsa
{

const char*
tokenKindName(TokenKind k)
{
    switch (k) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::IntLit: return "int literal";
      case TokenKind::DoubleLit: return "double literal";
      case TokenKind::CharLit: return "char literal";
      case TokenKind::StringLit: return "string literal";
      case TokenKind::KwInt: return "'int'";
      case TokenKind::KwLong: return "'long'";
      case TokenKind::KwDouble: return "'double'";
      case TokenKind::KwChar: return "'char'";
      case TokenKind::KwBool: return "'bool'";
      case TokenKind::KwVoid: return "'void'";
      case TokenKind::KwString: return "'string'";
      case TokenKind::KwVector: return "'vector'";
      case TokenKind::KwIf: return "'if'";
      case TokenKind::KwElse: return "'else'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwWhile: return "'while'";
      case TokenKind::KwDo: return "'do'";
      case TokenKind::KwReturn: return "'return'";
      case TokenKind::KwBreak: return "'break'";
      case TokenKind::KwContinue: return "'continue'";
      case TokenKind::KwTrue: return "'true'";
      case TokenKind::KwFalse: return "'false'";
      case TokenKind::KwConst: return "'const'";
      case TokenKind::KwUsing: return "'using'";
      case TokenKind::KwNamespace: return "'namespace'";
      case TokenKind::KwAuto: return "'auto'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Semi: return "';'";
      case TokenKind::Comma: return "','";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Question: return "'?'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Assign: return "'='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::PlusAssign: return "'+='";
      case TokenKind::MinusAssign: return "'-='";
      case TokenKind::StarAssign: return "'*='";
      case TokenKind::SlashAssign: return "'/='";
      case TokenKind::PercentAssign: return "'%='";
      case TokenKind::PlusPlus: return "'++'";
      case TokenKind::MinusMinus: return "'--'";
      case TokenKind::Less: return "'<'";
      case TokenKind::Greater: return "'>'";
      case TokenKind::LessEq: return "'<='";
      case TokenKind::GreaterEq: return "'>='";
      case TokenKind::EqualEqual: return "'=='";
      case TokenKind::NotEqual: return "'!='";
      case TokenKind::AmpAmp: return "'&&'";
      case TokenKind::PipePipe: return "'||'";
      case TokenKind::Bang: return "'!'";
      case TokenKind::Amp: return "'&'";
      case TokenKind::Pipe: return "'|'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::LtLt: return "'<<'";
      case TokenKind::GtGt: return "'>>'";
      case TokenKind::Eof: return "end of input";
    }
    return "unknown token";
}

namespace
{

const std::unordered_map<std::string, TokenKind> kKeywords = {
    {"int", TokenKind::KwInt},
    {"long", TokenKind::KwLong},
    {"double", TokenKind::KwDouble},
    {"float", TokenKind::KwDouble},
    {"char", TokenKind::KwChar},
    {"bool", TokenKind::KwBool},
    {"void", TokenKind::KwVoid},
    {"string", TokenKind::KwString},
    {"vector", TokenKind::KwVector},
    {"if", TokenKind::KwIf},
    {"else", TokenKind::KwElse},
    {"for", TokenKind::KwFor},
    {"while", TokenKind::KwWhile},
    {"do", TokenKind::KwDo},
    {"return", TokenKind::KwReturn},
    {"break", TokenKind::KwBreak},
    {"continue", TokenKind::KwContinue},
    {"true", TokenKind::KwTrue},
    {"false", TokenKind::KwFalse},
    {"const", TokenKind::KwConst},
    {"using", TokenKind::KwUsing},
    {"namespace", TokenKind::KwNamespace},
    {"auto", TokenKind::KwAuto},
};

} // namespace

Lexer::Lexer(std::string source)
    : src_(std::move(source))
{
}

char
Lexer::peek(int ahead) const
{
    std::size_t p = pos_ + static_cast<std::size_t>(ahead);
    return p < src_.size() ? src_[p] : '\0';
}

char
Lexer::advance()
{
    char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (atEnd() || src_[pos_] != expected)
        return false;
    advance();
    return true;
}

bool
Lexer::atEnd() const
{
    return pos_ >= src_.size();
}

void
Lexer::skipTrivia()
{
    while (!atEnd()) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (!atEnd()) {
                advance();
                advance();
            }
        } else if (c == '#' && col_ == 1) {
            // Preprocessor directive: discard the whole line.
            while (!atEnd() && peek() != '\n')
                advance();
        } else {
            break;
        }
    }
}

Token
Lexer::makeToken(TokenKind kind, std::string text) const
{
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tokLine_;
    t.col = tokCol_;
    return t;
}

Token
Lexer::lexNumber()
{
    std::string text;
    bool is_double = false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
        text.push_back(advance());
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(
            peek(1)))) {
        is_double = true;
        text.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek())))
            text.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
        is_double = true;
        text.push_back(advance());
        if (peek() == '+' || peek() == '-')
            text.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek())))
            text.push_back(advance());
    }
    // Integer suffixes (LL, LLU, U...) are consumed but not recorded.
    while (peek() == 'l' || peek() == 'L' || peek() == 'u' ||
           peek() == 'U')
        advance();
    return makeToken(is_double ? TokenKind::DoubleLit
                               : TokenKind::IntLit, text);
}

Token
Lexer::lexIdentifier()
{
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_')
        text.push_back(advance());
    auto it = kKeywords.find(text);
    if (it != kKeywords.end())
        return makeToken(it->second, text);
    return makeToken(TokenKind::Identifier, text);
}

Token
Lexer::lexString()
{
    advance(); // opening quote
    std::string text;
    while (!atEnd() && peek() != '"') {
        char c = advance();
        if (c == '\\' && !atEnd())
            text.push_back(advance());
        else
            text.push_back(c);
    }
    if (atEnd())
        fatal("lexer: unterminated string literal at line ", tokLine_);
    advance(); // closing quote
    return makeToken(TokenKind::StringLit, text);
}

Token
Lexer::lexChar()
{
    advance(); // opening quote
    std::string text;
    while (!atEnd() && peek() != '\'') {
        char c = advance();
        if (c == '\\' && !atEnd())
            text.push_back(advance());
        else
            text.push_back(c);
    }
    if (atEnd())
        fatal("lexer: unterminated char literal at line ", tokLine_);
    advance(); // closing quote
    return makeToken(TokenKind::CharLit, text);
}

std::vector<Token>
Lexer::tokenize()
{
    std::vector<Token> out;
    while (true) {
        skipTrivia();
        tokLine_ = line_;
        tokCol_ = col_;
        if (atEnd()) {
            out.push_back(makeToken(TokenKind::Eof, ""));
            break;
        }
        char c = peek();
        if (std::isdigit(static_cast<unsigned char>(c))) {
            out.push_back(lexNumber());
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            out.push_back(lexIdentifier());
            continue;
        }
        if (c == '"') {
            out.push_back(lexString());
            continue;
        }
        if (c == '\'') {
            out.push_back(lexChar());
            continue;
        }
        advance();
        switch (c) {
          case '(': out.push_back(makeToken(TokenKind::LParen, "("));
            break;
          case ')': out.push_back(makeToken(TokenKind::RParen, ")"));
            break;
          case '{': out.push_back(makeToken(TokenKind::LBrace, "{"));
            break;
          case '}': out.push_back(makeToken(TokenKind::RBrace, "}"));
            break;
          case '[': out.push_back(makeToken(TokenKind::LBracket, "["));
            break;
          case ']': out.push_back(makeToken(TokenKind::RBracket, "]"));
            break;
          case ';': out.push_back(makeToken(TokenKind::Semi, ";"));
            break;
          case ',': out.push_back(makeToken(TokenKind::Comma, ","));
            break;
          case '.': out.push_back(makeToken(TokenKind::Dot, "."));
            break;
          case '?': out.push_back(makeToken(TokenKind::Question, "?"));
            break;
          case ':':
            // "::" never appears in MiniCxx; treat as single colon.
            out.push_back(makeToken(TokenKind::Colon, ":"));
            break;
          case '+':
            if (match('+'))
                out.push_back(makeToken(TokenKind::PlusPlus, "++"));
            else if (match('='))
                out.push_back(makeToken(TokenKind::PlusAssign, "+="));
            else
                out.push_back(makeToken(TokenKind::Plus, "+"));
            break;
          case '-':
            if (match('-'))
                out.push_back(makeToken(TokenKind::MinusMinus, "--"));
            else if (match('='))
                out.push_back(makeToken(TokenKind::MinusAssign, "-="));
            else
                out.push_back(makeToken(TokenKind::Minus, "-"));
            break;
          case '*':
            out.push_back(match('=')
                ? makeToken(TokenKind::StarAssign, "*=")
                : makeToken(TokenKind::Star, "*"));
            break;
          case '/':
            out.push_back(match('=')
                ? makeToken(TokenKind::SlashAssign, "/=")
                : makeToken(TokenKind::Slash, "/"));
            break;
          case '%':
            out.push_back(match('=')
                ? makeToken(TokenKind::PercentAssign, "%=")
                : makeToken(TokenKind::Percent, "%"));
            break;
          case '<':
            if (match('<'))
                out.push_back(makeToken(TokenKind::LtLt, "<<"));
            else if (match('='))
                out.push_back(makeToken(TokenKind::LessEq, "<="));
            else
                out.push_back(makeToken(TokenKind::Less, "<"));
            break;
          case '>':
            if (match('>'))
                out.push_back(makeToken(TokenKind::GtGt, ">>"));
            else if (match('='))
                out.push_back(makeToken(TokenKind::GreaterEq, ">="));
            else
                out.push_back(makeToken(TokenKind::Greater, ">"));
            break;
          case '=':
            out.push_back(match('=')
                ? makeToken(TokenKind::EqualEqual, "==")
                : makeToken(TokenKind::Assign, "="));
            break;
          case '!':
            out.push_back(match('=')
                ? makeToken(TokenKind::NotEqual, "!=")
                : makeToken(TokenKind::Bang, "!"));
            break;
          case '&':
            out.push_back(match('&')
                ? makeToken(TokenKind::AmpAmp, "&&")
                : makeToken(TokenKind::Amp, "&"));
            break;
          case '|':
            out.push_back(match('|')
                ? makeToken(TokenKind::PipePipe, "||")
                : makeToken(TokenKind::Pipe, "|"));
            break;
          case '^':
            out.push_back(makeToken(TokenKind::Caret, "^"));
            break;
          default:
            fatal("lexer: unexpected character '", std::string(1, c),
                  "' at line ", tokLine_, ", col ", tokCol_);
        }
    }
    return out;
}

} // namespace ccsa
