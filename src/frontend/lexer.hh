/**
 * @file
 * Hand-written lexer for MiniCxx, the C++ subset emitted by the corpus
 * generator. Skips whitespace, line/block comments and preprocessor
 * directives (#include lines carry no structural information for the
 * models, matching the paper's pruning).
 */

#ifndef CCSA_FRONTEND_LEXER_HH
#define CCSA_FRONTEND_LEXER_HH

#include <vector>

#include "frontend/token.hh"

namespace ccsa
{

/** Tokenise MiniCxx source text. */
class Lexer
{
  public:
    /** @param source full program text. */
    explicit Lexer(std::string source);

    /**
     * Lex the whole input.
     * @return tokens terminated by an Eof token.
     * @throws FatalError on malformed input (bad char, open string).
     */
    std::vector<Token> tokenize();

  private:
    char peek(int ahead = 0) const;
    char advance();
    bool match(char expected);
    bool atEnd() const;

    void skipTrivia();
    Token lexNumber();
    Token lexIdentifier();
    Token lexString();
    Token lexChar();
    Token makeToken(TokenKind kind, std::string text) const;

    std::string src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    int tokLine_ = 1;
    int tokCol_ = 1;
};

} // namespace ccsa

#endif // CCSA_FRONTEND_LEXER_HH
