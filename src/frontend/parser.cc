#include "frontend/parser.hh"

#include <algorithm>

#include "base/logging.hh"
#include "frontend/lexer.hh"

namespace ccsa
{

namespace
{

/**
 * Detach a just-parsed node from its parent and re-hang it under a new
 * operator node created in its place. Used by the expression parser to
 * build left-associative trees inside the arena.
 */
int
wrapNode(Ast& ast, int node, NodeKind op, const std::string& text = "")
{
    int parent = ast.node(node).parent;
    auto& siblings = ast.node(parent).children;
    auto it = std::find(siblings.begin(), siblings.end(), node);
    if (it == siblings.end())
        panic("wrapNode: node not registered with its parent");
    siblings.erase(it);
    int op_id = ast.addNode(op, parent, text);
    ast.node(node).parent = op_id;
    ast.node(op_id).children.push_back(node);
    return op_id;
}

/** Binary operator precedence table; -1 means "not a binary op". */
struct BinOp
{
    NodeKind kind;
    int prec;
};

BinOp
binOpFor(TokenKind t)
{
    switch (t) {
      case TokenKind::PipePipe: return {NodeKind::LogicalOr, 1};
      case TokenKind::AmpAmp: return {NodeKind::LogicalAnd, 2};
      case TokenKind::Pipe: return {NodeKind::BitOr, 3};
      case TokenKind::Caret: return {NodeKind::BitXor, 4};
      case TokenKind::Amp: return {NodeKind::BitAnd, 5};
      case TokenKind::EqualEqual: return {NodeKind::Equal, 6};
      case TokenKind::NotEqual: return {NodeKind::NotEqual, 6};
      case TokenKind::Less: return {NodeKind::Less, 7};
      case TokenKind::Greater: return {NodeKind::Greater, 7};
      case TokenKind::LessEq: return {NodeKind::LessEq, 7};
      case TokenKind::GreaterEq: return {NodeKind::GreaterEq, 7};
      case TokenKind::LtLt: return {NodeKind::ShiftLeft, 8};
      case TokenKind::GtGt: return {NodeKind::ShiftRight, 8};
      case TokenKind::Plus: return {NodeKind::Add, 9};
      case TokenKind::Minus: return {NodeKind::Sub, 9};
      case TokenKind::Star: return {NodeKind::Mul, 10};
      case TokenKind::Slash: return {NodeKind::Div, 10};
      case TokenKind::Percent: return {NodeKind::Mod, 10};
      default: return {NodeKind::Root, -1};
    }
}

NodeKind
assignOpFor(TokenKind t)
{
    switch (t) {
      case TokenKind::Assign: return NodeKind::Assign;
      case TokenKind::PlusAssign: return NodeKind::AddAssign;
      case TokenKind::MinusAssign: return NodeKind::SubAssign;
      case TokenKind::StarAssign: return NodeKind::MulAssign;
      case TokenKind::SlashAssign: return NodeKind::DivAssign;
      case TokenKind::PercentAssign: return NodeKind::ModAssign;
      default: return NodeKind::Root;
    }
}

bool
isAssignToken(TokenKind t)
{
    return assignOpFor(t) != NodeKind::Root;
}

} // namespace

Parser::Parser(std::vector<Token> tokens)
    : tokens_(std::move(tokens))
{
    if (tokens_.empty() || tokens_.back().kind != TokenKind::Eof)
        panic("Parser: token stream must end with Eof");
}

const Token&
Parser::peek(int ahead) const
{
    std::size_t p = pos_ + static_cast<std::size_t>(ahead);
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
}

const Token&
Parser::advance()
{
    const Token& t = tokens_[pos_];
    if (t.kind != TokenKind::Eof)
        ++pos_;
    return t;
}

bool
Parser::check(TokenKind kind) const
{
    return peek().kind == kind;
}

bool
Parser::accept(TokenKind kind)
{
    if (!check(kind))
        return false;
    advance();
    return true;
}

const Token&
Parser::expect(TokenKind kind, const char* context)
{
    if (!check(kind)) {
        fatal("parse error at line ", peek().line, ", col ",
              peek().col, ": expected ", tokenKindName(kind), " in ",
              context, ", found ", tokenKindName(peek().kind),
              peek().text.empty() ? "" : " '" + peek().text + "'");
    }
    return advance();
}

void
Parser::syntaxError(const char* context) const
{
    fatal("parse error at line ", peek().line, ", col ", peek().col,
          ": unexpected ", tokenKindName(peek().kind),
          peek().text.empty() ? "" : " '" + peek().text + "'", " in ",
          context);
}

void
Parser::expectTemplateClose()
{
    if (check(TokenKind::Greater)) {
        advance();
        return;
    }
    if (check(TokenKind::GtGt)) {
        // Split '>>' into two '>' tokens: consume the first half by
        // rewriting the token in place.
        tokens_[pos_].kind = TokenKind::Greater;
        tokens_[pos_].text = ">";
        return;
    }
    syntaxError("template argument list");
}

bool
Parser::atTypeStart() const
{
    switch (peek().kind) {
      case TokenKind::KwInt:
      case TokenKind::KwLong:
      case TokenKind::KwDouble:
      case TokenKind::KwChar:
      case TokenKind::KwBool:
      case TokenKind::KwVoid:
      case TokenKind::KwString:
      case TokenKind::KwVector:
      case TokenKind::KwConst:
      case TokenKind::KwAuto:
        return true;
      default:
        return false;
    }
}

std::string
Parser::parseType()
{
    std::string type;
    if (accept(TokenKind::KwConst))
        type += "const ";
    switch (peek().kind) {
      case TokenKind::KwInt:
      case TokenKind::KwDouble:
      case TokenKind::KwChar:
      case TokenKind::KwBool:
      case TokenKind::KwVoid:
      case TokenKind::KwString:
      case TokenKind::KwAuto:
        type += advance().text;
        break;
      case TokenKind::KwLong:
        advance();
        type += "long";
        if (accept(TokenKind::KwLong))
            type += " long";
        accept(TokenKind::KwInt);
        break;
      case TokenKind::KwVector: {
        advance();
        expect(TokenKind::Less, "vector type");
        std::string inner = parseType();
        expectTemplateClose();
        type += "vector<" + inner + ">";
        break;
      }
      default:
        syntaxError("type");
    }
    if (accept(TokenKind::Amp))
        type += "&";
    return type;
}

Ast
Parser::parseTranslationUnit()
{
    Ast ast(NodeKind::Root);
    while (!check(TokenKind::Eof)) {
        if (check(TokenKind::KwUsing)) {
            advance();
            expect(TokenKind::KwNamespace, "using directive");
            expect(TokenKind::Identifier, "using directive");
            expect(TokenKind::Semi, "using directive");
            continue;
        }
        if (accept(TokenKind::Semi))
            continue;
        parseTopLevel(ast);
    }
    return ast;
}

namespace
{

bool
isTypeStartTok(TokenKind k)
{
    switch (k) {
      case TokenKind::KwInt:
      case TokenKind::KwLong:
      case TokenKind::KwDouble:
      case TokenKind::KwChar:
      case TokenKind::KwBool:
      case TokenKind::KwVoid:
      case TokenKind::KwString:
      case TokenKind::KwVector:
      case TokenKind::KwConst:
      case TokenKind::KwAuto:
        return true;
      default:
        return false;
    }
}

} // namespace

void
Parser::parseTopLevel(Ast& ast)
{
    std::string type = parseType();
    std::string name =
        expect(TokenKind::Identifier, "top-level declaration").text;
    // "name(" opens a function definition only when followed by a
    // parameter type or an empty list; otherwise it is a
    // constructor-style global initialiser like vector<int> v(n).
    if (check(TokenKind::LParen) &&
        (isTypeStartTok(peek(1).kind) ||
         peek(1).kind == TokenKind::RParen)) {
        parseFunctionRest(ast, type, name);
        return;
    }
    // Global variable declaration(s).
    int decl = ast.addNode(NodeKind::DeclStmt, ast.root(), type);
    parseDeclaratorRestNamed(ast, decl, type, name);
    while (accept(TokenKind::Comma)) {
        std::string next =
            expect(TokenKind::Identifier, "declarator").text;
        parseDeclaratorRestNamed(ast, decl, type, next);
    }
    expect(TokenKind::Semi, "global declaration");
}

void
Parser::parseFunctionRest(Ast& ast, const std::string& type,
                          const std::string& name)
{
    int fn = ast.addNode(NodeKind::FunctionDef, ast.root(), name);
    ast.node(fn).text = name;
    int params = ast.addNode(NodeKind::ParamList, fn, type);
    expect(TokenKind::LParen, "function parameters");
    if (!check(TokenKind::RParen)) {
        do {
            std::string ptype = parseType();
            std::string pname;
            if (check(TokenKind::Identifier))
                pname = advance().text;
            // Param text carries "type|name" so the judge can model
            // pass-by-value copies; models only read the node kind.
            int p = ast.addNode(NodeKind::Param, params,
                                ptype + "|" + pname);
            // Array-typed parameter: int a[] or int a[10].
            while (accept(TokenKind::LBracket)) {
                int ext = ast.addNode(NodeKind::ArrayExtent, p);
                if (!check(TokenKind::RBracket))
                    parseExpression(ast, ext);
                expect(TokenKind::RBracket, "array parameter");
            }
        } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "function parameters");
    if (accept(TokenKind::Semi))
        return; // prototype: FunctionDef without a body
    parseBlock(ast, fn);
}

int
Parser::parseBlock(Ast& ast, int parent)
{
    expect(TokenKind::LBrace, "block");
    int block = ast.addNode(NodeKind::CompoundStmt, parent);
    while (!check(TokenKind::RBrace) && !check(TokenKind::Eof))
        parseStatement(ast, block);
    expect(TokenKind::RBrace, "block");
    return block;
}

int
Parser::parseStatement(Ast& ast, int parent)
{
    switch (peek().kind) {
      case TokenKind::LBrace:
        return parseBlock(ast, parent);
      case TokenKind::Semi:
        advance();
        return ast.addNode(NodeKind::EmptyStmt, parent);
      case TokenKind::KwIf: {
        advance();
        int stmt = ast.addNode(NodeKind::IfStmt, parent);
        expect(TokenKind::LParen, "if condition");
        parseExpression(ast, stmt);
        expect(TokenKind::RParen, "if condition");
        parseStatement(ast, stmt);
        if (accept(TokenKind::KwElse))
            parseStatement(ast, stmt);
        return stmt;
      }
      case TokenKind::KwFor: {
        advance();
        int stmt = ast.addNode(NodeKind::ForStmt, parent);
        expect(TokenKind::LParen, "for header");
        // init
        if (check(TokenKind::Semi)) {
            advance();
            ast.addNode(NodeKind::EmptyStmt, stmt);
        } else if (atTypeStart()) {
            parseDeclStmt(ast, stmt);
        } else {
            int es = ast.addNode(NodeKind::ExprStmt, stmt);
            parseExpression(ast, es);
            expect(TokenKind::Semi, "for init");
        }
        // condition
        if (check(TokenKind::Semi))
            ast.addNode(NodeKind::EmptyStmt, stmt);
        else
            parseExpression(ast, stmt);
        expect(TokenKind::Semi, "for condition");
        // increment
        if (check(TokenKind::RParen))
            ast.addNode(NodeKind::EmptyStmt, stmt);
        else
            parseExpression(ast, stmt);
        expect(TokenKind::RParen, "for header");
        parseStatement(ast, stmt);
        return stmt;
      }
      case TokenKind::KwWhile: {
        advance();
        int stmt = ast.addNode(NodeKind::WhileStmt, parent);
        expect(TokenKind::LParen, "while condition");
        parseExpression(ast, stmt);
        expect(TokenKind::RParen, "while condition");
        parseStatement(ast, stmt);
        return stmt;
      }
      case TokenKind::KwDo: {
        advance();
        int stmt = ast.addNode(NodeKind::DoWhileStmt, parent);
        parseStatement(ast, stmt);
        expect(TokenKind::KwWhile, "do-while");
        expect(TokenKind::LParen, "do-while condition");
        parseExpression(ast, stmt);
        expect(TokenKind::RParen, "do-while condition");
        expect(TokenKind::Semi, "do-while");
        return stmt;
      }
      case TokenKind::KwReturn: {
        advance();
        int stmt = ast.addNode(NodeKind::ReturnStmt, parent);
        if (!check(TokenKind::Semi))
            parseExpression(ast, stmt);
        expect(TokenKind::Semi, "return statement");
        return stmt;
      }
      case TokenKind::KwBreak: {
        advance();
        expect(TokenKind::Semi, "break statement");
        return ast.addNode(NodeKind::BreakStmt, parent);
      }
      case TokenKind::KwContinue: {
        advance();
        expect(TokenKind::Semi, "continue statement");
        return ast.addNode(NodeKind::ContinueStmt, parent);
      }
      default:
        if (atTypeStart())
            return parseDeclStmt(ast, parent);
        int stmt = ast.addNode(NodeKind::ExprStmt, parent);
        parseExpression(ast, stmt);
        expect(TokenKind::Semi, "expression statement");
        return stmt;
    }
}

int
Parser::parseDeclStmt(Ast& ast, int parent)
{
    std::string type = parseType();
    int decl = ast.addNode(NodeKind::DeclStmt, parent, type);
    do {
        std::string name =
            expect(TokenKind::Identifier, "declarator").text;
        parseDeclaratorRestNamed(ast, decl, type, name);
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Semi, "declaration");
    return decl;
}

void
Parser::parseDeclaratorRestNamed(Ast& ast, int decl_stmt,
                                 const std::string& type,
                                 const std::string& name)
{
    int var = ast.addNode(NodeKind::VarDecl, decl_stmt, name);
    (void)type;
    // Array extents, wrapped so consumers can tell dims from inits.
    while (accept(TokenKind::LBracket)) {
        int ext = ast.addNode(NodeKind::ArrayExtent, var);
        if (!check(TokenKind::RBracket))
            parseExpression(ast, ext);
        expect(TokenKind::RBracket, "array declarator");
    }
    if (accept(TokenKind::Assign)) {
        if (check(TokenKind::LBrace)) {
            advance();
            int init = ast.addNode(NodeKind::InitList, var);
            if (!check(TokenKind::RBrace)) {
                do {
                    parseAssignment(ast, init);
                } while (accept(TokenKind::Comma));
            }
            expect(TokenKind::RBrace, "initializer list");
        } else {
            parseAssignment(ast, var);
        }
    } else if (accept(TokenKind::LParen)) {
        // Constructor-style init: vector<int> v(n, 0).
        int init = ast.addNode(NodeKind::InitList, var);
        if (!check(TokenKind::RParen)) {
            do {
                parseAssignment(ast, init);
            } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "constructor initializer");
    } else if (check(TokenKind::LBrace)) {
        advance();
        int init = ast.addNode(NodeKind::InitList, var);
        if (!check(TokenKind::RBrace)) {
            do {
                parseAssignment(ast, init);
            } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RBrace, "initializer list");
    }
}

int
Parser::parseExpression(Ast& ast, int parent)
{
    return parseAssignment(ast, parent);
}

int
Parser::parseAssignment(Ast& ast, int parent)
{
    int lhs = parseTernary(ast, parent);
    if (isAssignToken(peek().kind)) {
        NodeKind op = assignOpFor(advance().kind);
        int node = wrapNode(ast, lhs, op);
        parseAssignment(ast, node);
        return node;
    }
    return lhs;
}

int
Parser::parseTernary(Ast& ast, int parent)
{
    int cond = parseBinary(ast, parent, 1);
    if (accept(TokenKind::Question)) {
        int node = wrapNode(ast, cond, NodeKind::CondExpr);
        parseAssignment(ast, node);
        expect(TokenKind::Colon, "conditional expression");
        parseAssignment(ast, node);
        return node;
    }
    return cond;
}

int
Parser::parseBinary(Ast& ast, int parent, int min_prec)
{
    int lhs = parseUnary(ast, parent);
    while (true) {
        BinOp op = binOpFor(peek().kind);
        if (op.prec < min_prec)
            break;
        advance();
        int node = wrapNode(ast, lhs, op.kind);
        parseBinary(ast, node, op.prec + 1);
        lhs = node;
    }
    return lhs;
}

int
Parser::parseUnary(Ast& ast, int parent)
{
    switch (peek().kind) {
      case TokenKind::Bang: {
        advance();
        int node = ast.addNode(NodeKind::LogicalNot, parent);
        parseUnary(ast, node);
        return node;
      }
      case TokenKind::Minus: {
        advance();
        int node = ast.addNode(NodeKind::Negate, parent);
        parseUnary(ast, node);
        return node;
      }
      case TokenKind::Plus:
        advance();
        return parseUnary(ast, parent);
      case TokenKind::PlusPlus: {
        advance();
        int node = ast.addNode(NodeKind::PreInc, parent);
        parseUnary(ast, node);
        return node;
      }
      case TokenKind::MinusMinus: {
        advance();
        int node = ast.addNode(NodeKind::PreDec, parent);
        parseUnary(ast, node);
        return node;
      }
      default:
        return parsePostfix(ast, parent);
    }
}

int
Parser::parsePostfix(Ast& ast, int parent)
{
    int expr = parsePrimary(ast, parent);
    while (true) {
        if (check(TokenKind::LParen)) {
            advance();
            int call = wrapNode(ast, expr, NodeKind::CallExpr);
            if (!check(TokenKind::RParen)) {
                do {
                    parseAssignment(ast, call);
                } while (accept(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "call arguments");
            expr = call;
        } else if (check(TokenKind::LBracket)) {
            advance();
            int sub = wrapNode(ast, expr, NodeKind::SubscriptExpr);
            parseExpression(ast, sub);
            expect(TokenKind::RBracket, "subscript");
            expr = sub;
        } else if (check(TokenKind::Dot)) {
            advance();
            std::string member =
                expect(TokenKind::Identifier, "member access").text;
            expr = wrapNode(ast, expr, NodeKind::MemberExpr, member);
        } else if (check(TokenKind::PlusPlus)) {
            advance();
            expr = wrapNode(ast, expr, NodeKind::PostInc);
        } else if (check(TokenKind::MinusMinus)) {
            advance();
            expr = wrapNode(ast, expr, NodeKind::PostDec);
        } else {
            break;
        }
    }
    return expr;
}

int
Parser::parsePrimary(Ast& ast, int parent)
{
    switch (peek().kind) {
      case TokenKind::IntLit:
        return ast.addNode(NodeKind::IntLiteral, parent,
                           advance().text);
      case TokenKind::DoubleLit:
        return ast.addNode(NodeKind::DoubleLiteral, parent,
                           advance().text);
      case TokenKind::CharLit:
        return ast.addNode(NodeKind::CharLiteral, parent,
                           advance().text);
      case TokenKind::StringLit:
        return ast.addNode(NodeKind::StringLiteral, parent,
                           advance().text);
      case TokenKind::KwTrue:
        advance();
        return ast.addNode(NodeKind::BoolLiteral, parent, "true");
      case TokenKind::KwFalse:
        advance();
        return ast.addNode(NodeKind::BoolLiteral, parent, "false");
      case TokenKind::Identifier:
        return ast.addNode(NodeKind::VarRef, parent, advance().text);
      case TokenKind::LParen: {
        advance();
        int expr = parseExpression(ast, parent);
        expect(TokenKind::RParen, "parenthesised expression");
        return expr;
      }
      default:
        syntaxError("expression");
    }
}

Ast
parseSource(const std::string& source)
{
    Lexer lexer(source);
    Parser parser(lexer.tokenize());
    return parser.parseTranslationUnit();
}

Ast
parseAndPrune(const std::string& source)
{
    return pruneToFunctions(parseSource(source));
}

} // namespace ccsa
