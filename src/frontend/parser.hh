/**
 * @file
 * Recursive-descent parser for MiniCxx producing ccsa::Ast trees. The
 * grammar covers the constructs emitted by the corpus generator (and a
 * useful superset of hand-written competitive-programming C++):
 * functions, scalar/array/vector declarations, the full statement set,
 * and C-style expressions with standard precedence, including iostream
 * style I/O via the shift operators.
 */

#ifndef CCSA_FRONTEND_PARSER_HH
#define CCSA_FRONTEND_PARSER_HH

#include <vector>

#include "ast/ast.hh"
#include "frontend/token.hh"

namespace ccsa
{

/** Parse MiniCxx source text into a full translation-unit Ast. */
class Parser
{
  public:
    /** @param tokens lexer output (must end with Eof). */
    explicit Parser(std::vector<Token> tokens);

    /**
     * Parse a translation unit.
     * @return the AST rooted at a Root node whose children are
     * function definitions and global declarations.
     * @throws FatalError with line/col info on syntax errors.
     */
    Ast parseTranslationUnit();

  private:
    const Token& peek(int ahead = 0) const;
    const Token& advance();
    bool check(TokenKind kind) const;
    bool accept(TokenKind kind);
    const Token& expect(TokenKind kind, const char* context);
    [[noreturn]] void syntaxError(const char* context) const;

    /** Consume a '>' that may be the first half of a '>>' token. */
    void expectTemplateClose();

    bool atTypeStart() const;
    std::string parseType();

    void parseTopLevel(Ast& ast);
    void parseFunctionRest(Ast& ast, const std::string& type,
                           const std::string& name);
    int parseBlock(Ast& ast, int parent);
    int parseStatement(Ast& ast, int parent);
    int parseDeclStmt(Ast& ast, int parent);
    void parseDeclaratorRestNamed(Ast& ast, int decl_stmt,
                                  const std::string& type,
                                  const std::string& name);

    int parseExpression(Ast& ast, int parent);
    int parseAssignment(Ast& ast, int parent);
    int parseTernary(Ast& ast, int parent);
    int parseBinary(Ast& ast, int parent, int min_prec);
    int parseUnary(Ast& ast, int parent);
    int parsePostfix(Ast& ast, int parent);
    int parsePrimary(Ast& ast, int parent);

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

/** Convenience: lex + parse in one call. */
Ast parseSource(const std::string& source);

/** Convenience: lex + parse + prune to function definitions (§IV-A). */
Ast parseAndPrune(const std::string& source);

} // namespace ccsa

#endif // CCSA_FRONTEND_PARSER_HH
