/**
 * @file
 * Token definitions for the MiniCxx frontend.
 */

#ifndef CCSA_FRONTEND_TOKEN_HH
#define CCSA_FRONTEND_TOKEN_HH

#include <string>

namespace ccsa
{

/** Lexical token kinds of MiniCxx. */
enum class TokenKind
{
    Identifier,
    IntLit,
    DoubleLit,
    CharLit,
    StringLit,

    // Keywords.
    KwInt, KwLong, KwDouble, KwChar, KwBool, KwVoid,
    KwString, KwVector,
    KwIf, KwElse, KwFor, KwWhile, KwDo,
    KwReturn, KwBreak, KwContinue,
    KwTrue, KwFalse,
    KwConst, KwUsing, KwNamespace, KwAuto,

    // Punctuation and operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Dot, Question, Colon,
    Assign,
    Plus, Minus, Star, Slash, Percent,
    PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
    PlusPlus, MinusMinus,
    Less, Greater, LessEq, GreaterEq, EqualEqual, NotEqual,
    AmpAmp, PipePipe, Bang,
    Amp, Pipe, Caret, LtLt, GtGt,

    Eof,
};

/** @return printable token-kind name for diagnostics. */
const char* tokenKindName(TokenKind k);

/** One lexed token with its source position. */
struct Token
{
    TokenKind kind = TokenKind::Eof;
    std::string text;
    int line = 0;
    int col = 0;
};

} // namespace ccsa

#endif // CCSA_FRONTEND_TOKEN_HH
