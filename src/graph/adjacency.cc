#include "graph/adjacency.hh"

#include <cmath>
#include <vector>

namespace ccsa
{

std::shared_ptr<const CsrMatrix>
buildNormalizedAdjacency(const Ast& ast)
{
    int n = ast.size();
    std::vector<double> degree(n, 1.0); // self loop
    for (int i = 0; i < n; ++i) {
        for (int c : ast.node(i).children) {
            degree[i] += 1.0;
            degree[c] += 1.0;
        }
    }
    std::vector<CooEntry> entries;
    entries.reserve(static_cast<std::size_t>(3 * n));
    auto norm = [&](int a, int b) {
        return static_cast<float>(
            1.0 / std::sqrt(degree[a] * degree[b]));
    };
    for (int i = 0; i < n; ++i) {
        entries.push_back({i, i, norm(i, i)});
        for (int c : ast.node(i).children) {
            entries.push_back({i, c, norm(i, c)});
            entries.push_back({c, i, norm(c, i)});
        }
    }
    return std::make_shared<CsrMatrix>(
        CsrMatrix::fromCoo(n, n, std::move(entries)));
}

} // namespace ccsa
