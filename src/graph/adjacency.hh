/**
 * @file
 * AST-to-graph conversion for the GCN baseline: the tree is viewed as
 * an undirected graph, augmented with self loops and symmetrically
 * degree-normalised (Kipf & Welling): A_hat = D^-1/2 (A + I) D^-1/2.
 */

#ifndef CCSA_GRAPH_ADJACENCY_HH
#define CCSA_GRAPH_ADJACENCY_HH

#include <memory>

#include "ast/ast.hh"
#include "tensor/sparse.hh"

namespace ccsa
{

/**
 * Build the normalised adjacency of an AST.
 * @return shared CSR matrix of shape (n, n), n = ast.size().
 */
std::shared_ptr<const CsrMatrix> buildNormalizedAdjacency(const Ast& ast);

} // namespace ccsa

#endif // CCSA_GRAPH_ADJACENCY_HH
