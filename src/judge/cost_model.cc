#include "judge/cost_model.hh"

#include <unordered_map>

namespace ccsa
{

double
CostModel::operatorCost(NodeKind kind) const
{
    switch (kind) {
      case NodeKind::Add:
      case NodeKind::Sub:
        return addSub;
      case NodeKind::Mul:
        return mulOp;
      case NodeKind::Div:
      case NodeKind::Mod:
        return divMod;
      case NodeKind::Less:
      case NodeKind::Greater:
      case NodeKind::LessEq:
      case NodeKind::GreaterEq:
      case NodeKind::Equal:
      case NodeKind::NotEqual:
        return compare;
      case NodeKind::LogicalAnd:
      case NodeKind::LogicalOr:
      case NodeKind::LogicalNot:
        return logical;
      case NodeKind::BitAnd:
      case NodeKind::BitOr:
      case NodeKind::BitXor:
        return logical;
      case NodeKind::Assign:
        return assign;
      case NodeKind::AddAssign:
      case NodeKind::SubAssign:
        return assign + addSub;
      case NodeKind::MulAssign:
        return assign + mulOp;
      case NodeKind::DivAssign:
      case NodeKind::ModAssign:
        return assign + divMod;
      case NodeKind::PreInc:
      case NodeKind::PreDec:
      case NodeKind::PostInc:
      case NodeKind::PostDec:
        return incDec;
      case NodeKind::Negate:
        return addSub;
      case NodeKind::SubscriptExpr:
        return subscript;
      case NodeKind::VarRef:
        return varRef;
      case NodeKind::IntLiteral:
      case NodeKind::DoubleLiteral:
      case NodeKind::CharLiteral:
      case NodeKind::StringLiteral:
      case NodeKind::BoolLiteral:
        return literal;
      case NodeKind::MemberExpr:
        return memberAccess;
      default:
        return -1.0;
    }
}

double
CostModel::builtinCost(const std::string& name, bool& found) const
{
    static const std::unordered_map<std::string, double> kTable = {
        {"sqrt", 8.0},
        {"abs", 1.0},
        {"fabs", 1.0},
        {"llabs", 1.0},
        {"min", 1.5},
        {"max", 1.5},
        {"swap", 3.0},
        {"__gcd", 30.0},
        {"pow", 20.0},
        {"log", 10.0},
        {"log2", 10.0},
        {"floor", 3.0},
        {"ceil", 3.0},
        {"round", 3.0},
        {"printf", 14.0},
        {"scanf", 14.0},
        {"puts", 8.0},
        {"getline", 16.0},
        {"push_back", 2.5},
        {"emplace_back", 2.5},
        {"pop_back", 1.0},
        {"size", 0.5},
        {"length", 0.5},
        {"begin", 0.5},
        {"end", 0.5},
        {"empty", 0.5},
        {"front", 1.0},
        {"back", 1.0},
        {"clear", 2.0},
        {"resize", 2.0},
        {"reserve", 2.0},
        {"substr", 6.0},
        {"c_str", 0.5},
    };
    auto it = kTable.find(name);
    if (it == kTable.end()) {
        found = false;
        return 0.0;
    }
    found = true;
    return it->second;
}

} // namespace ccsa
