/**
 * @file
 * Per-construct cost constants for the simulated judge. Units are
 * abstract "operation units" converted to milliseconds by each
 * problem's JudgeConfig. The values encode relative costs of real
 * hardware (division and modulo are several times an add; I/O stream
 * operations cost tens of ALU ops; an endl flush is far more
 * expensive than a "\n" write), so that structural choices in the
 * generated code translate into realistic runtime differences.
 */

#ifndef CCSA_JUDGE_COST_MODEL_HH
#define CCSA_JUDGE_COST_MODEL_HH

#include <string>

#include "ast/node_kind.hh"

namespace ccsa
{

/** Cost constants used by the CostInterpreter. */
struct CostModel
{
    // Elementary operations.
    double addSub = 1.0;
    double mulOp = 1.2;
    double divMod = 4.0;
    double compare = 1.0;
    double logical = 0.8;
    double shift = 1.0;
    double assign = 1.0;
    double incDec = 1.0;
    double subscript = 1.5;
    double varRef = 0.4;
    double literal = 0.1;
    double memberAccess = 0.8;

    // Control flow.
    double loopOverhead = 1.5;
    double branchOverhead = 0.8;
    double callOverhead = 6.0;
    double returnCost = 1.0;
    /** Extra overhead per recursive invocation (stack frame churn). */
    double recursionOverhead = 10.0;

    // I/O (dominant constant costs in contest programs).
    double ioRead = 12.0;
    double ioWrite = 10.0;
    double ioFlush = 120.0;

    // Memory.
    double allocPerElement = 0.8;
    double copyPerElement = 1.0;
    double pushBack = 2.5;

    /** Default trip count for loops over opaque containers. */
    double defaultContainerTrips = 8.0;

    /** Per-element cost factor of a std::sort call: f * n log2 n. */
    double sortFactor = 4.0;

    /**
     * @return the cost of evaluating an operator node of this kind
     * (children not included), or -1 if the kind is not a plain
     * operator handled by table lookup.
     */
    double operatorCost(NodeKind kind) const;

    /**
     * Cost of a builtin library call by name (sqrt, __gcd, abs, ...).
     * @param name callee or member name.
     * @param found set to true when the name is a known builtin.
     * @return flat unit cost (container-size-dependent builtins like
     * sort are handled separately by the interpreter).
     */
    double builtinCost(const std::string& name, bool& found) const;
};

} // namespace ccsa

#endif // CCSA_JUDGE_COST_MODEL_HH
