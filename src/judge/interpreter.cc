#include "judge/interpreter.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/str.hh"

namespace ccsa
{

namespace
{

double
log2Clamped(double x)
{
    return std::log2(std::max(x, 2.0));
}

bool
isComparison(NodeKind k)
{
    return k == NodeKind::Less || k == NodeKind::LessEq ||
        k == NodeKind::Greater || k == NodeKind::GreaterEq ||
        k == NodeKind::NotEqual || k == NodeKind::Equal;
}

bool
isCompoundAssign(NodeKind k)
{
    return k == NodeKind::AddAssign || k == NodeKind::SubAssign ||
        k == NodeKind::MulAssign || k == NodeKind::DivAssign ||
        k == NodeKind::ModAssign;
}

bool
isIncDec(NodeKind k)
{
    return k == NodeKind::PreInc || k == NodeKind::PostInc ||
        k == NodeKind::PreDec || k == NodeKind::PostDec;
}

} // namespace

CostInterpreter::CostInterpreter(const Ast& ast, CostModel model)
    : ast_(ast), model_(model)
{
    for (int id : ast_.nodesOfKind(NodeKind::FunctionDef))
        functions_.emplace(ast_.node(id).text, id);
}

double
CostInterpreter::programCost(
    const std::map<std::string, double>& presets) const
{
    auto it = functions_.find("main");
    if (it == functions_.end())
        fatal("CostInterpreter: program has no main()");
    callStack_.clear();
    chargedRecursion_.clear();
    presets_ = presets;
    tripMultiplier_ = 1.0;

    Env env = presets;
    double cost = 0.0;
    // Globals first: they seed constants (const int LIM = ...) and
    // charge static allocation costs.
    for (int child : ast_.node(ast_.root()).children) {
        if (ast_.node(child).kind == NodeKind::DeclStmt)
            cost += stmtCost(child, env);
    }
    callStack_.push_back("main");
    cost += functionBodyCost(it->second, env);
    callStack_.pop_back();
    return std::clamp(cost, 0.0, maxCost);
}

double
CostInterpreter::functionBodyCost(int fn_id, Env& env) const
{
    const AstNode& fn = ast_.node(fn_id);
    if (fn.kind != NodeKind::FunctionDef)
        panic("functionBodyCost: not a FunctionDef");
    for (int child : fn.children) {
        if (ast_.node(child).kind == NodeKind::CompoundStmt)
            return stmtCost(child, env);
    }
    return 0.0; // prototype
}

double
CostInterpreter::stmtCost(int id, Env& env) const
{
    const AstNode& n = ast_.node(id);
    switch (n.kind) {
      case NodeKind::CompoundStmt: {
        double cost = 0.0;
        for (int child : n.children)
            cost += stmtCost(child, env);
        return cost;
      }
      case NodeKind::DeclStmt: {
        double cost = 0.0;
        for (int child : n.children)
            cost += declCost(child, env);
        return cost;
      }
      case NodeKind::ExprStmt:
        return n.children.empty() ? 0.0 : exprCost(n.children[0], env);
      case NodeKind::IfStmt:
        return ifCost(id, env);
      case NodeKind::ForStmt:
        return forCost(id, env);
      case NodeKind::WhileStmt:
        return whileCost(id, env, false);
      case NodeKind::DoWhileStmt:
        return whileCost(id, env, true);
      case NodeKind::ReturnStmt: {
        double cost = model_.returnCost;
        for (int child : n.children)
            cost += exprCost(child, env);
        return cost;
      }
      case NodeKind::BreakStmt:
      case NodeKind::ContinueStmt:
        return 0.3;
      case NodeKind::EmptyStmt:
        return 0.0;
      default:
        return exprCost(id, env);
    }
}

double
CostInterpreter::declCost(int id, Env& env) const
{
    const AstNode& n = ast_.node(id);
    if (n.kind != NodeKind::VarDecl)
        return 0.0;
    const std::string& type = ast_.node(n.parent).text;
    bool is_vector = type.find("vector") != std::string::npos;

    double cost = 0.5 * model_.assign;
    double elems = 1.0;
    bool is_array = false;
    int init = -1;
    for (int child : n.children) {
        const AstNode& c = ast_.node(child);
        if (c.kind == NodeKind::ArrayExtent) {
            is_array = true;
            if (!c.children.empty()) {
                auto dim = evalConst(c.children[0], env);
                elems *= dim.value_or(model_.defaultContainerTrips);
            }
        } else {
            init = child;
        }
    }
    if (is_array) {
        // Static/stack arrays: zero-fill amortised by the loader.
        cost += elems * 0.02;
        env.erase(n.text);
        return cost;
    }
    if (init == -1) {
        env.erase(n.text);
        return cost;
    }
    const AstNode& in = ast_.node(init);
    if (in.kind == NodeKind::InitList) {
        // Constructor-style init: vector<T> v(count, fill).
        double count = 1.0;
        if (!in.children.empty()) {
            auto v = evalConst(in.children[0], env);
            count = v.value_or(fallbackSize(env));
        }
        for (int arg : in.children)
            cost += exprCost(arg, env);
        if (is_vector)
            cost += count * model_.allocPerElement;
        else
            cost += static_cast<double>(in.children.size()) * 0.5;
        env.erase(n.text);
        return cost;
    }
    cost += exprCost(init, env);
    auto v = evalConst(init, env);
    if (v)
        env[n.text] = *v;
    else
        env.erase(n.text);
    return cost;
}

double
CostInterpreter::ifCost(int id, Env& env) const
{
    const AstNode& n = ast_.node(id);
    if (n.children.empty())
        return 0.0;
    double cost = exprCost(n.children[0], env) + model_.branchOverhead;
    Env then_env = env;
    Env else_env = env;
    double then_cost = n.children.size() > 1
        ? stmtCost(n.children[1], then_env) : 0.0;
    double else_cost = n.children.size() > 2
        ? stmtCost(n.children[2], else_env) : 0.0;
    cost += 0.5 * (then_cost + else_cost);
    // Merge: keep only bindings on which both arms agree with the
    // original environment.
    for (auto it = env.begin(); it != env.end();) {
        auto ta = then_env.find(it->first);
        auto ea = else_env.find(it->first);
        bool same = ta != then_env.end() && ea != else_env.end() &&
            ta->second == it->second && ea->second == it->second;
        if (same)
            ++it;
        else
            it = env.erase(it);
    }
    return cost;
}

double
CostInterpreter::forCost(int id, Env& env) const
{
    const AstNode& n = ast_.node(id);
    if (n.children.size() != 4)
        panic("forCost: malformed ForStmt");
    int init = n.children[0];
    int cond = n.children[1];
    int inc = n.children[2];
    int body = n.children[3];

    double cost = stmtCost(init, env);

    // Identify the loop variable from the init clause.
    std::string loop_var;
    const AstNode& in = ast_.node(init);
    if (in.kind == NodeKind::DeclStmt && !in.children.empty()) {
        loop_var = ast_.node(in.children.back()).text;
    } else if (in.kind == NodeKind::ExprStmt && !in.children.empty()) {
        const AstNode& e = ast_.node(in.children[0]);
        if (e.kind == NodeKind::Assign && !e.children.empty() &&
            ast_.node(e.children[0]).kind == NodeKind::VarRef)
            loop_var = ast_.node(e.children[0]).text;
    }

    TripEstimate est;
    est.trips = model_.defaultContainerTrips;
    if (ast_.node(cond).kind != NodeKind::EmptyStmt) {
        auto t = tripsFromComparison(cond, inc, env, loop_var, true);
        if (t)
            est = *t;
    }

    Env body_env = env;
    if (!loop_var.empty()) {
        if (est.midKnown)
            body_env[loop_var] = est.midValue;
        else
            body_env.erase(loop_var);
    }
    double saved_mult = tripMultiplier_;
    tripMultiplier_ *= std::max(est.trips, 1.0);
    double per_iter = model_.loopOverhead;
    if (ast_.node(cond).kind != NodeKind::EmptyStmt)
        per_iter += exprCost(cond, body_env);
    if (ast_.node(inc).kind != NodeKind::EmptyStmt)
        per_iter += exprCost(inc, body_env);
    per_iter += stmtCost(body, body_env);
    tripMultiplier_ = saved_mult;
    cost += est.trips * per_iter;

    // Post-loop environment.
    std::set<std::string> assigned;
    collectAssigned(body, assigned);
    collectAssigned(inc, assigned);
    for (const auto& name : assigned)
        env.erase(name);
    if (!loop_var.empty()) {
        if (est.boundKnown)
            env[loop_var] = est.boundValue;
        else
            env.erase(loop_var);
    }
    return cost;
}

double
CostInterpreter::whileCost(int id, Env& env, bool do_while) const
{
    const AstNode& n = ast_.node(id);
    if (n.children.size() != 2)
        panic("whileCost: malformed loop");
    int cond = do_while ? n.children[1] : n.children[0];
    int body = do_while ? n.children[0] : n.children[1];

    TripEstimate est = whileTrips(cond, body, env);
    double trips = std::max(est.trips, do_while ? 1.0 : 0.0);

    Env body_env = env;
    std::set<std::string> assigned;
    collectAssigned(body, assigned);
    for (const auto& name : assigned)
        body_env.erase(name);

    double saved_mult = tripMultiplier_;
    tripMultiplier_ *= std::max(trips, 1.0);
    double per_iter = exprCost(cond, body_env) +
        stmtCost(body, body_env) + model_.loopOverhead;
    tripMultiplier_ = saved_mult;
    double cost = trips * per_iter;

    for (const auto& name : assigned)
        env.erase(name);
    // The condition variable exits the loop at (about) its bound:
    // covers "while (sz < n) sz *= 2" => sz ~= n, the sqrt counter
    // "while (bs * bs < n) bs++" => bs ~= sqrt(n), and countdown
    // loops => 0.
    if (!est.var.empty() && est.boundKnown)
        env[est.var] = est.boundValue;
    return cost;
}

std::optional<CostInterpreter::TripEstimate>
CostInterpreter::tripsFromComparison(int cond, int inc, const Env& env,
                                     const std::string& loop_var,
                                     bool is_for) const
{
    const AstNode& c = ast_.node(cond);
    if (c.kind == NodeKind::LogicalAnd) {
        // Prefer the conjunct that mentions the loop variable.
        for (int child : c.children) {
            if (!loop_var.empty() && mentionsVar(child, loop_var)) {
                auto t = tripsFromComparison(child, inc, env,
                                             loop_var, is_for);
                if (t)
                    return t;
            }
        }
        for (int child : c.children) {
            auto t = tripsFromComparison(child, inc, env, loop_var,
                                         is_for);
            if (t)
                return t;
        }
        return std::nullopt;
    }
    if (!isComparison(c.kind) || c.children.size() != 2)
        return std::nullopt;

    int var_side = -1;
    int bound_side = -1;
    if (!loop_var.empty()) {
        if (mentionsVar(c.children[0], loop_var)) {
            var_side = c.children[0];
            bound_side = c.children[1];
        } else if (mentionsVar(c.children[1], loop_var)) {
            var_side = c.children[1];
            bound_side = c.children[0];
        }
    }
    if (var_side == -1)
        return std::nullopt;

    auto bound = evalConst(bound_side, env);
    if (!bound)
        return std::nullopt;

    TripEstimate est;
    est.var = loop_var;
    est.boundKnown = true;
    est.boundValue = *bound;

    // sqrt loop: i * i <= bound.
    const AstNode& vs = ast_.node(var_side);
    if (vs.kind == NodeKind::Mul && vs.children.size() == 2 &&
        mentionsVar(vs.children[0], loop_var) &&
        mentionsVar(vs.children[1], loop_var)) {
        double root = std::sqrt(std::max(*bound, 0.0));
        est.trips = std::max(root - 1.0, 0.0);
        est.midValue = root / 2.0;
        est.midKnown = true;
        est.boundValue = root;
        return est;
    }

    double start = 0.0;
    auto sit = env.find(loop_var);
    if (sit != env.end())
        start = sit->second;

    bool var_on_left = (var_side == c.children[0]);
    NodeKind k = c.kind;
    // Normalise to "var OP bound".
    if (!var_on_left) {
        if (k == NodeKind::Less) k = NodeKind::Greater;
        else if (k == NodeKind::Greater) k = NodeKind::Less;
        else if (k == NodeKind::LessEq) k = NodeKind::GreaterEq;
        else if (k == NodeKind::GreaterEq) k = NodeKind::LessEq;
    }

    bool increasing = (k == NodeKind::Less || k == NodeKind::LessEq ||
                       k == NodeKind::NotEqual);
    double span = increasing ? *bound - start : start - *bound;
    if (k == NodeKind::LessEq || k == NodeKind::GreaterEq)
        span += 1.0;
    span = std::max(span, 0.0);

    // Step from the increment clause.
    double step = 1.0;
    bool geometric = false;
    bool geometric_down = false;
    if (is_for && inc >= 0 &&
        ast_.node(inc).kind != NodeKind::EmptyStmt) {
        const AstNode& ic = ast_.node(inc);
        if (isIncDec(ic.kind)) {
            step = 1.0;
        } else if (ic.kind == NodeKind::AddAssign ||
                   ic.kind == NodeKind::SubAssign) {
            if (ic.children.size() == 2) {
                auto sv = evalConst(ic.children[1], env);
                step = std::max(sv.value_or(1.0), 1.0);
            }
        } else if (ic.kind == NodeKind::MulAssign) {
            geometric = true;
        } else if (ic.kind == NodeKind::DivAssign) {
            geometric = true;
            geometric_down = true;
        } else if (ic.kind == NodeKind::Assign &&
                   ic.children.size() == 2) {
            const AstNode& rhs = ast_.node(ic.children[1]);
            if ((rhs.kind == NodeKind::Add ||
                 rhs.kind == NodeKind::Sub) &&
                rhs.children.size() == 2) {
                auto sv = evalConst(rhs.children[1], env);
                step = std::max(sv.value_or(1.0), 1.0);
            }
        }
    }

    if (geometric) {
        est.trips = geometric_down
            ? log2Clamped(std::max(start, 2.0))
            : log2Clamped(std::max(*bound, 2.0) /
                          std::max(start, 1.0));
        est.midKnown = false;
        return est;
    }

    est.trips = span / step;
    est.midValue = increasing ? start + span / 2.0
                              : start - span / 2.0;
    est.midKnown = true;
    return est;
}

CostInterpreter::TripEstimate
CostInterpreter::whileTrips(int cond, int body, const Env& env) const
{
    // Flatten conjunctions: the loop exits at the first failing
    // condition, so the smallest sound estimate wins.
    std::vector<int> conjuncts;
    std::vector<int> stack{cond};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        const AstNode& n = ast_.node(cur);
        if (n.kind == NodeKind::LogicalAnd) {
            for (int child : n.children)
                stack.push_back(child);
        } else {
            conjuncts.push_back(cur);
        }
    }

    TripEstimate best;
    bool have = false;
    bool saw_known_bound = false;
    double known_bound = 0.0;

    for (int conj : conjuncts) {
        const AstNode& n = ast_.node(conj);
        // while (t--) / while (--t) pattern.
        if (isIncDec(n.kind) && !n.children.empty() &&
            ast_.node(n.children[0]).kind == NodeKind::VarRef) {
            auto it = env.find(ast_.node(n.children[0]).text);
            if (it != env.end()) {
                TripEstimate e;
                e.trips = std::max(it->second, 0.0);
                e.var = ast_.node(n.children[0]).text;
                if (!have || e.trips < best.trips) {
                    best = e;
                    have = true;
                }
            }
            continue;
        }
        if (!isComparison(n.kind) || n.children.size() != 2)
            continue;
        // sqrt-counter: while (v * v < bound) v++  =>  sqrt(bound)
        // trips and v ~= sqrt(bound) on exit.
        for (int side = 0; side < 2; ++side) {
            const AstNode& vs = ast_.node(n.children[side]);
            if (vs.kind != NodeKind::Mul || vs.children.size() != 2)
                continue;
            const AstNode& l = ast_.node(vs.children[0]);
            const AstNode& r = ast_.node(vs.children[1]);
            if (l.kind != NodeKind::VarRef ||
                r.kind != NodeKind::VarRef || l.text != r.text)
                continue;
            auto bound = evalConst(n.children[1 - side], env);
            if (!bound || monotonicity(body, l.text) == 0)
                continue;
            TripEstimate e;
            e.var = l.text;
            double root = std::sqrt(std::max(*bound, 1.0));
            // Counters that already start near the root (the common
            // float-truncation fix-up idiom) run a handful of trips,
            // not sqrt(bound).
            double start = 0.0;
            auto sv = env.find(l.text);
            if (sv != env.end())
                start = sv->second;
            e.trips = std::max(root - start, 0.0);
            e.boundKnown = true;
            e.boundValue = root;
            if (!have || e.trips < best.trips) {
                best = e;
                have = true;
            }
        }
        // Identify a plain variable side.
        for (int side = 0; side < 2; ++side) {
            const AstNode& vs = ast_.node(n.children[side]);
            if (vs.kind != NodeKind::VarRef)
                continue;
            const std::string& var = vs.text;
            auto bound = evalConst(n.children[1 - side], env);
            if (bound)
                saw_known_bound = true,
                known_bound = std::max(known_bound, *bound);

            TripEstimate e;
            e.var = var;
            if (hasGeometricUpdate(body, var)) {
                double ref = bound.value_or(0.0);
                auto sv = env.find(var);
                if (sv != env.end())
                    ref = std::max(ref, sv->second);
                if (ref < 2.0)
                    ref = fallbackSize(env);
                e.trips = log2Clamped(ref);
                e.boundKnown = bound.has_value();
                e.boundValue = bound.value_or(0.0);
            } else {
                int mono = monotonicity(body, var);
                if (mono == 0 || !bound)
                    continue;
                double start = 0.0;
                auto sv = env.find(var);
                if (sv != env.end())
                    start = sv->second;
                double span = mono > 0 ? *bound - start
                                       : start - *bound;
                if (n.kind == NodeKind::LessEq ||
                    n.kind == NodeKind::GreaterEq)
                    span += 1.0;
                e.trips = std::max(span, 0.0);
                e.boundKnown = true;
                e.boundValue = *bound;
            }
            if (!have || e.trips < best.trips) {
                best = e;
                have = true;
            }
        }
    }

    if (have)
        return best;

    TripEstimate fallback;
    if (hasHalvingDivision(body)) {
        // Binary-search shape: assignments driven by a midpoint
        // division; logarithmic in the known bound (or in n).
        double ref = saw_known_bound ? known_bound
                                     : fallbackSize(env);
        fallback.trips = log2Clamped(ref);
    } else {
        fallback.trips = model_.defaultContainerTrips;
    }
    return fallback;
}

double
CostInterpreter::exprCost(int id, Env& env) const
{
    const AstNode& n = ast_.node(id);
    switch (n.kind) {
      case NodeKind::IntLiteral:
      case NodeKind::DoubleLiteral:
      case NodeKind::CharLiteral:
      case NodeKind::StringLiteral:
      case NodeKind::BoolLiteral:
        return model_.literal;
      case NodeKind::VarRef:
        return model_.varRef;
      case NodeKind::CallExpr:
        return callCost(id, env);
      case NodeKind::InitList: {
        double cost = 0.0;
        for (int child : n.children)
            cost += exprCost(child, env);
        return cost;
      }
      case NodeKind::CondExpr: {
        if (n.children.size() != 3)
            break;
        return exprCost(n.children[0], env) +
            model_.branchOverhead +
            0.5 * (exprCost(n.children[1], env) +
                   exprCost(n.children[2], env));
      }
      case NodeKind::Assign: {
        if (n.children.size() != 2)
            break;
        double cost = exprCost(n.children[0], env) +
            exprCost(n.children[1], env) + model_.assign;
        const AstNode& lhs = ast_.node(n.children[0]);
        if (lhs.kind == NodeKind::VarRef) {
            auto v = evalConst(n.children[1], env);
            if (v)
                env[lhs.text] = *v;
            else
                env.erase(lhs.text);
        }
        return cost;
      }
      case NodeKind::AddAssign:
      case NodeKind::SubAssign:
      case NodeKind::MulAssign:
      case NodeKind::DivAssign:
      case NodeKind::ModAssign: {
        if (n.children.size() != 2)
            break;
        double cost = exprCost(n.children[0], env) +
            exprCost(n.children[1], env) +
            model_.operatorCost(n.kind);
        const AstNode& lhs = ast_.node(n.children[0]);
        if (lhs.kind == NodeKind::VarRef) {
            auto cur = env.find(lhs.text);
            auto v = evalConst(n.children[1], env);
            if (cur != env.end() && v) {
                switch (n.kind) {
                  case NodeKind::AddAssign:
                    cur->second += *v;
                    break;
                  case NodeKind::SubAssign:
                    cur->second -= *v;
                    break;
                  case NodeKind::MulAssign:
                    cur->second *= *v;
                    break;
                  case NodeKind::DivAssign:
                    if (*v != 0.0)
                        cur->second /= *v;
                    else
                        env.erase(lhs.text);
                    break;
                  default:
                    env.erase(lhs.text);
                }
            } else {
                env.erase(lhs.text);
            }
        }
        return cost;
      }
      case NodeKind::PreInc:
      case NodeKind::PostInc:
      case NodeKind::PreDec:
      case NodeKind::PostDec: {
        double cost = model_.incDec;
        if (!n.children.empty()) {
            cost += exprCost(n.children[0], env);
            const AstNode& c = ast_.node(n.children[0]);
            if (c.kind == NodeKind::VarRef) {
                auto it = env.find(c.text);
                if (it != env.end()) {
                    bool inc = n.kind == NodeKind::PreInc ||
                        n.kind == NodeKind::PostInc;
                    it->second += inc ? 1.0 : -1.0;
                }
            }
        }
        return cost;
      }
      case NodeKind::ShiftRight: {
        if (n.children.size() != 2)
            break;
        double cost = exprCost(n.children[0], env) +
            exprCost(n.children[1], env);
        if (mentionsVar(n.children[0], "cin")) {
            // Stream extraction: reading an input-size variable binds
            // it to its preset; any other target becomes unknown.
            cost += model_.ioRead;
            const AstNode& rhs = ast_.node(n.children[1]);
            if (rhs.kind == NodeKind::VarRef) {
                auto pit = presets_.find(rhs.text);
                if (pit != presets_.end())
                    env[rhs.text] = pit->second;
                else
                    env.erase(rhs.text);
            }
        } else {
            cost += model_.shift;
        }
        return cost;
      }
      case NodeKind::ShiftLeft: {
        if (n.children.size() != 2)
            break;
        double cost = exprCost(n.children[0], env) +
            exprCost(n.children[1], env);
        if (mentionsVar(n.children[0], "cout")) {
            cost += model_.ioWrite;
            const AstNode& rhs = ast_.node(n.children[1]);
            if (rhs.kind == NodeKind::VarRef && rhs.text == "endl")
                cost += model_.ioFlush;
        } else {
            cost += model_.shift;
        }
        return cost;
      }
      default:
        break;
    }
    // Generic operator / remaining expression kinds.
    double cost = 0.0;
    for (int child : n.children)
        cost += exprCost(child, env);
    double op = model_.operatorCost(n.kind);
    cost += op >= 0.0 ? op : 0.5;
    return cost;
}

double
CostInterpreter::sortSize(const std::vector<int>& args,
                          const Env& env) const
{
    for (std::size_t i = args.size(); i-- > 1;) {
        const AstNode& a = ast_.node(args[i]);
        auto v = evalConst(args[i], env);
        if (v)
            return std::max(*v, 1.0);
        if (a.kind == NodeKind::Add && a.children.size() == 2) {
            auto r = evalConst(a.children[1], env);
            if (r)
                return std::max(*r, 1.0);
            auto l = evalConst(a.children[0], env);
            if (l)
                return std::max(*l, 1.0);
        }
    }
    return fallbackSize(env);
}

double
CostInterpreter::callCost(int id, Env& env) const
{
    const AstNode& n = ast_.node(id);
    if (n.children.empty())
        return model_.callOverhead;
    int callee = n.children[0];
    std::vector<int> args(n.children.begin() + 1, n.children.end());

    double cost = 0.0;
    for (int arg : args)
        cost += exprCost(arg, env);

    const AstNode& cal = ast_.node(callee);
    if (cal.kind == NodeKind::MemberExpr) {
        // Container method: cost of the object expression + method.
        for (int child : cal.children)
            cost += exprCost(child, env);
        bool found = false;
        double c = model_.builtinCost(cal.text, found);
        cost += found ? c : model_.callOverhead;
        return cost;
    }
    if (cal.kind != NodeKind::VarRef)
        return cost + model_.callOverhead;

    const std::string& name = cal.text;
    if (name == "sort" || name == "stable_sort") {
        double s = sortSize(args, env);
        return cost + model_.sortFactor * s * log2Clamped(s);
    }
    if (name == "reverse")
        return cost + sortSize(args, env) * 1.0;
    if (name == "lower_bound" || name == "upper_bound" ||
        name == "binary_search")
        return cost + 3.0 * log2Clamped(sortSize(args, env));
    if (name == "memset" || name == "fill")
        return cost + fallbackSize(env) * 0.3;

    bool found = false;
    double builtin = model_.builtinCost(name, found);
    if (found)
        return cost + builtin;

    auto fit = functions_.find(name);
    if (fit == functions_.end())
        return cost + model_.callOverhead;
    int fn_id = fit->second;

    // Bind parameters (Param text is "type|name").
    Env callee_env = env;
    const AstNode& fn = ast_.node(fn_id);
    if (!fn.children.empty() &&
        ast_.node(fn.children[0]).kind == NodeKind::ParamList) {
        const AstNode& plist = ast_.node(fn.children[0]);
        for (std::size_t i = 0; i < plist.children.size(); ++i) {
            const AstNode& p = ast_.node(plist.children[i]);
            auto bar = p.text.find('|');
            std::string ptype = bar == std::string::npos
                ? "" : p.text.substr(0, bar);
            std::string pname = bar == std::string::npos
                ? p.text : p.text.substr(bar + 1);
            if (i < args.size()) {
                auto v = evalConst(args[i], env);
                if (v)
                    callee_env[pname] = *v;
                else
                    callee_env.erase(pname);
            }
            // Pass-by-value containers copy their payload.
            bool by_ref = !ptype.empty() && ptype.back() == '&';
            if (!by_ref) {
                if (ptype.find("vector") != std::string::npos)
                    cost += model_.copyPerElement *
                        fallbackSize(env);
                else if (ptype.find("string") != std::string::npos)
                    cost += 16.0;
            }
        }
    }

    // Recursion.
    bool on_stack = std::find(callStack_.begin(), callStack_.end(),
                              name) != callStack_.end();
    if (on_stack)
        return cost + model_.recursionOverhead;

    bool recursive = false;
    for (int call_site : ast_.nodesOfKind(NodeKind::CallExpr)) {
        // Self-call inside the function body?
        const AstNode& cs = ast_.node(call_site);
        if (cs.children.empty())
            continue;
        const AstNode& cc = ast_.node(cs.children[0]);
        if (cc.kind != NodeKind::VarRef || cc.text != name)
            continue;
        int up = cs.parent;
        while (up != -1 && up != fn_id)
            up = ast_.node(up).parent;
        if (up == fn_id) {
            recursive = true;
            // Halving recursion (gcd-style): any self-call argument
            // built from division / modulo / shifts.
            break;
        }
    }

    if (!recursive) {
        callStack_.push_back(name);
        double body = functionBodyCost(fn_id, callee_env);
        callStack_.pop_back();
        return cost + model_.callOverhead + body;
    }

    // Classify the recursion: argument-shrinking (logarithmic depth,
    // gcd / divide-by-two) vs traversal (visits ~n nodes overall).
    bool halving = false;
    for (int call_site : ast_.nodesOfKind(NodeKind::CallExpr)) {
        const AstNode& cs = ast_.node(call_site);
        if (cs.children.empty())
            continue;
        const AstNode& cc = ast_.node(cs.children[0]);
        if (cc.kind != NodeKind::VarRef || cc.text != name)
            continue;
        int up = cs.parent;
        while (up != -1 && up != fn_id)
            up = ast_.node(up).parent;
        if (up != fn_id)
            continue;
        for (std::size_t a = 1; a < cs.children.size(); ++a) {
            std::vector<int> stack{cs.children[a]};
            while (!stack.empty()) {
                int cur = stack.back();
                stack.pop_back();
                NodeKind k = ast_.node(cur).kind;
                if (k == NodeKind::Div || k == NodeKind::Mod ||
                    k == NodeKind::ShiftRight)
                    halving = true;
                for (int ch : ast_.node(cur).children)
                    stack.push_back(ch);
            }
        }
    }

    callStack_.push_back(name);
    double body = functionBodyCost(fn_id, callee_env);
    callStack_.pop_back();

    if (halving) {
        // Charged at every call: depth is logarithmic and cheap.
        double depth = log2Clamped(fallbackSize(env));
        return cost + depth * (body + model_.recursionOverhead);
    }
    // Traversal recursion: visited/memo semantics make the whole
    // traversal linear; charge the full walk only once per program.
    // Dividing by the enclosing-loop multiplier amortises the charge
    // when the first call site sits inside a loop (the loop's trip
    // multiplication restores exactly one full walk).
    if (chargedRecursion_.count(name))
        return cost + model_.callOverhead + 2.0;
    chargedRecursion_.insert(name);
    double breadth = std::max(fallbackSize(env), 1.0);
    double walk = breadth *
        (body + model_.recursionOverhead + model_.callOverhead);
    return cost + walk / std::max(tripMultiplier_, 1.0);
}

std::optional<double>
CostInterpreter::evalConst(int id, const Env& env) const
{
    const AstNode& n = ast_.node(id);
    switch (n.kind) {
      case NodeKind::IntLiteral:
      case NodeKind::DoubleLiteral:
        try {
            return std::stod(n.text);
        } catch (...) {
            return std::nullopt;
        }
      case NodeKind::CharLiteral:
        return n.text.empty()
            ? std::nullopt
            : std::optional<double>(
                  static_cast<double>(n.text[0]));
      case NodeKind::BoolLiteral:
        return n.text == "true" ? 1.0 : 0.0;
      case NodeKind::VarRef: {
        auto it = env.find(n.text);
        if (it == env.end())
            return std::nullopt;
        return it->second;
      }
      case NodeKind::Negate: {
        auto v = evalConst(n.children[0], env);
        if (!v)
            return std::nullopt;
        return -*v;
      }
      case NodeKind::Add:
      case NodeKind::Sub:
      case NodeKind::Mul:
      case NodeKind::Div:
      case NodeKind::Mod:
      case NodeKind::ShiftLeft:
      case NodeKind::ShiftRight: {
        if (n.children.size() != 2)
            return std::nullopt;
        auto a = evalConst(n.children[0], env);
        auto b = evalConst(n.children[1], env);
        if (!a || !b)
            return std::nullopt;
        switch (n.kind) {
          case NodeKind::Add: return *a + *b;
          case NodeKind::Sub: return *a - *b;
          case NodeKind::Mul: return *a * *b;
          case NodeKind::Div:
            if (*b == 0.0)
                return std::nullopt;
            return std::floor(*a / *b);
          case NodeKind::Mod:
            if (*b == 0.0)
                return std::nullopt;
            return std::fmod(*a, *b);
          case NodeKind::ShiftLeft:
            return *a * std::pow(2.0, *b);
          case NodeKind::ShiftRight:
            return std::floor(*a / std::pow(2.0, *b));
          default: return std::nullopt;
        }
      }
      case NodeKind::CallExpr: {
        if (n.children.empty())
            return std::nullopt;
        const AstNode& cal = ast_.node(n.children[0]);
        if (cal.kind != NodeKind::VarRef)
            return std::nullopt;
        std::vector<double> vals;
        for (std::size_t i = 1; i < n.children.size(); ++i) {
            auto v = evalConst(n.children[i], env);
            if (!v)
                return std::nullopt;
            vals.push_back(*v);
        }
        if (cal.text == "sqrt" && vals.size() == 1)
            return std::sqrt(std::max(vals[0], 0.0));
        if (cal.text == "abs" || cal.text == "fabs" ||
            cal.text == "llabs") {
            if (vals.size() == 1)
                return std::fabs(vals[0]);
        }
        if (cal.text == "min" && vals.size() == 2)
            return std::min(vals[0], vals[1]);
        if (cal.text == "max" && vals.size() == 2)
            return std::max(vals[0], vals[1]);
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
}

bool
CostInterpreter::mentionsVar(int id, const std::string& name) const
{
    std::vector<int> stack{id};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        const AstNode& n = ast_.node(cur);
        if (n.kind == NodeKind::VarRef && n.text == name)
            return true;
        for (int child : n.children)
            stack.push_back(child);
    }
    return false;
}

void
CostInterpreter::collectAssigned(int id, std::set<std::string>& out)
    const
{
    std::vector<int> stack{id};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        const AstNode& n = ast_.node(cur);
        bool writes = n.kind == NodeKind::Assign ||
            isCompoundAssign(n.kind) || isIncDec(n.kind);
        if (writes && !n.children.empty()) {
            const AstNode& lhs = ast_.node(n.children[0]);
            if (lhs.kind == NodeKind::VarRef)
                out.insert(lhs.text);
        }
        if (n.kind == NodeKind::VarDecl)
            out.insert(n.text);
        // cin >> v also writes v.
        if (n.kind == NodeKind::ShiftRight &&
            n.children.size() == 2 &&
            mentionsVar(n.children[0], "cin")) {
            const AstNode& rhs = ast_.node(n.children[1]);
            if (rhs.kind == NodeKind::VarRef)
                out.insert(rhs.text);
        }
        for (int child : n.children)
            stack.push_back(child);
    }
}

int
CostInterpreter::monotonicity(int body, const std::string& var) const
{
    int incs = 0, decs = 0, others = 0;
    std::vector<int> stack{body};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        const AstNode& n = ast_.node(cur);
        if (!n.children.empty()) {
            const AstNode& lhs = ast_.node(n.children[0]);
            bool targets = lhs.kind == NodeKind::VarRef &&
                lhs.text == var;
            if (targets) {
                if (n.kind == NodeKind::PreInc ||
                    n.kind == NodeKind::PostInc ||
                    n.kind == NodeKind::AddAssign)
                    ++incs;
                else if (n.kind == NodeKind::PreDec ||
                         n.kind == NodeKind::PostDec ||
                         n.kind == NodeKind::SubAssign)
                    ++decs;
                else if (n.kind == NodeKind::Assign ||
                         isCompoundAssign(n.kind))
                    ++others;
            }
        }
        for (int child : n.children)
            stack.push_back(child);
    }
    if (others > 0 || (incs > 0 && decs > 0))
        return 0;
    if (incs > 0)
        return 1;
    if (decs > 0)
        return -1;
    return 0;
}

bool
CostInterpreter::hasGeometricUpdate(int body, const std::string& var)
    const
{
    std::vector<int> stack{body};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        const AstNode& n = ast_.node(cur);
        if ((n.kind == NodeKind::MulAssign ||
             n.kind == NodeKind::DivAssign) &&
            !n.children.empty()) {
            const AstNode& lhs = ast_.node(n.children[0]);
            if (lhs.kind == NodeKind::VarRef && lhs.text == var)
                return true;
        }
        if (n.kind == NodeKind::Assign && n.children.size() == 2) {
            const AstNode& lhs = ast_.node(n.children[0]);
            const AstNode& rhs = ast_.node(n.children[1]);
            if (lhs.kind == NodeKind::VarRef && lhs.text == var &&
                (rhs.kind == NodeKind::Div ||
                 rhs.kind == NodeKind::Mul ||
                 rhs.kind == NodeKind::ShiftRight) &&
                mentionsVar(n.children[1], var))
                return true;
        }
        for (int child : n.children)
            stack.push_back(child);
    }
    return false;
}

bool
CostInterpreter::hasHalvingDivision(int id) const
{
    std::vector<int> stack{id};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        const AstNode& n = ast_.node(cur);
        if (n.kind == NodeKind::Div && n.children.size() == 2) {
            const AstNode& d = ast_.node(n.children[1]);
            if (d.kind == NodeKind::IntLiteral && d.text == "2")
                return true;
        }
        for (int child : n.children)
            stack.push_back(child);
    }
    return false;
}

double
CostInterpreter::fallbackSize(const Env& env) const
{
    auto it = env.find("n");
    if (it != env.end() && it->second > 0.0)
        return it->second;
    return 64.0;
}

} // namespace ccsa
