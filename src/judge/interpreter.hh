/**
 * @file
 * Abstract cost interpreter: the analysis engine of the simulated
 * judge. It walks a MiniCxx AST and estimates the number of abstract
 * operation units the program executes for a given input size, by
 *
 *  - propagating constants through declarations and assignments
 *    (seeded with the input-size variables n/m/q/t/x),
 *  - estimating loop trip counts symbolically: counting loops from
 *    (start, bound, step), sqrt loops from i*i<=x conditions,
 *    logarithmic loops from halving/doubling updates, and a fixed
 *    average-degree default for opaque container iteration,
 *  - charging per-construct costs from the CostModel (I/O, division,
 *    sorting, allocation, function calls, ...),
 *  - handling user functions including recursion: a recursive callee
 *    is charged breadth x body once per program (visited/memo
 *    semantics), with breadth = n for traversal-style recursion and
 *    log2(n) for argument-halving recursion.
 *
 * The result is a deterministic map from code structure to work,
 * which is exactly the property the paper's comparative formulation
 * relies on ("factors that impact applications outside of code
 * structure get nullified", SI).
 */

#ifndef CCSA_JUDGE_INTERPRETER_HH
#define CCSA_JUDGE_INTERPRETER_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.hh"
#include "judge/cost_model.hh"

namespace ccsa
{

/** Estimates abstract execution cost of a MiniCxx program. */
class CostInterpreter
{
  public:
    /**
     * @param ast a full translation unit (must define main()).
     * @param model cost constants.
     */
    explicit CostInterpreter(const Ast& ast, CostModel model = {});

    /**
     * Interpret the program.
     * @param presets initial variable bindings (input sizes).
     * @return estimated cost in abstract units (clamped to maxCost).
     */
    double programCost(const std::map<std::string, double>& presets)
        const;

    /** Upper clamp applied to the returned cost. */
    static constexpr double maxCost = 1e15;

  private:
    using Env = std::map<std::string, double>;

    double stmtCost(int id, Env& env) const;
    double exprCost(int id, Env& env) const;
    double declCost(int id, Env& env) const;
    double forCost(int id, Env& env) const;
    double whileCost(int id, Env& env, bool do_while) const;
    double ifCost(int id, Env& env) const;
    double callCost(int id, Env& env) const;
    double functionBodyCost(int fn_id, Env& env) const;

    /** Constant-fold an expression under the environment. */
    std::optional<double> evalConst(int id, const Env& env) const;

    /** Estimate the element count passed to a sort-like call. */
    double sortSize(const std::vector<int>& args, const Env& env) const;

    /** @return true if the subtree contains a VarRef to name. */
    bool mentionsVar(int id, const std::string& name) const;

    /** Collect names of variables assigned anywhere in a subtree. */
    void collectAssigned(int id, std::set<std::string>& out) const;

    /** -1 = only decremented, +1 = only incremented, 0 = mixed/none. */
    int monotonicity(int body, const std::string& var) const;

    /** @return true if the body halves/doubles var (log-style loop). */
    bool hasGeometricUpdate(int body, const std::string& var) const;

    /** @return true if the subtree has a division by literal 2. */
    bool hasHalvingDivision(int id) const;

    struct TripEstimate
    {
        double trips = 0.0;
        std::string var;
        double midValue = 0.0;
        bool midKnown = false;
        double boundValue = 0.0;
        bool boundKnown = false;
    };

    /** Trip estimate for a comparison-style condition. */
    std::optional<TripEstimate>
    tripsFromComparison(int cond, int body_or_inc, const Env& env,
                        const std::string& loop_var, bool is_for) const;

    /** Trip estimate for a while condition (handles &&). */
    TripEstimate whileTrips(int cond, int body, const Env& env) const;

    double fallbackSize(const Env& env) const;

    const Ast& ast_;
    CostModel model_;
    std::map<std::string, int> functions_;
    /** Input-size presets of the current interpretation. */
    mutable Env presets_;
    /**
     * Product of the trip counts of all enclosing loops while a loop
     * body is being interpreted. Traversal-style recursion charges
     * its full walk divided by this multiplier, so that the loop
     * multiplication re-amortises it back to one walk per program
     * (visited/memo semantics).
     */
    mutable double tripMultiplier_ = 1.0;
    mutable std::vector<std::string> callStack_;
    /** Recursive functions already charged their full traversal. */
    mutable std::set<std::string> chargedRecursion_;
};

} // namespace ccsa

#endif // CCSA_JUDGE_INTERPRETER_HH
