#include "judge/judge.hh"

#include <cmath>

#include "base/logging.hh"

namespace ccsa
{

std::vector<double>
JudgeConfig::ladder(double max_size, int tests)
{
    if (tests < 1 || max_size < 1.0)
        fatal("JudgeConfig::ladder: invalid parameters");
    std::vector<double> sizes;
    double lo = std::max(max_size / 16.0, 1.0);
    for (int i = 0; i < tests; ++i) {
        double f = tests == 1
            ? 1.0 : static_cast<double>(i) / (tests - 1);
        sizes.push_back(lo * std::pow(max_size / lo, f));
    }
    return sizes;
}

SimulatedJudge::SimulatedJudge(JudgeConfig cfg, CostModel model)
    : cfg_(std::move(cfg)), model_(model)
{
    if (cfg_.testSizes.empty())
        fatal("SimulatedJudge: no test cases configured");
}

std::map<std::string, double>
SimulatedJudge::presetsFor(double size) const
{
    std::map<std::string, double> env;
    for (const auto& [name, factor] : cfg_.sizeVars)
        env[name] = std::max(factor * size, 1.0);
    for (const auto& [name, value] : cfg_.absoluteVars)
        env[name] = value;
    return env;
}

double
SimulatedJudge::run(const Ast& ast, Rng& rng) const
{
    CostInterpreter interp(ast, model_);
    double total = 0.0;
    for (double size : cfg_.testSizes) {
        double units = interp.programCost(presetsFor(size));
        double ms = units * cfg_.msPerMegaUnit * 1e-6;
        if (cfg_.noiseSigma > 0.0)
            ms *= rng.logNormal(0.0, cfg_.noiseSigma);
        total += ms;
    }
    double mean = total / static_cast<double>(cfg_.testSizes.size());
    double base = cfg_.baseMs;
    if (cfg_.noiseSigma > 0.0)
        base *= rng.logNormal(0.0, cfg_.noiseSigma);
    return mean + base;
}

double
SimulatedJudge::staticCost(const Ast& ast, double size) const
{
    CostInterpreter interp(ast, model_);
    return interp.programCost(presetsFor(size));
}

double
SimulatedJudge::deterministicMs(const Ast& ast) const
{
    CostInterpreter interp(ast, model_);
    double total = 0.0;
    for (double size : cfg_.testSizes)
        total += interp.programCost(presetsFor(size)) *
            cfg_.msPerMegaUnit * 1e-6;
    return total / static_cast<double>(cfg_.testSizes.size()) +
        cfg_.baseMs;
}

} // namespace ccsa
