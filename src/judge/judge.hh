/**
 * @file
 * The simulated online judge: substitutes Codeforces' measurement
 * infrastructure (paper §II-A). A program is "executed" on several
 * test cases of varying input size by the CostInterpreter; each test
 * contributes cost x time-scale x log-normal measurement noise, and
 * the reported runtime is the mean over tests plus a fixed startup
 * cost — matching the paper's averaging of per-test runtimes.
 */

#ifndef CCSA_JUDGE_JUDGE_HH
#define CCSA_JUDGE_JUDGE_HH

#include <map>
#include <string>
#include <vector>

#include "ast/ast.hh"
#include "base/rng.hh"
#include "judge/interpreter.hh"

namespace ccsa
{

/** Calibration of one problem's judging environment. */
struct JudgeConfig
{
    /** Per-test input sizes (5-13 tests, like Codeforces). */
    std::vector<double> testSizes;
    /**
     * Multipliers applied to the test size to preset size variables:
     * env[name] = factor * size. Defaults cover n/m/q/t.
     */
    std::map<std::string, double> sizeVars = {
        {"n", 1.0}, {"m", 1.0}, {"q", 1.0}, {"t", 1.0}};
    /** Absolute presets independent of test size (e.g. magnitude x). */
    std::map<std::string, double> absoluteVars;
    /** Milliseconds per million abstract cost units. */
    double msPerMegaUnit = 4.0;
    /** Fixed process startup / teardown cost in ms. */
    double baseMs = 1.5;
    /** Log-normal measurement noise sigma (0 disables noise). */
    double noiseSigma = 0.08;

    /**
     * Build a test ladder: sizes geometrically spread in
     * [max_size/16, max_size].
     */
    static std::vector<double> ladder(double max_size, int tests);
};

/** Judges MiniCxx programs: structure in, milliseconds out. */
class SimulatedJudge
{
  public:
    explicit SimulatedJudge(JudgeConfig cfg, CostModel model = {});

    /**
     * Run the program over all test cases.
     * @param ast full translation unit (needs main()).
     * @param rng noise source.
     * @return mean runtime in milliseconds.
     */
    double run(const Ast& ast, Rng& rng) const;

    /** Noise-free cost (units) at one input size. */
    double staticCost(const Ast& ast, double size) const;

    /** Noise-free runtime in ms (mean over the test ladder). */
    double deterministicMs(const Ast& ast) const;

    const JudgeConfig& config() const { return cfg_; }

  private:
    std::map<std::string, double> presetsFor(double size) const;

    JudgeConfig cfg_;
    CostModel model_;
};

} // namespace ccsa

#endif // CCSA_JUDGE_JUDGE_HH
