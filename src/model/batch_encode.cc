#include "model/batch_encode.hh"

#include "base/logging.hh"

namespace ccsa
{

std::unordered_map<int, ag::Var>
encodeDistinct(const ComparativePredictor& model,
               const std::vector<Submission>& submissions,
               const std::vector<CodePair>& pairs, std::size_t begin,
               std::size_t end)
{
    if (end > pairs.size())
        panic("encodeDistinct: range past the end of pairs");
    // Collect distinct submissions in first-appearance order, then
    // encode them all in ONE forest-batched wavefront: every level of
    // every distinct tree joins the same batched matmuls.
    std::unordered_map<int, ag::Var> encoded;
    std::vector<int> distinct;
    for (std::size_t p = begin; p < end; ++p) {
        for (int idx : {pairs[p].first, pairs[p].second}) {
            if (encoded.emplace(idx, ag::Var()).second)
                distinct.push_back(idx);
        }
    }
    std::vector<const Ast*> asts;
    asts.reserve(distinct.size());
    for (int idx : distinct)
        asts.push_back(&submissions[idx].ast);
    std::vector<ag::Var> vars = model.encodeMany(asts);
    for (std::size_t i = 0; i < distinct.size(); ++i)
        encoded[distinct[i]] = vars[i];
    return encoded;
}

} // namespace ccsa
