#include "model/batch_encode.hh"

#include "base/logging.hh"

namespace ccsa
{

std::unordered_map<int, ag::Var>
encodeDistinct(const ComparativePredictor& model,
               const std::vector<Submission>& submissions,
               const std::vector<CodePair>& pairs, std::size_t begin,
               std::size_t end)
{
    if (end > pairs.size())
        panic("encodeDistinct: range past the end of pairs");
    std::unordered_map<int, ag::Var> encoded;
    for (std::size_t p = begin; p < end; ++p) {
        for (int idx : {pairs[p].first, pairs[p].second}) {
            if (!encoded.count(idx))
                encoded.emplace(idx,
                                model.encode(submissions[idx].ast));
        }
    }
    return encoded;
}

} // namespace ccsa
