/**
 * @file
 * The shared encode-once path: a batch of pairs references far fewer
 * distinct submissions than 2x its size, so each distinct tree is
 * encoded exactly once and its Var fans out across every pair that
 * uses it. The Trainer relies on this for the differentiable path
 * (the autograd tape accumulates gradients through every reuse); the
 * serving Engine applies the same dedup idea one level up, with a
 * persistent content-hash cache over gradient-free latents.
 */

#ifndef CCSA_MODEL_BATCH_ENCODE_HH
#define CCSA_MODEL_BATCH_ENCODE_HH

#include <unordered_map>

#include "dataset/pairs.hh"
#include "model/predictor.hh"

namespace ccsa
{

/**
 * Encode every distinct submission referenced by pairs[begin, end)
 * exactly once.
 * @return map from submission index to its encoding Var.
 */
std::unordered_map<int, ag::Var> encodeDistinct(
    const ComparativePredictor& model,
    const std::vector<Submission>& submissions,
    const std::vector<CodePair>& pairs, std::size_t begin,
    std::size_t end);

} // namespace ccsa

#endif // CCSA_MODEL_BATCH_ENCODE_HH
