/**
 * @file
 * Configuration types for the comparative predictor: encoder family
 * and sizes (paper §V: tree-LSTM with 100 hidden units and lambda=120
 * embeddings; we default to laptop-scale 48/32 — every experiment
 * honours CCSA_SCALE to grow them) and the training loop knobs.
 */

#ifndef CCSA_MODEL_CONFIG_HH
#define CCSA_MODEL_CONFIG_HH

#include <cstdint>

#include "nn/tree_lstm.hh"

namespace ccsa
{

/** Which deep representation learner encodes the AST (paper §V-B). */
enum class EncoderKind
{
    TreeLstm, ///< proposed approach (§III-B)
    Gcn,      ///< graph-convolution baseline
    TokenLstm,///< sequential-LSTM related-work baseline (§VIII)
};

/** @return printable encoder name. */
const char* encoderKindName(EncoderKind kind);

/** Encoder hyper-parameters. */
struct EncoderConfig
{
    EncoderKind kind = EncoderKind::TreeLstm;
    /** Node-embedding dimension lambda. */
    int embedDim = 32;
    /** Hidden state size per direction / GCN width. */
    int hiddenDim = 48;
    /** Stacked layer count. */
    int layers = 1;
    /** Multi-layer wiring (tree-LSTM only). */
    nn::TreeArch arch = nn::TreeArch::Uni;

    bool
    operator==(const EncoderConfig& other) const
    {
        return kind == other.kind && embedDim == other.embedDim &&
            hiddenDim == other.hiddenDim && layers == other.layers &&
            arch == other.arch;
    }

    bool
    operator!=(const EncoderConfig& other) const
    {
        return !(*this == other);
    }
};

/** Training-loop hyper-parameters. */
struct TrainConfig
{
    int epochs = 6;
    float learningRate = 3e-3f;
    int batchPairs = 32;
    float gradClip = 5.0f;
    std::uint64_t seed = 1;
    /** Emit one inform() line per epoch. */
    bool verbose = false;
};

} // namespace ccsa

#endif // CCSA_MODEL_CONFIG_HH
