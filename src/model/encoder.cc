#include "model/encoder.hh"

#include "base/logging.hh"
#include "graph/adjacency.hh"

namespace ccsa
{

const char*
encoderKindName(EncoderKind kind)
{
    switch (kind) {
      case EncoderKind::TreeLstm: return "tree-LSTM";
      case EncoderKind::Gcn: return "GCN";
      case EncoderKind::TokenLstm: return "token-LSTM";
    }
    return "unknown";
}

TreeLstmEncoder::TreeLstmEncoder(const EncoderConfig& cfg, Rng& rng)
    : embed_(kNumNodeKinds, cfg.embedDim, rng),
      lstm_(cfg.embedDim, cfg.hiddenDim, cfg.layers, cfg.arch, rng)
{
}

std::vector<ag::Var>
TreeLstmEncoder::encodeNodes(const Ast& ast) const
{
    nn::TreeSpec spec = nn::TreeSpec::fromParents(ast.parents());
    std::vector<int> kinds = ast.kindIds();
    std::vector<ag::Var> inputs;
    inputs.reserve(kinds.size());
    for (int k : kinds)
        inputs.push_back(embed_.forward({k}));
    return lstm_.encodeNodes(spec, inputs);
}

ag::Var
TreeLstmEncoder::encode(const Ast& ast) const
{
    nn::TreeSpec spec = nn::TreeSpec::fromParents(ast.parents());
    std::vector<int> kinds = ast.kindIds();
    std::vector<ag::Var> inputs;
    inputs.reserve(kinds.size());
    for (int k : kinds)
        inputs.push_back(embed_.forward({k}));
    return lstm_.encodeRoot(spec, inputs);
}

std::vector<nn::Parameter*>
TreeLstmEncoder::parameters()
{
    std::vector<nn::Parameter*> out = embed_.parameters();
    auto ps = lstm_.parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

GcnEncoder::GcnEncoder(const EncoderConfig& cfg, Rng& rng)
    : embed_(kNumNodeKinds, cfg.embedDim, rng),
      gcn_(cfg.embedDim, cfg.hiddenDim, cfg.layers, rng)
{
}

ag::Var
GcnEncoder::encode(const Ast& ast) const
{
    auto adj = buildNormalizedAdjacency(ast);
    ag::Var x = embed_.forward(ast.kindIds());
    return gcn_.readout(adj, x);
}

std::vector<nn::Parameter*>
GcnEncoder::parameters()
{
    std::vector<nn::Parameter*> out = embed_.parameters();
    auto ps = gcn_.parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

TokenLstmEncoder::TokenLstmEncoder(const EncoderConfig& cfg, Rng& rng)
    : embed_(kNumNodeKinds, cfg.embedDim, rng),
      cell_(cfg.embedDim, cfg.hiddenDim, rng, "tokenlstm")
{
}

ag::Var
TokenLstmEncoder::encode(const Ast& ast) const
{
    std::vector<ag::Var> xs;
    xs.reserve(static_cast<std::size_t>(ast.size()));
    ast.visitPreorder([&](int id) {
        xs.push_back(embed_.forward({kindId(ast.node(id).kind)}));
    });
    return cell_.runSequence(xs).h;
}

std::vector<nn::Parameter*>
TokenLstmEncoder::parameters()
{
    std::vector<nn::Parameter*> out = embed_.parameters();
    auto ps = cell_.parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

std::unique_ptr<CodeEncoder>
makeEncoder(const EncoderConfig& cfg, Rng& rng)
{
    switch (cfg.kind) {
      case EncoderKind::TreeLstm:
        return std::make_unique<TreeLstmEncoder>(cfg, rng);
      case EncoderKind::Gcn:
        return std::make_unique<GcnEncoder>(cfg, rng);
      case EncoderKind::TokenLstm:
        return std::make_unique<TokenLstmEncoder>(cfg, rng);
    }
    panic("makeEncoder: invalid encoder kind");
}

} // namespace ccsa
