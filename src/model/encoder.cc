#include "model/encoder.hh"

#include "base/logging.hh"
#include "graph/adjacency.hh"

namespace ccsa
{

const char*
encoderKindName(EncoderKind kind)
{
    switch (kind) {
      case EncoderKind::TreeLstm: return "tree-LSTM";
      case EncoderKind::Gcn: return "GCN";
      case EncoderKind::TokenLstm: return "token-LSTM";
    }
    return "unknown";
}

std::vector<ag::Var>
CodeEncoder::encodeMany(const std::vector<const Ast*>& asts) const
{
    std::vector<ag::Var> out;
    out.reserve(asts.size());
    for (const Ast* ast : asts) {
        if (ast == nullptr)
            panic("CodeEncoder::encodeMany: null AST");
        out.push_back(encode(*ast));
    }
    return out;
}

TreeLstmEncoder::TreeLstmEncoder(const EncoderConfig& cfg, Rng& rng)
    : embed_(kNumNodeKinds, cfg.embedDim, rng),
      lstm_(cfg.embedDim, cfg.hiddenDim, cfg.layers, cfg.arch, rng)
{
}

std::vector<ag::Var>
TreeLstmEncoder::encodeNodes(const Ast& ast) const
{
    nn::TreeSpec spec = nn::TreeSpec::fromParents(ast.parents());
    // One embedding gather for the whole tree, then the level-batched
    // wavefront path.
    ag::Var x = embed_.forward(ast.kindIds());
    return lstm_.encodeForest({&spec}, x)[0];
}

ag::Var
TreeLstmEncoder::encode(const Ast& ast) const
{
    nn::TreeSpec spec = nn::TreeSpec::fromParents(ast.parents());
    ag::Var x = embed_.forward(ast.kindIds());
    return lstm_.encodeForestRoots({&spec}, x)[0];
}

std::vector<ag::Var>
TreeLstmEncoder::encodeMany(const std::vector<const Ast*>& asts) const
{
    if (asts.empty())
        return {};
    std::vector<nn::TreeSpec> specs;
    specs.reserve(asts.size());
    std::vector<int> kinds;
    for (const Ast* ast : asts) {
        if (ast == nullptr)
            panic("TreeLstmEncoder::encodeMany: null AST");
        specs.push_back(nn::TreeSpec::fromParents(ast->parents()));
        std::vector<int> k = ast->kindIds();
        kinds.insert(kinds.end(), k.begin(), k.end());
    }
    std::vector<const nn::TreeSpec*> spec_ptrs;
    spec_ptrs.reserve(specs.size());
    for (const nn::TreeSpec& s : specs)
        spec_ptrs.push_back(&s);

    // The entire forest shares one embedding gather and one
    // level-batched wavefront: every request batch's distinct trees
    // feed the same large matmuls.
    ag::Var x = embed_.forward(kinds);
    return lstm_.encodeForestRoots(spec_ptrs, x);
}

std::vector<nn::Parameter*>
TreeLstmEncoder::parameters()
{
    std::vector<nn::Parameter*> out = embed_.parameters();
    auto ps = lstm_.parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

GcnEncoder::GcnEncoder(const EncoderConfig& cfg, Rng& rng)
    : embed_(kNumNodeKinds, cfg.embedDim, rng),
      gcn_(cfg.embedDim, cfg.hiddenDim, cfg.layers, rng)
{
}

ag::Var
GcnEncoder::encode(const Ast& ast) const
{
    auto adj = buildNormalizedAdjacency(ast);
    ag::Var x = embed_.forward(ast.kindIds());
    return gcn_.readout(adj, x);
}

std::vector<nn::Parameter*>
GcnEncoder::parameters()
{
    std::vector<nn::Parameter*> out = embed_.parameters();
    auto ps = gcn_.parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

TokenLstmEncoder::TokenLstmEncoder(const EncoderConfig& cfg, Rng& rng)
    : embed_(kNumNodeKinds, cfg.embedDim, rng),
      cell_(cfg.embedDim, cfg.hiddenDim, rng, "tokenlstm")
{
}

ag::Var
TokenLstmEncoder::encode(const Ast& ast) const
{
    std::vector<ag::Var> xs;
    xs.reserve(static_cast<std::size_t>(ast.size()));
    ast.visitPreorder([&](int id) {
        xs.push_back(embed_.forward({kindId(ast.node(id).kind)}));
    });
    return cell_.runSequence(xs).h;
}

std::vector<nn::Parameter*>
TokenLstmEncoder::parameters()
{
    std::vector<nn::Parameter*> out = embed_.parameters();
    auto ps = cell_.parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

std::unique_ptr<CodeEncoder>
makeEncoder(const EncoderConfig& cfg, Rng& rng)
{
    switch (cfg.kind) {
      case EncoderKind::TreeLstm:
        return std::make_unique<TreeLstmEncoder>(cfg, rng);
      case EncoderKind::Gcn:
        return std::make_unique<GcnEncoder>(cfg, rng);
      case EncoderKind::TokenLstm:
        return std::make_unique<TokenLstmEncoder>(cfg, rng);
    }
    panic("makeEncoder: invalid encoder kind");
}

} // namespace ccsa
