/**
 * @file
 * Code encoders: deep representation learners mapping an AST to a
 * fixed-size latent vector z (paper §III-A, F : P -> Z). Three
 * implementations: the proposed tree-LSTM, the GCN baseline the paper
 * compares against, and a sequential token-LSTM representing the
 * related-work approach of flattening code order.
 */

#ifndef CCSA_MODEL_ENCODER_HH
#define CCSA_MODEL_ENCODER_HH

#include <memory>

#include "ast/ast.hh"
#include "model/config.hh"
#include "nn/embedding.hh"
#include "nn/gcn.hh"
#include "nn/lstm.hh"
#include "nn/tree_lstm.hh"

namespace ccsa
{

/** Maps ASTs to latent vectors; owns the node-embedding table. */
class CodeEncoder : public nn::Module
{
  public:
    /** Encode a pruned AST into a (1 x outputDim) latent vector. */
    virtual ag::Var encode(const Ast& ast) const = 0;

    /**
     * Encode a batch of ASTs (non-null, borrowed) into one latent
     * vector each, in input order. The default loops encode();
     * structure-batched encoders override it to share work across
     * the whole batch. Results per tree are identical to encode().
     */
    virtual std::vector<ag::Var>
    encodeMany(const std::vector<const Ast*>& asts) const;

    /** @return dimensionality d of the latent space. */
    virtual int outputDim() const = 0;

    /** @return the node-kind embedding table (Fig. 7a analysis). */
    virtual const nn::Embedding& embedding() const = 0;
};

/** Tree-LSTM encoder: root hidden state is the code representation. */
class TreeLstmEncoder : public CodeEncoder
{
  public:
    TreeLstmEncoder(const EncoderConfig& cfg, Rng& rng);

    ag::Var encode(const Ast& ast) const override;

    /**
     * Forest-batched override: all trees share one embedding gather
     * and one level-batched wavefront through the tree-LSTM stack.
     */
    std::vector<ag::Var>
    encodeMany(const std::vector<const Ast*>& asts) const override;

    int outputDim() const override { return lstm_.outputDim(); }
    const nn::Embedding& embedding() const override { return embed_; }
    std::vector<nn::Parameter*> parameters() override;

    /** Per-node hidden states (Fig. 7 / diagnostics). */
    std::vector<ag::Var> encodeNodes(const Ast& ast) const;

  private:
    nn::Embedding embed_;
    nn::TreeLstm lstm_;
};

/** GCN encoder with mean-pool readout (paper §V-B baseline). */
class GcnEncoder : public CodeEncoder
{
  public:
    GcnEncoder(const EncoderConfig& cfg, Rng& rng);

    ag::Var encode(const Ast& ast) const override;
    int outputDim() const override { return gcn_.outputDim(); }
    const nn::Embedding& embedding() const override { return embed_; }
    std::vector<nn::Parameter*> parameters() override;

  private:
    nn::Embedding embed_;
    nn::GcnStack gcn_;
};

/**
 * Sequential LSTM over the preorder kind sequence: the related-work
 * style baseline (Cummins et al.) that discards tree structure.
 */
class TokenLstmEncoder : public CodeEncoder
{
  public:
    TokenLstmEncoder(const EncoderConfig& cfg, Rng& rng);

    ag::Var encode(const Ast& ast) const override;
    int outputDim() const override { return cell_.hiddenDim(); }
    const nn::Embedding& embedding() const override { return embed_; }
    std::vector<nn::Parameter*> parameters() override;

  private:
    nn::Embedding embed_;
    nn::LstmCell cell_;
};

/** Factory over EncoderConfig::kind. */
std::unique_ptr<CodeEncoder> makeEncoder(const EncoderConfig& cfg,
                                         Rng& rng);

} // namespace ccsa

#endif // CCSA_MODEL_ENCODER_HH
