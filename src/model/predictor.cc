#include "model/predictor.hh"

namespace ccsa
{

ComparativeClassifier::ComparativeClassifier(int latent_dim, Rng& rng)
    : linear_(2 * latent_dim, 1, rng, "classifier")
{
}

ag::Var
ComparativeClassifier::logit(const ag::Var& z_first,
                             const ag::Var& z_second) const
{
    return linear_.forward(ag::concatColsOp(z_first, z_second));
}

ComparativePredictor::ComparativePredictor(const EncoderConfig& cfg,
                                           std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    encoder_ = makeEncoder(cfg_, rng_);
    classifier_ = std::make_unique<ComparativeClassifier>(
        encoder_->outputDim(), rng_);
}

ag::Var
ComparativePredictor::encode(const Ast& ast) const
{
    return encoder_->encode(ast);
}

std::vector<ag::Var>
ComparativePredictor::encodeMany(
    const std::vector<const Ast*>& asts) const
{
    return encoder_->encodeMany(asts);
}

ag::Var
ComparativePredictor::logitFromEncodings(const ag::Var& z_first,
                                         const ag::Var& z_second) const
{
    return classifier_->logit(z_first, z_second);
}

Status
ComparativePredictor::save(const std::string& path)
{
    return save(path, "model", 1);
}

Status
ComparativePredictor::save(const std::string& path,
                           const std::string& name,
                           std::uint64_t version)
{
    try {
        nn::saveParameters(path, parameters(),
                           manifestFor(cfg_, name, version));
    } catch (const FatalError& e) {
        return Status::ioError(e.what());
    }
    return Status::ok();
}

Status
ComparativePredictor::load(const std::string& path)
{
    try {
        std::optional<nn::CheckpointManifest> manifest =
            nn::readCheckpointManifest(path);
        // A self-describing checkpoint must actually describe THIS
        // model: a config mismatch that happens to share parameter
        // shapes (e.g. a different encoder kind) would otherwise
        // load garbage weights silently.
        if (manifest && configFromManifest(*manifest) != cfg_)
            return Status::ioError(
                "load: checkpoint config does not match the model "
                "(saved from '" + manifest->modelName + "')");
        nn::loadParameters(path, parameters());
    } catch (const FatalError& e) {
        return Status::ioError(e.what());
    }
    return Status::ok();
}

Result<std::shared_ptr<ComparativePredictor>>
ComparativePredictor::fromCheckpoint(const std::string& path)
{
    std::optional<nn::CheckpointManifest> manifest;
    try {
        manifest = nn::readCheckpointManifest(path);
    } catch (const FatalError& e) {
        return Status::ioError(e.what());
    }
    if (!manifest)
        return Status::invalidArgument(
            "fromCheckpoint: " + path +
            " is a v1 checkpoint with no embedded config; build the "
            "model from its EncoderConfig and load() instead");
    // A corrupt (or future-format) manifest must come back as a
    // Status, not escape construction as a thrown enum/dimension
    // error — load() promises a serving process survives bad files.
    if (manifest->encoderKind < 0 || manifest->encoderKind > 2 ||
        manifest->arch < 0 || manifest->arch > 2 ||
        manifest->embedDim < 1 || manifest->hiddenDim < 1 ||
        manifest->layers < 1)
        return Status::ioError(
            "fromCheckpoint: corrupt manifest in " + path);
    try {
        auto model = std::make_shared<ComparativePredictor>(
            configFromManifest(*manifest), /*seed=*/1);
        Status loaded = model->load(path);
        if (!loaded.isOk())
            return loaded;
        return model;
    } catch (const std::exception& e) {
        return Status::ioError(
            std::string("fromCheckpoint: ") + e.what());
    }
}

nn::CheckpointManifest
ComparativePredictor::manifestFor(const EncoderConfig& cfg,
                                  const std::string& name,
                                  std::uint64_t version)
{
    nn::CheckpointManifest m;
    m.modelName = name;
    m.version = version;
    m.encoderKind = static_cast<std::int32_t>(cfg.kind);
    m.embedDim = cfg.embedDim;
    m.hiddenDim = cfg.hiddenDim;
    m.layers = cfg.layers;
    m.arch = static_cast<std::int32_t>(cfg.arch);
    return m;
}

EncoderConfig
ComparativePredictor::configFromManifest(
    const nn::CheckpointManifest& manifest)
{
    EncoderConfig cfg;
    cfg.kind = static_cast<EncoderKind>(manifest.encoderKind);
    cfg.embedDim = manifest.embedDim;
    cfg.hiddenDim = manifest.hiddenDim;
    cfg.layers = manifest.layers;
    cfg.arch = static_cast<nn::TreeArch>(manifest.arch);
    return cfg;
}

std::vector<nn::Parameter*>
ComparativePredictor::parameters()
{
    std::vector<nn::Parameter*> out = encoder_->parameters();
    auto ps = classifier_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

} // namespace ccsa
