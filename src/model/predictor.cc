#include "model/predictor.hh"

#include <cmath>

#include "frontend/parser.hh"
#include "nn/serialize.hh"

namespace ccsa
{

ComparativeClassifier::ComparativeClassifier(int latent_dim, Rng& rng)
    : linear_(2 * latent_dim, 1, rng, "classifier")
{
}

ag::Var
ComparativeClassifier::logit(const ag::Var& z_first,
                             const ag::Var& z_second) const
{
    return linear_.forward(ag::concatColsOp(z_first, z_second));
}

ComparativePredictor::ComparativePredictor(const EncoderConfig& cfg,
                                           std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    encoder_ = makeEncoder(cfg_, rng_);
    classifier_ = std::make_unique<ComparativeClassifier>(
        encoder_->outputDim(), rng_);
}

ag::Var
ComparativePredictor::encode(const Ast& ast) const
{
    return encoder_->encode(ast);
}

std::vector<ag::Var>
ComparativePredictor::encodeMany(
    const std::vector<const Ast*>& asts) const
{
    return encoder_->encodeMany(asts);
}

ag::Var
ComparativePredictor::logitFromEncodings(const ag::Var& z_first,
                                         const ag::Var& z_second) const
{
    return classifier_->logit(z_first, z_second);
}

double
ComparativePredictor::probFirstSlower(const Ast& first,
                                      const Ast& second) const
{
    ag::Var z = logitFromEncodings(encode(first), encode(second));
    return 1.0 / (1.0 + std::exp(-z.value().at(0, 0)));
}

double
ComparativePredictor::probFirstSlowerSource(
    const std::string& first, const std::string& second) const
{
    return probFirstSlower(parseAndPrune(first), parseAndPrune(second));
}

int
ComparativePredictor::predictLabel(const Ast& first,
                                   const Ast& second) const
{
    return probFirstSlower(first, second) >= 0.5 ? 1 : 0;
}

Status
ComparativePredictor::save(const std::string& path)
{
    try {
        nn::saveParameters(path, parameters());
    } catch (const FatalError& e) {
        return Status::ioError(e.what());
    }
    return Status::ok();
}

Status
ComparativePredictor::load(const std::string& path)
{
    try {
        nn::loadParameters(path, parameters());
    } catch (const FatalError& e) {
        return Status::ioError(e.what());
    }
    return Status::ok();
}

std::vector<nn::Parameter*>
ComparativePredictor::parameters()
{
    std::vector<nn::Parameter*> out = encoder_->parameters();
    auto ps = classifier_->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

} // namespace ccsa
