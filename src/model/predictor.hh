/**
 * @file
 * The paper's end product: a comparative performance predictor. Two
 * ASTs are encoded to latent vectors, concatenated, and classified by
 * a single sigmoid layer (§IV-D: the classifier has 2*d inputs).
 * Output semantics follow Eq. (1): the predicted probability is the
 * likelihood that the FIRST program is slower-or-equal, i.e. that the
 * second program is the better version.
 */

#ifndef CCSA_MODEL_PREDICTOR_HH
#define CCSA_MODEL_PREDICTOR_HH

#include <memory>
#include <string>

#include "base/result.hh"
#include "model/encoder.hh"
#include "nn/linear.hh"
#include "nn/serialize.hh"

namespace ccsa
{

/** Tree-pair classifier: concat(z_i, z_j) -> sigmoid logit. */
class ComparativeClassifier : public nn::Module
{
  public:
    /** @param latent_dim d = encoder output size. */
    ComparativeClassifier(int latent_dim, Rng& rng);

    /** @return raw logit (1x1) for the concatenated pair. */
    ag::Var logit(const ag::Var& z_first,
                  const ag::Var& z_second) const;

    std::vector<nn::Parameter*> parameters() override
    {
        return linear_.parameters();
    }

  private:
    nn::Linear linear_;
};

/** Encoder + classifier; the deployable unit. */
class ComparativePredictor : public nn::Module
{
  public:
    ComparativePredictor(const EncoderConfig& cfg, std::uint64_t seed);

    /** Encode one pruned AST. */
    ag::Var encode(const Ast& ast) const;

    /**
     * Encode a batch of ASTs in one shot. With the tree-LSTM
     * encoder the whole batch is forest-batched through shared
     * level-wise matmuls; per-tree results are identical to
     * encode(). The Trainer and the serving Engine both funnel
     * their distinct-tree batches through this.
     */
    std::vector<ag::Var>
    encodeMany(const std::vector<const Ast*>& asts) const;

    /** Differentiable pair logit from precomputed encodings. */
    ag::Var logitFromEncodings(const ag::Var& z_first,
                               const ag::Var& z_second) const;

    /**
     * Persist / restore all weights. I/O and format problems come
     * back as an error Status (the legacy behaviour of throwing
     * FatalError is gone: a serving process must be able to survive
     * a bad model path).
     *
     * save() writes a self-describing v2 checkpoint: the manifest
     * embeds this model's EncoderConfig plus a model name and a
     * monotonically increasing version id (ModelRegistry::save
     * supplies real ones; the single-arg overload stamps
     * "model" / 1). load() accepts v1 and v2 files; when a manifest
     * is present its embedded config must match this model's.
     */
    Status save(const std::string& path);
    Status save(const std::string& path, const std::string& name,
                std::uint64_t version);
    Status load(const std::string& path);

    /**
     * Reconstruct a predictor from a self-describing v2 checkpoint:
     * the architecture comes from the embedded manifest, the weights
     * from the payload. A v1 file (no manifest) is an
     * InvalidArgument — the caller must build the model from a known
     * EncoderConfig and load() into it instead.
     */
    static Result<std::shared_ptr<ComparativePredictor>>
    fromCheckpoint(const std::string& path);

    /** Manifest encoder words for this model's config (v2 save). */
    static nn::CheckpointManifest
    manifestFor(const EncoderConfig& cfg, const std::string& name,
                std::uint64_t version);

    /** Decode a manifest's encoder words back into a config. */
    static EncoderConfig
    configFromManifest(const nn::CheckpointManifest& manifest);

    const EncoderConfig& config() const { return cfg_; }
    CodeEncoder& encoder() { return *encoder_; }
    const CodeEncoder& encoder() const { return *encoder_; }

    std::vector<nn::Parameter*> parameters() override;

  private:
    EncoderConfig cfg_;
    Rng rng_;
    std::unique_ptr<CodeEncoder> encoder_;
    std::unique_ptr<ComparativeClassifier> classifier_;
};

} // namespace ccsa

#endif // CCSA_MODEL_PREDICTOR_HH
