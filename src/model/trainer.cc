#include "model/trainer.hh"

#include "base/logging.hh"
#include "model/batch_encode.hh"
#include "nn/optim.hh"

namespace ccsa
{

Trainer::Trainer(ComparativePredictor& model, TrainConfig cfg)
    : model_(model), cfg_(cfg)
{
    if (cfg_.epochs < 1 || cfg_.batchPairs < 1)
        fatal("Trainer: epochs and batchPairs must be positive");
}

TrainStats
Trainer::fit(const std::vector<Submission>& submissions,
             const std::vector<CodePair>& pairs)
{
    if (pairs.empty())
        fatal("Trainer::fit: no training pairs");

    nn::Adam optim(model_.parameters(), cfg_.learningRate);
    Rng rng(cfg_.seed, 0xBEEF);
    std::vector<CodePair> order = pairs;

    TrainStats stats;
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_sum = 0.0;
        double correct = 0.0;
        std::size_t batches = 0;

        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg_.batchPairs)) {
            std::size_t end = std::min(
                order.size(),
                start + static_cast<std::size_t>(cfg_.batchPairs));

            // Encode each distinct submission once; reuse the Var.
            auto encoded = encodeDistinct(model_, submissions, order,
                                          start, end);

            std::vector<ag::Var> losses;
            losses.reserve(end - start);
            for (std::size_t p = start; p < end; ++p) {
                const CodePair& pair = order[p];
                ag::Var logit = model_.logitFromEncodings(
                    encoded.at(pair.first), encoded.at(pair.second));
                Tensor target(1, 1, pair.label);
                losses.push_back(ag::bceWithLogits(logit, target));
                bool predicted =
                    logit.value().at(0, 0) >= 0.0f;
                if (predicted == (pair.label >= 0.5f))
                    correct += 1.0;
            }
            ag::Var batch_loss = ag::scale(
                ag::addN(losses),
                1.0f / static_cast<float>(losses.size()));

            optim.zeroGrad();
            ag::backward(batch_loss);
            if (cfg_.gradClip > 0.0f)
                optim.clipGradNorm(cfg_.gradClip);
            optim.step();

            loss_sum += batch_loss.value().at(0, 0);
            ++batches;
        }

        stats.epochLoss.push_back(loss_sum /
                                  static_cast<double>(batches));
        stats.epochAccuracy.push_back(
            correct / static_cast<double>(order.size()));
        if (cfg_.verbose) {
            inform("epoch " + std::to_string(epoch + 1) + "/" +
                   std::to_string(cfg_.epochs) + ": loss=" +
                   std::to_string(stats.epochLoss.back()) +
                   " train-acc=" +
                   std::to_string(stats.epochAccuracy.back()));
        }
    }
    return stats;
}

} // namespace ccsa
