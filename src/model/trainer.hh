/**
 * @file
 * Mini-batch trainer for the comparative predictor: Adam on binary
 * cross-entropy over code pairs (paper §IV-D). A batch of pairs
 * references far fewer distinct submissions than 2x its size, so the
 * trainer encodes each distinct tree once per batch and fans the
 * resulting Var out across all pairs that use it — the autograd tape
 * accumulates gradients through every use.
 */

#ifndef CCSA_MODEL_TRAINER_HH
#define CCSA_MODEL_TRAINER_HH

#include "dataset/pairs.hh"
#include "model/predictor.hh"

namespace ccsa
{

/** Per-epoch training telemetry. */
struct TrainStats
{
    std::vector<double> epochLoss;
    std::vector<double> epochAccuracy;

    double finalLoss() const
    {
        return epochLoss.empty() ? 0.0 : epochLoss.back();
    }

    double finalAccuracy() const
    {
        return epochAccuracy.empty() ? 0.0 : epochAccuracy.back();
    }
};

/** Fits a ComparativePredictor on labelled pairs. */
class Trainer
{
  public:
    Trainer(ComparativePredictor& model, TrainConfig cfg);

    /**
     * Run the configured number of epochs.
     * @param submissions corpus backing the pair indices.
     * @param pairs training pairs.
     * @return loss / accuracy per epoch.
     */
    TrainStats fit(const std::vector<Submission>& submissions,
                   const std::vector<CodePair>& pairs);

  private:
    ComparativePredictor& model_;
    TrainConfig cfg_;
};

} // namespace ccsa

#endif // CCSA_MODEL_TRAINER_HH
