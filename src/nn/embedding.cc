#include "nn/embedding.hh"

#include "nn/init.hh"

namespace ccsa
{
namespace nn
{

Embedding::Embedding(int num_ids, int dim, Rng& rng)
    : numIds_(num_ids), dim_(dim),
      weight_("embedding.weight", uniformInit(num_ids, dim, 0.1f, rng))
{
    if (num_ids <= 0 || dim <= 0)
        fatal("Embedding: dimensions must be positive");
}

ag::Var
Embedding::forward(const std::vector<int>& ids) const
{
    return ag::gatherRows(weight_.var, ids);
}

} // namespace nn
} // namespace ccsa
