/**
 * @file
 * Embedding lookup table (paper §IV-B). Each AST node kind receives a
 * learned dense vector of dimension lambda; rows are tuned by
 * backpropagation starting from random initialisation, exactly as the
 * paper describes (pre-trained embeddings are future work there too).
 */

#ifndef CCSA_NN_EMBEDDING_HH
#define CCSA_NN_EMBEDDING_HH

#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Trainable lookup table mapping integer ids to dense rows. */
class Embedding : public Module
{
  public:
    /**
     * @param num_ids vocabulary size (distinct node kinds).
     * @param dim embedding dimension lambda.
     * @param rng initialisation source.
     */
    Embedding(int num_ids, int dim, Rng& rng);

    /** Look up a batch of ids -> (N x dim) differentiable output. */
    ag::Var forward(const std::vector<int>& ids) const;

    int dim() const { return dim_; }
    int numIds() const { return numIds_; }

    std::vector<Parameter*> parameters() override { return {&weight_}; }

    /** Direct access to the table (visualisation / tests). */
    const Tensor& table() const { return weight_.var.value(); }

  private:
    int numIds_;
    int dim_;
    Parameter weight_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_EMBEDDING_HH
