#include "nn/gcn.hh"

namespace ccsa
{
namespace nn
{

GcnLayer::GcnLayer(int in, int out, Rng& rng,
                   const std::string& name_prefix)
    : linear_(in, out, rng, name_prefix)
{
    // Small positive bias keeps ReLU units alive at initialisation;
    // with zero bias a deep stack can die entirely (zero readout and
    // zero gradient everywhere).
    linear_.parameters()[1]->var.mutableValue().fill(0.05f);
}

ag::Var
GcnLayer::forward(const std::shared_ptr<const CsrMatrix>& adj,
                  const ag::Var& h) const
{
    return ag::relu(linear_.forward(ag::spmm(adj, h)));
}

GcnStack::GcnStack(int input_dim, int hidden_dim, int num_layers,
                   Rng& rng)
    : hiddenDim_(hidden_dim)
{
    if (num_layers < 1)
        fatal("GcnStack: need at least one layer");
    int in = input_dim;
    for (int l = 0; l < num_layers; ++l) {
        layers_.push_back(std::make_unique<GcnLayer>(
            in, hidden_dim, rng, "gcn.l" + std::to_string(l)));
        in = hidden_dim;
    }
}

ag::Var
GcnStack::forwardNodes(const std::shared_ptr<const CsrMatrix>& adj,
                       const ag::Var& x) const
{
    ag::Var h = x;
    for (const auto& layer : layers_)
        h = layer->forward(adj, h);
    return h;
}

ag::Var
GcnStack::readout(const std::shared_ptr<const CsrMatrix>& adj,
                  const ag::Var& x) const
{
    return ag::meanRowsOp(forwardNodes(adj, x));
}

std::vector<Parameter*>
GcnStack::parameters()
{
    std::vector<Parameter*> out;
    for (auto& layer : layers_) {
        auto ps = layer->parameters();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
}

} // namespace nn
} // namespace ccsa
