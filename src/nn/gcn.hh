/**
 * @file
 * Graph Convolutional Network baseline (paper §V-B; Kipf & Welling
 * 2016). A stack of graph convolutions H' = relu(A_hat H W + b) over a
 * degree-normalised adjacency A_hat, followed by a mean-pool readout
 * producing the code representation. The paper contrasts this generic
 * neighbourhood aggregation against the tree-LSTM's explicit
 * parent-child information flow.
 */

#ifndef CCSA_NN_GCN_HH
#define CCSA_NN_GCN_HH

#include <memory>

#include "nn/linear.hh"
#include "nn/module.hh"
#include "tensor/sparse.hh"

namespace ccsa
{
namespace nn
{

/** One graph convolution layer with ReLU activation. */
class GcnLayer : public Module
{
  public:
    GcnLayer(int in, int out, Rng& rng,
             const std::string& name_prefix = "gcn");

    /**
     * @param adj normalised adjacency (N x N), constant.
     * @param h node features (N x in).
     * @return activated node features (N x out).
     */
    ag::Var forward(const std::shared_ptr<const CsrMatrix>& adj,
                    const ag::Var& h) const;

    std::vector<Parameter*> parameters() override
    {
        return linear_.parameters();
    }

  private:
    Linear linear_;
};

/** Stacked GCN with mean-pool readout over node states. */
class GcnStack : public Module
{
  public:
    /**
     * @param input_dim node feature size (lambda).
     * @param hidden_dim width of every convolution layer.
     * @param num_layers convolution depth (>= 1).
     */
    GcnStack(int input_dim, int hidden_dim, int num_layers, Rng& rng);

    /** Per-node representations after the full stack. */
    ag::Var forwardNodes(const std::shared_ptr<const CsrMatrix>& adj,
                         const ag::Var& x) const;

    /** Whole-graph representation: mean over node states (1 x hidden). */
    ag::Var readout(const std::shared_ptr<const CsrMatrix>& adj,
                    const ag::Var& x) const;

    int outputDim() const { return hiddenDim_; }
    int numLayers() const { return static_cast<int>(layers_.size()); }

    std::vector<Parameter*> parameters() override;

  private:
    int hiddenDim_;
    std::vector<std::unique_ptr<GcnLayer>> layers_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_GCN_HH
