#include "nn/init.hh"

#include <cmath>

namespace ccsa
{
namespace nn
{

Tensor
xavierUniform(int fan_in, int fan_out, Rng& rng)
{
    float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    Tensor t(fan_in, fan_out);
    t.fillUniform(rng, -bound, bound);
    return t;
}

Tensor
uniformInit(int rows, int cols, float bound, Rng& rng)
{
    Tensor t(rows, cols);
    t.fillUniform(rng, -bound, bound);
    return t;
}

} // namespace nn
} // namespace ccsa
