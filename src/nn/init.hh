/**
 * @file
 * Weight initialisation schemes.
 */

#ifndef CCSA_NN_INIT_HH
#define CCSA_NN_INIT_HH

#include "base/rng.hh"
#include "tensor/tensor.hh"

namespace ccsa
{
namespace nn
{

/** Xavier/Glorot uniform initialisation for a fan_in x fan_out matrix. */
Tensor xavierUniform(int fan_in, int fan_out, Rng& rng);

/** Uniform initialisation in [-bound, bound]. */
Tensor uniformInit(int rows, int cols, float bound, Rng& rng);

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_INIT_HH
