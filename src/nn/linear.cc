#include "nn/linear.hh"

#include "nn/init.hh"

namespace ccsa
{
namespace nn
{

Linear::Linear(int in, int out, Rng& rng, const std::string& name_prefix)
    : in_(in), out_(out),
      weight_(name_prefix + ".weight", xavierUniform(in, out, rng)),
      bias_(name_prefix + ".bias", Tensor::zeros(1, out))
{
    if (in <= 0 || out <= 0)
        fatal("Linear: dimensions must be positive");
}

ag::Var
Linear::forward(const ag::Var& x) const
{
    return ag::addRowBroadcast(ag::matmul(x, weight_.var), bias_.var);
}

} // namespace nn
} // namespace ccsa
