/**
 * @file
 * Fully connected layer: y = x W + b.
 */

#ifndef CCSA_NN_LINEAR_HH
#define CCSA_NN_LINEAR_HH

#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Affine transform with Xavier-initialised weights. */
class Linear : public Module
{
  public:
    /**
     * @param in input feature count.
     * @param out output feature count.
     * @param name_prefix parameter name prefix for serialisation.
     */
    Linear(int in, int out, Rng& rng,
           const std::string& name_prefix = "linear");

    /** Forward: (N x in) -> (N x out). */
    ag::Var forward(const ag::Var& x) const;

    int inDim() const { return in_; }
    int outDim() const { return out_; }

    std::vector<Parameter*>
    parameters() override
    {
        return {&weight_, &bias_};
    }

  private:
    int in_;
    int out_;
    Parameter weight_;
    Parameter bias_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_LINEAR_HH
