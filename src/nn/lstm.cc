#include "nn/lstm.hh"

#include "nn/init.hh"

namespace ccsa
{
namespace nn
{

LstmCell::LstmCell(int input_dim, int hidden_dim, Rng& rng,
                   const std::string& name_prefix)
    : inputDim_(input_dim), hiddenDim_(hidden_dim),
      wi_(name_prefix + ".wi", xavierUniform(input_dim, hidden_dim, rng)),
      ui_(name_prefix + ".ui", xavierUniform(hidden_dim, hidden_dim, rng)),
      bi_(name_prefix + ".bi", Tensor::zeros(1, hidden_dim)),
      wf_(name_prefix + ".wf", xavierUniform(input_dim, hidden_dim, rng)),
      uf_(name_prefix + ".uf", xavierUniform(hidden_dim, hidden_dim, rng)),
      bf_(name_prefix + ".bf", Tensor::ones(1, hidden_dim)),
      wo_(name_prefix + ".wo", xavierUniform(input_dim, hidden_dim, rng)),
      uo_(name_prefix + ".uo", xavierUniform(hidden_dim, hidden_dim, rng)),
      bo_(name_prefix + ".bo", Tensor::zeros(1, hidden_dim)),
      wu_(name_prefix + ".wu", xavierUniform(input_dim, hidden_dim, rng)),
      uu_(name_prefix + ".uu", xavierUniform(hidden_dim, hidden_dim, rng)),
      bu_(name_prefix + ".bu", Tensor::zeros(1, hidden_dim))
{
    if (input_dim <= 0 || hidden_dim <= 0)
        fatal("LstmCell: dimensions must be positive");
    // Forget-gate bias starts at one, the standard trick to let long
    // dependencies survive early training.
}

LstmState
LstmCell::step(const ag::Var& x, const LstmState& prev) const
{
    using namespace ag;
    Var i = sigmoid(addRowBroadcast(
        add(matmul(x, wi_.var), matmul(prev.h, ui_.var)), bi_.var));
    Var f = sigmoid(addRowBroadcast(
        add(matmul(x, wf_.var), matmul(prev.h, uf_.var)), bf_.var));
    Var o = sigmoid(addRowBroadcast(
        add(matmul(x, wo_.var), matmul(prev.h, uo_.var)), bo_.var));
    Var u = tanhOp(addRowBroadcast(
        add(matmul(x, wu_.var), matmul(prev.h, uu_.var)), bu_.var));
    Var c = add(mul(i, u), mul(f, prev.c));
    Var h = mul(o, tanhOp(c));
    return {h, c};
}

LstmState
LstmCell::runSequence(const std::vector<ag::Var>& xs) const
{
    LstmState state = zeroState();
    for (const auto& x : xs)
        state = step(x, state);
    return state;
}

LstmState
LstmCell::zeroState() const
{
    return {ag::constant(Tensor::zeros(1, hiddenDim_)),
            ag::constant(Tensor::zeros(1, hiddenDim_))};
}

std::vector<Parameter*>
LstmCell::parameters()
{
    return {&wi_, &ui_, &bi_, &wf_, &uf_, &bf_,
            &wo_, &uo_, &bo_, &wu_, &uu_, &bu_};
}

} // namespace nn
} // namespace ccsa
