/**
 * @file
 * Sequential LSTM cell implementing Eq. (3) of the paper. Used by the
 * token-sequence baseline encoder (related-work style, Cummins et al.)
 * and as the reference for the tree-LSTM unit tests.
 */

#ifndef CCSA_NN_LSTM_HH
#define CCSA_NN_LSTM_HH

#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Hidden and cell state pair. */
struct LstmState
{
    ag::Var h;
    ag::Var c;
};

/**
 * Standard LSTM cell with input/forget/output gates and candidate
 * update (Eq. 3):
 *   i = sig(W_i x + U_i h + b_i)     f = sig(W_f x + U_f h + b_f)
 *   o = sig(W_o x + U_o h + b_o)     u = tanh(W_u x + U_u h + b_u)
 *   c' = i .* u + f .* c             h' = o .* tanh(c')
 *
 * Note: the paper's Eq. (3) prints sigma for the candidate u as well;
 * we follow the canonical formulation (Tai et al. 2015, the paper's
 * reference [34]) and use tanh.
 */
class LstmCell : public Module
{
  public:
    LstmCell(int input_dim, int hidden_dim, Rng& rng,
             const std::string& name_prefix = "lstm");

    /** One step: x is 1 x input_dim; state holds 1 x hidden_dim h/c. */
    LstmState step(const ag::Var& x, const LstmState& prev) const;

    /** Run a whole sequence from the zero state; @return final state. */
    LstmState runSequence(const std::vector<ag::Var>& xs) const;

    /** @return a zero initial state. */
    LstmState zeroState() const;

    int inputDim() const { return inputDim_; }
    int hiddenDim() const { return hiddenDim_; }

    std::vector<Parameter*> parameters() override;

  private:
    friend class ChildSumTreeLstmCell;

    int inputDim_;
    int hiddenDim_;
    // One W (input), U (recurrent), b per gate: i, f, o, u.
    Parameter wi_, ui_, bi_;
    Parameter wf_, uf_, bf_;
    Parameter wo_, uo_, bo_;
    Parameter wu_, uu_, bu_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_LSTM_HH
