/**
 * @file
 * Base class for trainable neural-network modules plus the named
 * Parameter wrapper used by optimizers and (de)serialisation.
 */

#ifndef CCSA_NN_MODULE_HH
#define CCSA_NN_MODULE_HH

#include <string>
#include <vector>

#include "tensor/autograd.hh"

namespace ccsa
{
namespace nn
{

/** A named trainable leaf of the autograd tape. */
struct Parameter
{
    std::string name;
    ag::Var var;

    Parameter() = default;

    Parameter(std::string n, Tensor t)
        : name(std::move(n)), var(ag::leaf(std::move(t)))
    {}
};

/** Base class for anything that owns Parameters. */
class Module
{
  public:
    virtual ~Module() = default;

    /** @return pointers to every trainable parameter (recursively). */
    virtual std::vector<Parameter*> parameters() = 0;

    /** Zero every parameter gradient. */
    void
    zeroGrad()
    {
        for (Parameter* p : parameters())
            p->var.zeroGrad();
    }

    /** @return total scalar count across all parameters. */
    std::size_t
    parameterCount()
    {
        std::size_t n = 0;
        for (Parameter* p : parameters())
            n += p->var.value().size();
        return n;
    }
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_MODULE_HH
