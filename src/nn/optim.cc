#include "nn/optim.hh"

#include <cmath>

namespace ccsa
{
namespace nn
{

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params))
{
    if (params_.empty())
        fatal("Optimizer: no parameters");
}

void
Optimizer::zeroGrad()
{
    for (Parameter* p : params_)
        p->var.zeroGrad();
}

void
Optimizer::clipGradNorm(float max_norm)
{
    float total = 0.0f;
    for (Parameter* p : params_)
        total += p->var.grad().normSq();
    float norm = std::sqrt(total);
    if (norm <= max_norm || norm == 0.0f)
        return;
    float scale = max_norm / norm;
    for (Parameter* p : params_)
        p->var.grad() *= scale;
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    velocity_.reserve(params_.size());
    for (Parameter* p : params_)
        velocity_.emplace_back(p->var.value().rows(),
                               p->var.value().cols());
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& w = params_[i]->var.mutableValue();
        const Tensor& g = params_[i]->var.grad();
        if (momentum_ != 0.0f) {
            velocity_[i] *= momentum_;
            velocity_[i] += g;
            w -= velocity_[i] * lr_;
        } else {
            w -= g * lr_;
        }
    }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1),
      beta2_(beta2), eps_(eps)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter* p : params_) {
        m_.emplace_back(p->var.value().rows(), p->var.value().cols());
        v_.emplace_back(p->var.value().rows(), p->var.value().cols());
    }
}

void
Adam::step()
{
    ++t_;
    float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& w = params_[i]->var.mutableValue();
        const Tensor& g = params_[i]->var.grad();
        Tensor& m = m_[i];
        Tensor& v = v_[i];
        for (int r = 0; r < w.rows(); ++r) {
            for (int c = 0; c < w.cols(); ++c) {
                float gi = g.at(r, c);
                m.at(r, c) = beta1_ * m.at(r, c) + (1 - beta1_) * gi;
                v.at(r, c) = beta2_ * v.at(r, c) +
                    (1 - beta2_) * gi * gi;
                float mhat = m.at(r, c) / bc1;
                float vhat = v.at(r, c) / bc2;
                w.at(r, c) -= lr_ * mhat /
                    (std::sqrt(vhat) + eps_);
            }
        }
    }
}

} // namespace nn
} // namespace ccsa
