/**
 * @file
 * First-order optimizers over Module parameters: plain SGD with
 * momentum and Adam (the paper's training setup uses standard
 * stochastic optimisation on binary cross-entropy).
 */

#ifndef CCSA_NN_OPTIM_HH
#define CCSA_NN_OPTIM_HH

#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Common optimizer interface. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Parameter*> params);
    virtual ~Optimizer() = default;

    /** Apply one update using the accumulated gradients. */
    virtual void step() = 0;

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Clip gradient global norm to max_norm (no-op if under). */
    void clipGradNorm(float max_norm);

  protected:
    std::vector<Parameter*> params_;
};

/** Stochastic gradient descent with optional momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Parameter*> params, float lr,
        float momentum = 0.0f);

    void step() override;

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba, 2015). */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Parameter*> params, float lr = 1e-3f,
         float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

    void step() override;

  private:
    float lr_, beta1_, beta2_, eps_;
    long t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_OPTIM_HH
