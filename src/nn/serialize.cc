#include "nn/serialize.hh"

#include <fstream>
#include <map>

namespace ccsa
{
namespace nn
{

namespace
{

const char kMagic[4] = {'C', 'C', 'S', 'A'};
const std::uint32_t kVersionLegacy = 1;
const std::uint32_t kVersionManifest = 2;

template <typename T>
void
writeRaw(std::ofstream& f, const T& v)
{
    f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void
readRaw(std::ifstream& f, T& v)
{
    f.read(reinterpret_cast<char*>(&v), sizeof(T));
}

void
writeString(std::ofstream& f, const std::string& s)
{
    writeRaw(f, static_cast<std::uint32_t>(s.size()));
    f.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::ifstream& f, const std::string& path)
{
    // Names are short; a length beyond this is file corruption, and
    // honouring it would allocate gigabytes (std::bad_alloc escapes
    // the FatalError-only recovery in the Status-returning loaders).
    constexpr std::uint32_t kMaxStringLen = 1u << 20;
    std::uint32_t len = 0;
    readRaw(f, len);
    if (!f || len > kMaxStringLen)
        fatal("loadParameters: corrupt string length in ", path);
    std::string s(len, '\0');
    f.read(s.data(), len);
    if (!f)
        fatal("loadParameters: truncated file ", path);
    return s;
}

void
writeManifest(std::ofstream& f, const CheckpointManifest& m)
{
    writeString(f, m.modelName);
    writeRaw(f, m.version);
    writeRaw(f, m.encoderKind);
    writeRaw(f, m.embedDim);
    writeRaw(f, m.hiddenDim);
    writeRaw(f, m.layers);
    writeRaw(f, m.arch);
}

CheckpointManifest
readManifest(std::ifstream& f, const std::string& path)
{
    CheckpointManifest m;
    m.modelName = readString(f, path);
    readRaw(f, m.version);
    readRaw(f, m.encoderKind);
    readRaw(f, m.embedDim);
    readRaw(f, m.hiddenDim);
    readRaw(f, m.layers);
    readRaw(f, m.arch);
    if (!f)
        fatal("loadParameters: truncated manifest in ", path);
    return m;
}

void
writeParams(std::ofstream& f, const std::vector<Parameter*>& params)
{
    writeRaw(f, static_cast<std::uint32_t>(params.size()));
    for (const Parameter* p : params) {
        const Tensor& t = p->var.value();
        writeRaw(f, static_cast<std::uint32_t>(p->name.size()));
        f.write(p->name.data(),
                static_cast<std::streamsize>(p->name.size()));
        writeRaw(f, static_cast<std::int32_t>(t.rows()));
        writeRaw(f, static_cast<std::int32_t>(t.cols()));
        f.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
}

/** Read the magic + version header; fatal on a foreign file. */
std::uint32_t
readHeader(std::ifstream& f, const std::string& path)
{
    char magic[4];
    f.read(magic, 4);
    if (!f || std::string(magic, 4) != std::string(kMagic, 4))
        fatal("loadParameters: bad magic in ", path);
    std::uint32_t version = 0;
    readRaw(f, version);
    if (version != kVersionLegacy && version != kVersionManifest)
        fatal("loadParameters: unsupported version ", version);
    return version;
}

} // namespace

void
saveParameters(const std::string& path,
               const std::vector<Parameter*>& params)
{
    saveParameters(path, params, CheckpointManifest());
}

void
saveParameters(const std::string& path,
               const std::vector<Parameter*>& params,
               const CheckpointManifest& manifest)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("saveParameters: cannot open ", path);
    f.write(kMagic, 4);
    writeRaw(f, kVersionManifest);
    writeManifest(f, manifest);
    writeParams(f, params);
    if (!f)
        fatal("saveParameters: write error on ", path);
}

void
saveParametersV1(const std::string& path,
                 const std::vector<Parameter*>& params)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("saveParameters: cannot open ", path);
    f.write(kMagic, 4);
    writeRaw(f, kVersionLegacy);
    writeParams(f, params);
    if (!f)
        fatal("saveParameters: write error on ", path);
}

void
loadParameters(const std::string& path,
               const std::vector<Parameter*>& params)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("loadParameters: cannot open ", path);
    if (readHeader(f, path) == kVersionManifest)
        readManifest(f, path); // weights load ignores the manifest
    std::uint32_t count = 0;
    readRaw(f, count);

    struct Entry
    {
        int rows;
        int cols;
        std::vector<float> data;
    };
    std::map<std::string, Entry> entries;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string name = readString(f, path);
        std::int32_t rows = 0, cols = 0;
        readRaw(f, rows);
        readRaw(f, cols);
        // Same corruption guard as readString: a negative or absurd
        // shape must fail as FatalError, not as a giant allocation.
        constexpr std::int32_t kMaxDim = 1 << 20;
        if (!f || rows < 0 || cols < 0 || rows > kMaxDim ||
            cols > kMaxDim)
            fatal("loadParameters: corrupt shape for '", name,
                  "' in ", path);
        Entry e;
        e.rows = rows;
        e.cols = cols;
        e.data.resize(static_cast<std::size_t>(rows) * cols);
        f.read(reinterpret_cast<char*>(e.data.data()),
               static_cast<std::streamsize>(
                   e.data.size() * sizeof(float)));
        if (!f)
            fatal("loadParameters: truncated file ", path);
        entries.emplace(std::move(name), std::move(e));
    }

    // Validate everything before touching any weight, so a bad file
    // (missing parameter, shape mismatch) leaves the model exactly
    // as it was — load is transactional.
    for (Parameter* p : params) {
        auto it = entries.find(p->name);
        if (it == entries.end())
            fatal("loadParameters: missing parameter '", p->name, "'");
        const Entry& e = it->second;
        const Tensor& t = p->var.value();
        if (e.rows != t.rows() || e.cols != t.cols())
            fatal("loadParameters: shape mismatch for '", p->name,
                  "': file ", e.rows, "x", e.cols, " vs model ",
                  t.rows(), "x", t.cols());
    }
    for (Parameter* p : params) {
        const Entry& e = entries.at(p->name);
        p->var.mutableValue() =
            Tensor::fromVector(e.data, e.rows, e.cols);
    }
}

std::optional<CheckpointManifest>
readCheckpointManifest(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("readCheckpointManifest: cannot open ", path);
    if (readHeader(f, path) == kVersionLegacy)
        return std::nullopt;
    return readManifest(f, path);
}

} // namespace nn
} // namespace ccsa
