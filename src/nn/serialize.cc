#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>
#include <map>

namespace ccsa
{
namespace nn
{

namespace
{

const char kMagic[4] = {'C', 'C', 'S', 'A'};
const std::uint32_t kVersion = 1;

template <typename T>
void
writeRaw(std::ofstream& f, const T& v)
{
    f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void
readRaw(std::ifstream& f, T& v)
{
    f.read(reinterpret_cast<char*>(&v), sizeof(T));
}

} // namespace

void
saveParameters(const std::string& path,
               const std::vector<Parameter*>& params)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("saveParameters: cannot open ", path);
    f.write(kMagic, 4);
    writeRaw(f, kVersion);
    writeRaw(f, static_cast<std::uint32_t>(params.size()));
    for (const Parameter* p : params) {
        const Tensor& t = p->var.value();
        writeRaw(f, static_cast<std::uint32_t>(p->name.size()));
        f.write(p->name.data(),
                static_cast<std::streamsize>(p->name.size()));
        writeRaw(f, static_cast<std::int32_t>(t.rows()));
        writeRaw(f, static_cast<std::int32_t>(t.cols()));
        f.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
    if (!f)
        fatal("saveParameters: write error on ", path);
}

void
loadParameters(const std::string& path,
               const std::vector<Parameter*>& params)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("loadParameters: cannot open ", path);
    char magic[4];
    f.read(magic, 4);
    if (!f || std::string(magic, 4) != std::string(kMagic, 4))
        fatal("loadParameters: bad magic in ", path);
    std::uint32_t version = 0, count = 0;
    readRaw(f, version);
    if (version != kVersion)
        fatal("loadParameters: unsupported version ", version);
    readRaw(f, count);

    struct Entry
    {
        int rows;
        int cols;
        std::vector<float> data;
    };
    std::map<std::string, Entry> entries;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t len = 0;
        readRaw(f, len);
        std::string name(len, '\0');
        f.read(name.data(), len);
        std::int32_t rows = 0, cols = 0;
        readRaw(f, rows);
        readRaw(f, cols);
        Entry e;
        e.rows = rows;
        e.cols = cols;
        e.data.resize(static_cast<std::size_t>(rows) * cols);
        f.read(reinterpret_cast<char*>(e.data.data()),
               static_cast<std::streamsize>(
                   e.data.size() * sizeof(float)));
        if (!f)
            fatal("loadParameters: truncated file ", path);
        entries.emplace(std::move(name), std::move(e));
    }

    // Validate everything before touching any weight, so a bad file
    // (missing parameter, shape mismatch) leaves the model exactly
    // as it was — load is transactional.
    for (Parameter* p : params) {
        auto it = entries.find(p->name);
        if (it == entries.end())
            fatal("loadParameters: missing parameter '", p->name, "'");
        const Entry& e = it->second;
        const Tensor& t = p->var.value();
        if (e.rows != t.rows() || e.cols != t.cols())
            fatal("loadParameters: shape mismatch for '", p->name,
                  "': file ", e.rows, "x", e.cols, " vs model ",
                  t.rows(), "x", t.cols());
    }
    for (Parameter* p : params) {
        const Entry& e = entries.at(p->name);
        p->var.mutableValue() =
            Tensor::fromVector(e.data, e.rows, e.cols);
    }
}

} // namespace nn
} // namespace ccsa
