/**
 * @file
 * Binary (de)serialisation of named parameters, so trained predictors
 * can be saved from one process and reloaded in another (the paper's
 * continuous-learning deployment needs persistent models).
 *
 * Format: magic "CCSA" + version + count, then per parameter:
 * name length, name bytes, rows, cols, row-major float32 payload.
 */

#ifndef CCSA_NN_SERIALIZE_HH
#define CCSA_NN_SERIALIZE_HH

#include <string>
#include <vector>

#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Write all parameters to a binary file. @throws FatalError on I/O. */
void saveParameters(const std::string& path,
                    const std::vector<Parameter*>& params);

/**
 * Load parameters by name; every parameter must be present in the file
 * with matching shape. @throws FatalError on mismatch or I/O error.
 */
void loadParameters(const std::string& path,
                    const std::vector<Parameter*>& params);

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_SERIALIZE_HH
