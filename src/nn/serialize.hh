/**
 * @file
 * Binary (de)serialisation of named parameters, so trained predictors
 * can be saved from one process and reloaded in another (the paper's
 * continuous-learning deployment needs persistent models).
 *
 * Format v2 — self-describing checkpoints: magic "CCSA" + version +
 * a manifest (model name, monotonically increasing version id, the
 * encoder configuration as five raw int32 words), then count and per
 * parameter: name length, name bytes, rows, cols, row-major float32
 * payload. A v2 file carries everything needed to reconstruct the
 * model it was saved from; callers no longer have to know the
 * EncoderConfig out of band (ModelRegistry leans on this).
 *
 * Format v1 (legacy) is the same without the manifest. v1 files
 * still LOAD — loadParameters accepts both — but every save now
 * writes v2.
 */

#ifndef CCSA_NN_SERIALIZE_HH
#define CCSA_NN_SERIALIZE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/**
 * The self-describing header of a v2 checkpoint. The encoder
 * configuration is stored as raw int32 words so this layer stays
 * independent of model/config.hh; ComparativePredictor converts
 * to and from EncoderConfig.
 */
struct CheckpointManifest
{
    /** Model name the checkpoint was saved under. */
    std::string modelName = "model";
    /** Monotonically increasing per-name version id. */
    std::uint64_t version = 1;
    /** EncoderKind as an integer. */
    std::int32_t encoderKind = 0;
    std::int32_t embedDim = 0;
    std::int32_t hiddenDim = 0;
    std::int32_t layers = 0;
    /** nn::TreeArch as an integer. */
    std::int32_t arch = 0;
};

/**
 * Write all parameters to a binary v2 file under a default manifest.
 * @throws FatalError on I/O.
 */
void saveParameters(const std::string& path,
                    const std::vector<Parameter*>& params);

/** Write a v2 file with an explicit manifest. @throws FatalError. */
void saveParameters(const std::string& path,
                    const std::vector<Parameter*>& params,
                    const CheckpointManifest& manifest);

/**
 * Write the LEGACY v1 layout (no manifest). Kept so the v1
 * backward-compatibility contract stays testable; new code always
 * writes v2. @throws FatalError on I/O.
 */
void saveParametersV1(const std::string& path,
                      const std::vector<Parameter*>& params);

/**
 * Load parameters by name from a v1 or v2 file; every parameter must
 * be present with matching shape. @throws FatalError on mismatch or
 * I/O error.
 */
void loadParameters(const std::string& path,
                    const std::vector<Parameter*>& params);

/**
 * Read just the manifest of a checkpoint.
 * @return the manifest of a v2 file, or nullopt for a v1 file (which
 * has none). @throws FatalError on I/O error or corruption.
 */
std::optional<CheckpointManifest>
readCheckpointManifest(const std::string& path);

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_SERIALIZE_HH
