#include "nn/tree_lstm.hh"

#include <algorithm>

namespace ccsa
{
namespace nn
{

TreeSpec
TreeSpec::fromParents(const std::vector<int>& parent_of)
{
    TreeSpec spec;
    spec.parent = parent_of;
    int n = static_cast<int>(parent_of.size());
    if (n == 0)
        fatal("TreeSpec: empty tree");
    spec.children.resize(n);
    int roots = 0;
    for (int i = 0; i < n; ++i) {
        int p = parent_of[i];
        if (p == -1) {
            spec.root = i;
            ++roots;
        } else if (p < 0 || p >= n) {
            fatal("TreeSpec: parent index out of range");
        } else {
            spec.children[p].push_back(i);
        }
    }
    if (roots != 1)
        fatal("TreeSpec: expected exactly one root, found ", roots);

    // Iterative post-order (children before parents).
    spec.postOrder.reserve(n);
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(spec.root, 0);
    while (!stack.empty()) {
        auto& [node, next] = stack.back();
        if (next < spec.children[node].size()) {
            int child = spec.children[node][next++];
            stack.emplace_back(child, 0);
        } else {
            spec.postOrder.push_back(node);
            stack.pop_back();
        }
    }
    if (static_cast<int>(spec.postOrder.size()) != n)
        fatal("TreeSpec: disconnected nodes (cycle or forest)");
    return spec;
}

ChildSumTreeLstmCell::ChildSumTreeLstmCell(int input_dim, int hidden_dim,
                                           Rng& rng,
                                           const std::string& name_prefix)
    : cell_(input_dim, hidden_dim, rng, name_prefix)
{
}

LstmState
ChildSumTreeLstmCell::compose(const ag::Var& x,
                              const std::vector<ag::Var>& child_h,
                              const std::vector<ag::Var>& child_c) const
{
    using namespace ag;
    if (child_h.size() != child_c.size())
        panic("ChildSumTreeLstmCell: child h/c count mismatch");

    // h~ = sum of child hidden states (zero for leaves).
    Var h_tilde = child_h.empty()
        ? constant(Tensor::zeros(1, cell_.hiddenDim_))
        : addN(child_h);

    Var i = sigmoid(addRowBroadcast(
        add(matmul(x, cell_.wi_.var), matmul(h_tilde, cell_.ui_.var)),
        cell_.bi_.var));
    Var o = sigmoid(addRowBroadcast(
        add(matmul(x, cell_.wo_.var), matmul(h_tilde, cell_.uo_.var)),
        cell_.bo_.var));
    Var u = tanhOp(addRowBroadcast(
        add(matmul(x, cell_.wu_.var), matmul(h_tilde, cell_.uu_.var)),
        cell_.bu_.var));

    // c = i .* u + sum_k f_k .* c_k with a per-child forget gate
    // f_k = sig(W_f x + U_f h_k + b_f).
    Var c = mul(i, u);
    if (!child_h.empty()) {
        Var wf_x = matmul(x, cell_.wf_.var);
        std::vector<Var> terms;
        terms.push_back(c);
        for (std::size_t k = 0; k < child_h.size(); ++k) {
            Var f_k = sigmoid(addRowBroadcast(
                add(wf_x, matmul(child_h[k], cell_.uf_.var)),
                cell_.bf_.var));
            terms.push_back(mul(f_k, child_c[k]));
        }
        c = addN(terms);
    }
    Var h = mul(o, tanhOp(c));
    return {h, c};
}

const char*
treeArchName(TreeArch arch)
{
    switch (arch) {
      case TreeArch::Uni:
        return "uni-directional";
      case TreeArch::Bi:
        return "bi-directional";
      case TreeArch::Alternating:
        return "alternating";
    }
    return "unknown";
}

TreeLstm::TreeLstm(int input_dim, int hidden_dim, int num_layers,
                   TreeArch arch, Rng& rng)
    : arch_(arch), hiddenDim_(hidden_dim)
{
    if (num_layers < 1)
        fatal("TreeLstm: need at least one layer");
    int in = input_dim;
    for (int l = 0; l < num_layers; ++l) {
        Layer layer;
        std::string prefix = "treelstm.l" + std::to_string(l);
        switch (arch) {
          case TreeArch::Uni:
            layer.up = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng, prefix + ".up");
            layer.soloDirection = TreeDirection::Upward;
            layer.outDim = hidden_dim;
            break;
          case TreeArch::Bi:
            layer.up = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng, prefix + ".up");
            layer.down = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng, prefix + ".down");
            layer.outDim = 2 * hidden_dim;
            break;
          case TreeArch::Alternating:
            layer.soloDirection = (l % 2 == 0)
                ? TreeDirection::Upward : TreeDirection::Downward;
            layer.up = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng,
                prefix + (l % 2 == 0 ? ".up" : ".down"));
            layer.outDim = hidden_dim;
            break;
        }
        in = layer.outDim;
        layers_.push_back(std::move(layer));
    }
}

std::vector<ag::Var>
TreeLstm::runDirection(const ChildSumTreeLstmCell& cell,
                       TreeDirection dir, const TreeSpec& tree,
                       const std::vector<ag::Var>& inputs)
{
    std::size_t n = tree.size();
    std::vector<LstmState> states(n);

    if (dir == TreeDirection::Upward) {
        // Children first: post-order guarantees availability.
        for (int node : tree.postOrder) {
            std::vector<ag::Var> ch, cc;
            ch.reserve(tree.children[node].size());
            for (int child : tree.children[node]) {
                ch.push_back(states[child].h);
                cc.push_back(states[child].c);
            }
            states[node] = cell.compose(inputs[node], ch, cc);
        }
    } else {
        // Parents first: reverse post-order. Each node's only
        // predecessor is its parent (the parent "copies its
        // representation to all its children", paper §IV-C).
        for (auto it = tree.postOrder.rbegin();
             it != tree.postOrder.rend(); ++it) {
            int node = *it;
            std::vector<ag::Var> ch, cc;
            if (tree.parent[node] != -1) {
                ch.push_back(states[tree.parent[node]].h);
                cc.push_back(states[tree.parent[node]].c);
            }
            states[node] = cell.compose(inputs[node], ch, cc);
        }
    }

    std::vector<ag::Var> hs(n);
    for (std::size_t i = 0; i < n; ++i)
        hs[i] = states[i].h;
    return hs;
}

std::vector<ag::Var>
TreeLstm::encodeNodes(const TreeSpec& tree,
                      const std::vector<ag::Var>& inputs) const
{
    if (inputs.size() != tree.size())
        fatal("TreeLstm::encodeNodes: input count ", inputs.size(),
              " != tree size ", tree.size());

    std::vector<ag::Var> current = inputs;
    for (const Layer& layer : layers_) {
        if (arch_ == TreeArch::Bi) {
            auto up = runDirection(*layer.up, TreeDirection::Upward,
                                   tree, current);
            auto down = runDirection(*layer.down,
                                     TreeDirection::Downward, tree,
                                     current);
            std::vector<ag::Var> merged(tree.size());
            for (std::size_t i = 0; i < tree.size(); ++i)
                merged[i] = ag::concatColsOp(up[i], down[i]);
            current = std::move(merged);
        } else {
            current = runDirection(*layer.up, layer.soloDirection,
                                   tree, current);
        }
    }
    return current;
}

ag::Var
TreeLstm::encodeRoot(const TreeSpec& tree,
                     const std::vector<ag::Var>& inputs) const
{
    return encodeNodes(tree, inputs)[tree.root];
}

int
TreeLstm::outputDim() const
{
    return layers_.back().outDim;
}

std::vector<Parameter*>
TreeLstm::parameters()
{
    std::vector<Parameter*> out;
    for (Layer& layer : layers_) {
        if (layer.up) {
            auto ps = layer.up->parameters();
            out.insert(out.end(), ps.begin(), ps.end());
        }
        if (layer.down) {
            auto ps = layer.down->parameters();
            out.insert(out.end(), ps.begin(), ps.end());
        }
    }
    return out;
}

} // namespace nn
} // namespace ccsa
