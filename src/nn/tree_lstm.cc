#include "nn/tree_lstm.hh"

#include <algorithm>

namespace ccsa
{
namespace nn
{

TreeSpec
TreeSpec::fromParents(const std::vector<int>& parent_of)
{
    TreeSpec spec;
    spec.parent = parent_of;
    int n = static_cast<int>(parent_of.size());
    if (n == 0)
        fatal("TreeSpec: empty tree");
    spec.children.resize(n);
    int roots = 0;
    for (int i = 0; i < n; ++i) {
        int p = parent_of[i];
        if (p == -1) {
            spec.root = i;
            ++roots;
        } else if (p < 0 || p >= n) {
            fatal("TreeSpec: parent index out of range");
        } else {
            spec.children[p].push_back(i);
        }
    }
    if (roots != 1)
        fatal("TreeSpec: expected exactly one root, found ", roots);

    // Iterative post-order (children before parents).
    spec.postOrder.reserve(n);
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(spec.root, 0);
    while (!stack.empty()) {
        auto& [node, next] = stack.back();
        if (next < spec.children[node].size()) {
            int child = spec.children[node][next++];
            stack.emplace_back(child, 0);
        } else {
            spec.postOrder.push_back(node);
            stack.pop_back();
        }
    }
    if (static_cast<int>(spec.postOrder.size()) != n)
        fatal("TreeSpec: disconnected nodes (cycle or forest)");

    // Level schedules: the upward pass groups nodes by height (all
    // children strictly lower), the downward pass by depth (parent
    // strictly earlier). Computed once here, reused by every layer
    // of every encode call on this tree.
    std::vector<int> height(n, 0);
    for (int node : spec.postOrder)
        for (int child : spec.children[node])
            height[node] = std::max(height[node], height[child] + 1);
    std::vector<int> depth(n, 0);
    for (auto it = spec.postOrder.rbegin(); it != spec.postOrder.rend();
         ++it) {
        int node = *it;
        if (spec.parent[node] != -1)
            depth[node] = depth[spec.parent[node]] + 1;
    }

    auto build = [&](const std::vector<int>& level_of, bool upward) {
        LevelSchedule s;
        int num_levels =
            1 + *std::max_element(level_of.begin(), level_of.end());
        s.levels.resize(num_levels);
        s.depIds.resize(num_levels);
        s.depOffsets.resize(num_levels);
        for (int l = 0; l < num_levels; ++l)
            s.depOffsets[l].push_back(0);
        // Ascending node id within a level: deterministic, and
        // irrelevant to values (rows of a level are independent).
        for (int i = 0; i < n; ++i) {
            int l = level_of[i];
            s.levels[l].push_back(i);
            if (upward) {
                for (int child : spec.children[i])
                    s.depIds[l].push_back(child);
            } else if (spec.parent[i] != -1) {
                s.depIds[l].push_back(spec.parent[i]);
            }
            s.depOffsets[l].push_back(
                static_cast<int>(s.depIds[l].size()));
        }
        return s;
    };
    spec.upSchedule = build(height, true);
    spec.downSchedule = build(depth, false);
    return spec;
}

ChildSumTreeLstmCell::ChildSumTreeLstmCell(int input_dim, int hidden_dim,
                                           Rng& rng,
                                           const std::string& name_prefix)
    : cell_(input_dim, hidden_dim, rng, name_prefix),
      zeroRow_(ag::constant(Tensor::zeros(1, hidden_dim)))
{
}

LstmState
ChildSumTreeLstmCell::compose(const ag::Var& x,
                              const std::vector<ag::Var>& child_h,
                              const std::vector<ag::Var>& child_c) const
{
    using namespace ag;
    if (child_h.size() != child_c.size())
        panic("ChildSumTreeLstmCell: child h/c count mismatch");

    // h~ = sum of child hidden states (the shared zero row for
    // leaves: no per-leaf allocation).
    Var h_tilde = child_h.empty() ? zeroRow_ : addN(child_h);

    Var i = sigmoid(addRowBroadcast(
        add(matmul(x, cell_.wi_.var), matmul(h_tilde, cell_.ui_.var)),
        cell_.bi_.var));
    Var o = sigmoid(addRowBroadcast(
        add(matmul(x, cell_.wo_.var), matmul(h_tilde, cell_.uo_.var)),
        cell_.bo_.var));
    Var u = tanhOp(addRowBroadcast(
        add(matmul(x, cell_.wu_.var), matmul(h_tilde, cell_.uu_.var)),
        cell_.bu_.var));

    // c = i .* u + sum_k f_k .* c_k with a per-child forget gate
    // f_k = sig(W_f x + U_f h_k + b_f).
    Var c = mul(i, u);
    if (!child_h.empty()) {
        Var wf_x = matmul(x, cell_.wf_.var);
        std::vector<Var> terms;
        terms.push_back(c);
        for (std::size_t k = 0; k < child_h.size(); ++k) {
            Var f_k = sigmoid(addRowBroadcast(
                add(wf_x, matmul(child_h[k], cell_.uf_.var)),
                cell_.bf_.var));
            terms.push_back(mul(f_k, child_c[k]));
        }
        c = addN(terms);
    }
    Var h = mul(o, tanhOp(c));
    return {h, c};
}

LstmState
ChildSumTreeLstmCell::composeLevel(const ag::Var& x,
                                   const ag::Var& child_h,
                                   const ag::Var& child_c,
                                   const std::vector<int>& offsets) const
{
    using namespace ag;
    int b = x.value().rows();
    if (static_cast<int>(offsets.size()) != b + 1)
        panic("composeLevel: ", offsets.size(), " offsets for ", b,
              " nodes");
    if (child_h.defined() != child_c.defined())
        panic("composeLevel: child h/c presence mismatch");

    // h~ per node: segment child-sum; an all-leaf level short-cuts
    // to a zero block (arena-backed under an InferenceScope).
    Var h_tilde = child_h.defined()
        ? segmentSum(child_h, offsets)
        : ag::zeros(b, cell_.hiddenDim_);

    Var i = sigmoid(affinePair(x, cell_.wi_.var, h_tilde,
                               cell_.ui_.var, cell_.bi_.var));
    Var o = sigmoid(affinePair(x, cell_.wo_.var, h_tilde,
                               cell_.uo_.var, cell_.bo_.var));
    Var u = tanhOp(affinePair(x, cell_.wu_.var, h_tilde,
                              cell_.uu_.var, cell_.bu_.var));

    Var c = mul(i, u);
    if (child_h.defined()) {
        // Per-child forget gates: child k of node s reads row s of
        // W_f X, so expand the parent rows across the child batch.
        std::vector<int> parent_row;
        parent_row.reserve(
            static_cast<std::size_t>(child_h.value().rows()));
        for (int s = 0; s < b; ++s)
            for (int r = offsets[s]; r < offsets[s + 1]; ++r)
                parent_row.push_back(s);
        Var wf_x = gatherRows(matmul(x, cell_.wf_.var),
                              std::move(parent_row));
        Var f = sigmoid(addRowBroadcast(
            add(wf_x, matmul(child_h, cell_.uf_.var)), cell_.bf_.var));
        // c = i .* u + sum_k f_k .* c_k, accumulated in the exact
        // per-node order (segment sum seeded from i .* u).
        c = segmentSum(mul(f, child_c), offsets, c);
    }
    Var h = mul(o, tanhOp(c));
    return {h, c};
}

const char*
treeArchName(TreeArch arch)
{
    switch (arch) {
      case TreeArch::Uni:
        return "uni-directional";
      case TreeArch::Bi:
        return "bi-directional";
      case TreeArch::Alternating:
        return "alternating";
    }
    return "unknown";
}

TreeLstm::TreeLstm(int input_dim, int hidden_dim, int num_layers,
                   TreeArch arch, Rng& rng)
    : arch_(arch), hiddenDim_(hidden_dim)
{
    if (num_layers < 1)
        fatal("TreeLstm: need at least one layer");
    int in = input_dim;
    for (int l = 0; l < num_layers; ++l) {
        Layer layer;
        std::string prefix = "treelstm.l" + std::to_string(l);
        switch (arch) {
          case TreeArch::Uni:
            layer.up = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng, prefix + ".up");
            layer.soloDirection = TreeDirection::Upward;
            layer.outDim = hidden_dim;
            break;
          case TreeArch::Bi:
            layer.up = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng, prefix + ".up");
            layer.down = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng, prefix + ".down");
            layer.outDim = 2 * hidden_dim;
            break;
          case TreeArch::Alternating:
            layer.soloDirection = (l % 2 == 0)
                ? TreeDirection::Upward : TreeDirection::Downward;
            layer.up = std::make_unique<ChildSumTreeLstmCell>(
                in, hidden_dim, rng,
                prefix + (l % 2 == 0 ? ".up" : ".down"));
            layer.outDim = hidden_dim;
            break;
        }
        in = layer.outDim;
        layers_.push_back(std::move(layer));
    }
}

std::vector<ag::Var>
TreeLstm::runDirection(const ChildSumTreeLstmCell& cell,
                       TreeDirection dir, const TreeSpec& tree,
                       const std::vector<ag::Var>& inputs)
{
    std::size_t n = tree.size();
    std::vector<LstmState> states(n);
    // One scratch pair reused across all nodes instead of a fresh
    // allocation per node.
    std::vector<ag::Var> ch, cc;

    if (dir == TreeDirection::Upward) {
        // Children first: post-order guarantees availability.
        for (int node : tree.postOrder) {
            ch.clear();
            cc.clear();
            ch.reserve(tree.children[node].size());
            cc.reserve(tree.children[node].size());
            for (int child : tree.children[node]) {
                ch.push_back(states[child].h);
                cc.push_back(states[child].c);
            }
            states[node] = cell.compose(inputs[node], ch, cc);
        }
    } else {
        // Parents first: reverse post-order. Each node's only
        // predecessor is its parent (the parent "copies its
        // representation to all its children", paper §IV-C).
        for (auto it = tree.postOrder.rbegin();
             it != tree.postOrder.rend(); ++it) {
            int node = *it;
            ch.clear();
            cc.clear();
            if (tree.parent[node] != -1) {
                ch.push_back(states[tree.parent[node]].h);
                cc.push_back(states[tree.parent[node]].c);
            }
            states[node] = cell.compose(inputs[node], ch, cc);
        }
    }

    std::vector<ag::Var> hs(n);
    for (std::size_t i = 0; i < n; ++i)
        hs[i] = states[i].h;
    return hs;
}

ag::Var
TreeLstm::runDirectionLevels(const ChildSumTreeLstmCell& cell,
                             const TreeSpec::LevelSchedule& sched,
                             std::size_t node_count,
                             const ag::Var& inputs)
{
    // Node states live inside their level's output matrices; nodes
    // are addressed as (level, row) and collected per wavefront with
    // one pickRows op — no per-node tape traffic during the pass.
    struct NodeLoc
    {
        int level = -1;
        int row = 0;
    };
    std::vector<NodeLoc> loc(node_count);
    std::vector<ag::Var> level_h, level_c;
    level_h.reserve(sched.levels.size());
    level_c.reserve(sched.levels.size());

    std::vector<std::pair<int, int>> picks;
    for (std::size_t l = 0; l < sched.levels.size(); ++l) {
        const std::vector<int>& ids = sched.levels[l];
        const std::vector<int>& deps = sched.depIds[l];
        LstmState st;

        if (ids.size() == 1) {
            // Single-node wavefront (every level of a degenerate
            // chain): the batching scaffolding would only add
            // overhead, so run the per-node cell directly.
            // composeLevel and compose are bitwise-equal per row,
            // so this changes nothing numerically.
            std::vector<ag::Var> dh, dc;
            dh.reserve(deps.size());
            dc.reserve(deps.size());
            for (int dep : deps) {
                const NodeLoc& d = loc[dep];
                if (level_h[d.level].value().rows() == 1) {
                    dh.push_back(level_h[d.level]);
                    dc.push_back(level_c[d.level]);
                } else {
                    dh.push_back(
                        ag::rowSlice(level_h[d.level], d.row, 1));
                    dc.push_back(
                        ag::rowSlice(level_c[d.level], d.row, 1));
                }
            }
            st = cell.compose(ag::rowSlice(inputs, ids[0], 1), dh,
                              dc);
        } else {
            ag::Var xl = ag::gatherRows(inputs, ids);
            if (deps.empty()) {
                st = cell.composeLevel(xl, ag::Var(), ag::Var(),
                                       sched.depOffsets[l]);
            } else {
                picks.clear();
                picks.reserve(deps.size());
                for (int dep : deps)
                    picks.emplace_back(loc[dep].level, loc[dep].row);
                st = cell.composeLevel(
                    xl, ag::pickRows(level_h, picks),
                    ag::pickRows(level_c, picks),
                    sched.depOffsets[l]);
            }
        }

        level_h.push_back(st.h);
        level_c.push_back(st.c);
        for (std::size_t b = 0; b < ids.size(); ++b)
            loc[ids[b]] = {static_cast<int>(l),
                           static_cast<int>(b)};
    }

    // Assemble the node-ordered output matrix in one op. A
    // single-level schedule is already node-ordered (levels list
    // nodes ascending).
    if (level_h.size() == 1 &&
        sched.levels[0].size() == node_count)
        return level_h[0];
    picks.clear();
    picks.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i)
        picks.push_back({loc[i].level, loc[i].row});
    return ag::pickRows(level_h, picks);
}

std::vector<ag::Var>
TreeLstm::encodeNodes(const TreeSpec& tree,
                      const std::vector<ag::Var>& inputs) const
{
    if (inputs.size() != tree.size())
        fatal("TreeLstm::encodeNodes: input count ", inputs.size(),
              " != tree size ", tree.size());
    // Degenerate chain: every wavefront has width one, so there is
    // nothing to batch — the per-node path avoids the
    // stack/slice adaptation entirely (identical results).
    if (tree.upSchedule.depth() == tree.size())
        return encodeNodesPerNode(tree, inputs);
    return encodeForest({&tree}, ag::stackRows(inputs))[0];
}

std::vector<ag::Var>
TreeLstm::encodeNodesPerNode(const TreeSpec& tree,
                             const std::vector<ag::Var>& inputs) const
{
    if (inputs.size() != tree.size())
        fatal("TreeLstm::encodeNodesPerNode: input count ",
              inputs.size(), " != tree size ", tree.size());

    std::vector<ag::Var> current = inputs;
    for (const Layer& layer : layers_) {
        if (arch_ == TreeArch::Bi) {
            auto up = runDirection(*layer.up, TreeDirection::Upward,
                                   tree, current);
            auto down = runDirection(*layer.down,
                                     TreeDirection::Downward, tree,
                                     current);
            std::vector<ag::Var> merged(tree.size());
            for (std::size_t i = 0; i < tree.size(); ++i)
                merged[i] = ag::concatColsOp(up[i], down[i]);
            current = std::move(merged);
        } else {
            current = runDirection(*layer.up, layer.soloDirection,
                                   tree, current);
        }
    }
    return current;
}

namespace
{

/**
 * Merge per-tree level schedules into one forest schedule with
 * globally offset node ids: forest level l is the concatenation of
 * every tree's level l, so trees of different depths simply drop out
 * of later wavefronts.
 */
TreeSpec::LevelSchedule
mergeSchedules(const std::vector<const TreeSpec*>& trees, bool upward)
{
    TreeSpec::LevelSchedule merged;
    int offset = 0;
    for (const TreeSpec* tree : trees) {
        const TreeSpec::LevelSchedule& s =
            upward ? tree->upSchedule : tree->downSchedule;
        if (merged.levels.size() < s.levels.size()) {
            merged.levels.resize(s.levels.size());
            merged.depIds.resize(s.levels.size());
            merged.depOffsets.resize(s.levels.size());
        }
        for (std::size_t l = 0; l < s.levels.size(); ++l) {
            if (merged.depOffsets[l].empty())
                merged.depOffsets[l].push_back(0);
            for (int id : s.levels[l])
                merged.levels[l].push_back(id + offset);
            for (int id : s.depIds[l])
                merged.depIds[l].push_back(id + offset);
            for (std::size_t b = 1; b < s.depOffsets[l].size(); ++b) {
                int len = s.depOffsets[l][b] - s.depOffsets[l][b - 1];
                merged.depOffsets[l].push_back(
                    merged.depOffsets[l].back() + len);
            }
        }
        offset += static_cast<int>(tree->size());
    }
    // Shallow trees leave later levels without an offsets seed.
    for (auto& off : merged.depOffsets)
        if (off.empty())
            off.push_back(0);
    return merged;
}

} // namespace

ag::Var
TreeLstm::encodeForestStacked(
    const std::vector<const TreeSpec*>& trees,
    const ag::Var& inputs) const
{
    if (trees.empty())
        fatal("TreeLstm::encodeForestStacked: empty forest");
    std::size_t n = 0;
    for (const TreeSpec* tree : trees) {
        if (tree == nullptr)
            fatal("TreeLstm::encodeForestStacked: null tree");
        n += tree->size();
    }
    if (static_cast<std::size_t>(inputs.value().rows()) != n)
        fatal("TreeLstm::encodeForestStacked: ",
              inputs.value().rows(), " input rows for ", n,
              " forest nodes");

    bool need_up = false;
    bool need_down = false;
    for (const Layer& layer : layers_) {
        if (arch_ == TreeArch::Bi ||
            layer.soloDirection == TreeDirection::Upward)
            need_up = true;
        if (arch_ == TreeArch::Bi ||
            layer.soloDirection == TreeDirection::Downward)
            need_down = true;
    }

    // Single trees reuse their precomputed schedules; forests merge
    // them once per call (O(total nodes)).
    TreeSpec::LevelSchedule merged_up, merged_down;
    const TreeSpec::LevelSchedule* up_sched = &trees[0]->upSchedule;
    const TreeSpec::LevelSchedule* down_sched =
        &trees[0]->downSchedule;
    if (trees.size() > 1) {
        if (need_up) {
            merged_up = mergeSchedules(trees, true);
            up_sched = &merged_up;
        }
        if (need_down) {
            merged_down = mergeSchedules(trees, false);
            down_sched = &merged_down;
        }
    }

    ag::Var x = inputs;
    for (const Layer& layer : layers_) {
        if (arch_ == TreeArch::Bi) {
            ag::Var up = runDirectionLevels(*layer.up, *up_sched, n,
                                            x);
            ag::Var down = runDirectionLevels(*layer.down,
                                              *down_sched, n, x);
            x = ag::concatColsOp(up, down);
        } else {
            const TreeSpec::LevelSchedule& sched =
                layer.soloDirection == TreeDirection::Upward
                    ? *up_sched : *down_sched;
            x = runDirectionLevels(*layer.up, sched, n, x);
        }
    }
    return x;
}

std::vector<std::vector<ag::Var>>
TreeLstm::encodeForest(const std::vector<const TreeSpec*>& trees,
                       const ag::Var& inputs) const
{
    ag::Var stacked = encodeForestStacked(trees, inputs);
    std::vector<std::vector<ag::Var>> out;
    out.reserve(trees.size());
    int base = 0;
    for (const TreeSpec* tree : trees) {
        std::vector<ag::Var> nodes;
        nodes.reserve(tree->size());
        for (std::size_t i = 0; i < tree->size(); ++i)
            nodes.push_back(ag::rowSlice(
                stacked, base + static_cast<int>(i), 1));
        out.push_back(std::move(nodes));
        base += static_cast<int>(tree->size());
    }
    return out;
}

std::vector<ag::Var>
TreeLstm::encodeForestRoots(
    const std::vector<const TreeSpec*>& trees,
    const ag::Var& inputs) const
{
    ag::Var stacked = encodeForestStacked(trees, inputs);
    std::vector<ag::Var> roots;
    roots.reserve(trees.size());
    int base = 0;
    for (const TreeSpec* tree : trees) {
        roots.push_back(ag::rowSlice(stacked, base + tree->root, 1));
        base += static_cast<int>(tree->size());
    }
    return roots;
}

ag::Var
TreeLstm::encodeRoot(const TreeSpec& tree,
                     const std::vector<ag::Var>& inputs) const
{
    if (inputs.size() != tree.size())
        fatal("TreeLstm::encodeRoot: input count ", inputs.size(),
              " != tree size ", tree.size());
    if (tree.upSchedule.depth() == tree.size())
        return encodeNodesPerNode(tree, inputs)[tree.root];
    // Root-only: skip the per-node slicing of encodeNodes.
    return encodeForestRoots({&tree}, ag::stackRows(inputs))[0];
}

int
TreeLstm::outputDim() const
{
    return layers_.back().outDim;
}

std::vector<Parameter*>
TreeLstm::parameters()
{
    std::vector<Parameter*> out;
    for (Layer& layer : layers_) {
        if (layer.up) {
            auto ps = layer.up->parameters();
            out.insert(out.end(), ps.begin(), ps.end());
        }
        if (layer.down) {
            auto ps = layer.down->parameters();
            out.insert(out.end(), ps.begin(), ps.end());
        }
    }
    return out;
}

} // namespace nn
} // namespace ccsa
