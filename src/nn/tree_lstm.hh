/**
 * @file
 * Child-sum tree-LSTM (paper Eq. 4, after Tai et al. 2015) and the
 * three multi-layer drivers of Figure 2:
 *
 *  - uni-directional: every layer propagates leaves -> root;
 *  - bi-directional: every layer runs an upward and a downward
 *    tree-LSTM and concatenates the two hidden states per node;
 *  - alternating: layers alternate upward / downward / upward ...,
 *    halving the parameter count of the bi-directional variant (the
 *    configuration the paper finds best overall).
 *
 * The drivers are structure-agnostic: they consume a TreeSpec (parent
 * array + traversal orders), so the nn module stays independent of the
 * AST representation.
 */

#ifndef CCSA_NN_TREE_LSTM_HH
#define CCSA_NN_TREE_LSTM_HH

#include <memory>

#include "nn/lstm.hh"
#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Structural view of a rooted tree for the tree-LSTM drivers. */
struct TreeSpec
{
    /** parent[i] = parent node id, or -1 for the root. */
    std::vector<int> parent;
    /** children[i] = node ids of i's children. */
    std::vector<std::vector<int>> children;
    /** Nodes ordered children-before-parents (upward pass order). */
    std::vector<int> postOrder;
    /** Index of the root node. */
    int root = 0;

    std::size_t size() const { return parent.size(); }

    /**
     * Build the derived fields from a parent array.
     * @param parent_of parent id per node, exactly one -1 entry.
     */
    static TreeSpec fromParents(const std::vector<int>& parent_of);
};

/**
 * Child-sum tree-LSTM unit (Eq. 4): gates read the sum of child hidden
 * states; each child gets its own forget gate so the cell can
 * selectively keep information per subtree.
 */
class ChildSumTreeLstmCell : public Module
{
  public:
    ChildSumTreeLstmCell(int input_dim, int hidden_dim, Rng& rng,
                         const std::string& name_prefix = "treelstm");

    /**
     * Compose one node from its children.
     * @param x node input (1 x input_dim).
     * @param child_h hidden states of the children (may be empty).
     * @param child_c cell states of the children (same length).
     */
    LstmState compose(const ag::Var& x,
                      const std::vector<ag::Var>& child_h,
                      const std::vector<ag::Var>& child_c) const;

    int inputDim() const { return cell_.inputDim(); }
    int hiddenDim() const { return cell_.hiddenDim(); }

    std::vector<Parameter*> parameters() override
    {
        return cell_.parameters();
    }

  private:
    // Reuses the LstmCell parameter block; the composition logic
    // differs (summed child states, per-child forget gates).
    LstmCell cell_;
};

/** Propagation direction of one tree-LSTM layer. */
enum class TreeDirection
{
    Upward,   ///< leaves to root (information flows child -> parent)
    Downward, ///< root to leaves (parent copies state to children)
};

/** Multi-layer architecture (Fig. 2 of the paper). */
enum class TreeArch
{
    Uni,         ///< all layers upward
    Bi,          ///< each layer: upward + downward, concatenated
    Alternating, ///< upward, downward, upward, ...
};

/** @return human-readable architecture name. */
const char* treeArchName(TreeArch arch);

/**
 * Stacked tree-LSTM encoder over a TreeSpec. Layer l's per-node hidden
 * states feed layer l+1 as inputs, "leading to greater refinement of
 * each sub-tree's representation" (paper §IV-C).
 */
class TreeLstm : public Module
{
  public:
    /**
     * @param input_dim per-node input feature size (lambda).
     * @param hidden_dim hidden state size per direction.
     * @param num_layers stacked layer count (>= 1).
     * @param arch multi-layer wiring of Fig. 2.
     */
    TreeLstm(int input_dim, int hidden_dim, int num_layers,
             TreeArch arch, Rng& rng);

    /**
     * Encode every node of a tree.
     * @param tree structural view.
     * @param inputs per-node input vectors (1 x input_dim each).
     * @return final-layer hidden state per node.
     */
    std::vector<ag::Var> encodeNodes(
        const TreeSpec& tree, const std::vector<ag::Var>& inputs) const;

    /** Encode and return only the root representation. */
    ag::Var encodeRoot(const TreeSpec& tree,
                       const std::vector<ag::Var>& inputs) const;

    /** @return dimensionality of the per-node output. */
    int outputDim() const;

    int numLayers() const { return static_cast<int>(layers_.size()); }
    TreeArch arch() const { return arch_; }

    std::vector<Parameter*> parameters() override;

  private:
    struct Layer
    {
        std::unique_ptr<ChildSumTreeLstmCell> up;
        std::unique_ptr<ChildSumTreeLstmCell> down;
        TreeDirection soloDirection = TreeDirection::Upward;
        int outDim = 0;
    };

    /** Run a single direction over the tree with the given cell. */
    static std::vector<ag::Var> runDirection(
        const ChildSumTreeLstmCell& cell, TreeDirection dir,
        const TreeSpec& tree, const std::vector<ag::Var>& inputs);

    TreeArch arch_;
    int hiddenDim_;
    std::vector<Layer> layers_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_TREE_LSTM_HH
