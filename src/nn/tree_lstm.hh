/**
 * @file
 * Child-sum tree-LSTM (paper Eq. 4, after Tai et al. 2015) and the
 * three multi-layer drivers of Figure 2:
 *
 *  - uni-directional: every layer propagates leaves -> root;
 *  - bi-directional: every layer runs an upward and a downward
 *    tree-LSTM and concatenates the two hidden states per node;
 *  - alternating: layers alternate upward / downward / upward ...,
 *    halving the parameter count of the bi-directional variant (the
 *    configuration the paper finds best overall).
 *
 * The drivers are structure-agnostic: they consume a TreeSpec (parent
 * array + traversal orders), so the nn module stays independent of the
 * AST representation.
 */

#ifndef CCSA_NN_TREE_LSTM_HH
#define CCSA_NN_TREE_LSTM_HH

#include <memory>

#include "nn/lstm.hh"
#include "nn/module.hh"

namespace ccsa
{
namespace nn
{

/** Structural view of a rooted tree for the tree-LSTM drivers. */
struct TreeSpec
{
    /**
     * Wavefront schedule for one propagation direction. The
     * tree-LSTM recurrence is depth-synchronous: every node of
     * levels[l] depends only on nodes in levels < l, so a whole
     * level composes as ONE batched cell application (one matmul
     * per weight matrix) instead of one tiny matmul per node.
     *
     * depIds[l] flattens the dependency node ids of levels[l] (the
     * children for the upward pass, the parent for the downward
     * pass) grouped per node in level order; depOffsets[l] holds the
     * levels[l].size() + 1 segment boundaries into depIds[l].
     */
    struct LevelSchedule
    {
        std::vector<std::vector<int>> levels;
        std::vector<std::vector<int>> depIds;
        std::vector<std::vector<int>> depOffsets;

        std::size_t depth() const { return levels.size(); }
    };

    /** parent[i] = parent node id, or -1 for the root. */
    std::vector<int> parent;
    /** children[i] = node ids of i's children. */
    std::vector<std::vector<int>> children;
    /** Nodes ordered children-before-parents (upward pass order). */
    std::vector<int> postOrder;
    /** Index of the root node. */
    int root = 0;

    /**
     * Height-grouped wavefronts (children as dependencies), computed
     * once in fromParents and reused across layers and encode calls.
     */
    LevelSchedule upSchedule;
    /** Depth-grouped wavefronts (parent as the only dependency). */
    LevelSchedule downSchedule;

    std::size_t size() const { return parent.size(); }

    /**
     * Build the derived fields from a parent array.
     * @param parent_of parent id per node, exactly one -1 entry.
     */
    static TreeSpec fromParents(const std::vector<int>& parent_of);
};

/**
 * Child-sum tree-LSTM unit (Eq. 4): gates read the sum of child hidden
 * states; each child gets its own forget gate so the cell can
 * selectively keep information per subtree.
 */
class ChildSumTreeLstmCell : public Module
{
  public:
    ChildSumTreeLstmCell(int input_dim, int hidden_dim, Rng& rng,
                         const std::string& name_prefix = "treelstm");

    /**
     * Compose one node from its children.
     * @param x node input (1 x input_dim).
     * @param child_h hidden states of the children (may be empty).
     * @param child_c cell states of the children (same length).
     */
    LstmState compose(const ag::Var& x,
                      const std::vector<ag::Var>& child_h,
                      const std::vector<ag::Var>& child_c) const;

    /**
     * Batched form of compose(): one wavefront of B same-level
     * nodes in a single cell application.
     *
     * Numerics: every gate preactivation row and every child-sum
     * accumulates in exactly the per-node order (ordered matmul
     * kernel, segment sums seeded like addN), so each output row is
     * bitwise-identical to compose() on that node alone.
     *
     * @param x level inputs (B x input_dim).
     * @param child_h stacked child hidden states (K x hidden_dim),
     *        grouped per node; an undefined Var when the level has
     *        no children at all (K == 0).
     * @param child_c stacked child cell states (same layout).
     * @param offsets B + 1 segment boundaries mapping children to
     *        nodes (offsets[b]..offsets[b+1] are node b's children).
     */
    LstmState composeLevel(const ag::Var& x, const ag::Var& child_h,
                           const ag::Var& child_c,
                           const std::vector<int>& offsets) const;

    int inputDim() const { return cell_.inputDim(); }
    int hiddenDim() const { return cell_.hiddenDim(); }

    std::vector<Parameter*> parameters() override
    {
        return cell_.parameters();
    }

  private:
    // Reuses the LstmCell parameter block; the composition logic
    // differs (summed child states, per-child forget gates).
    LstmCell cell_;
    // Shared leaf h~ (1 x hidden zeros), hoisted out of compose():
    // constants carry no gradient, so one tape node serves every
    // leaf of every tree.
    ag::Var zeroRow_;
};

/** Propagation direction of one tree-LSTM layer. */
enum class TreeDirection
{
    Upward,   ///< leaves to root (information flows child -> parent)
    Downward, ///< root to leaves (parent copies state to children)
};

/** Multi-layer architecture (Fig. 2 of the paper). */
enum class TreeArch
{
    Uni,         ///< all layers upward
    Bi,          ///< each layer: upward + downward, concatenated
    Alternating, ///< upward, downward, upward, ...
};

/** @return human-readable architecture name. */
const char* treeArchName(TreeArch arch);

/**
 * Stacked tree-LSTM encoder over a TreeSpec. Layer l's per-node hidden
 * states feed layer l+1 as inputs, "leading to greater refinement of
 * each sub-tree's representation" (paper §IV-C).
 */
class TreeLstm : public Module
{
  public:
    /**
     * @param input_dim per-node input feature size (lambda).
     * @param hidden_dim hidden state size per direction.
     * @param num_layers stacked layer count (>= 1).
     * @param arch multi-layer wiring of Fig. 2.
     */
    TreeLstm(int input_dim, int hidden_dim, int num_layers,
             TreeArch arch, Rng& rng);

    /**
     * Encode every node of a tree through the level-batched
     * wavefront path: per layer, O(depth) large matmuls instead of
     * O(nodes) tiny ones.
     * @param tree structural view.
     * @param inputs per-node input vectors (1 x input_dim each).
     * @return final-layer hidden state per node.
     */
    std::vector<ag::Var> encodeNodes(
        const TreeSpec& tree, const std::vector<ag::Var>& inputs) const;

    /**
     * The legacy one-node-at-a-time path, kept as the reference
     * oracle for the level-batched kernels (parity tests and the
     * old-vs-new encode benchmark). Same results as encodeNodes().
     */
    std::vector<ag::Var> encodeNodesPerNode(
        const TreeSpec& tree, const std::vector<ag::Var>& inputs) const;

    /** Encode and return only the root representation. */
    ag::Var encodeRoot(const TreeSpec& tree,
                       const std::vector<ag::Var>& inputs) const;

    /**
     * Encode a whole forest in one wavefront: level l of every tree
     * joins a single batched cell application, so all distinct trees
     * of a request batch share the same large matmuls. Because rows
     * never mix across trees, each tree's encoding is independent of
     * its companions — forest batching is a pure throughput win.
     * @param trees borrowed tree specs (non-null).
     * @param inputs stacked per-node inputs, trees concatenated in
     *        order (sum of tree sizes x input_dim).
     * @return final-layer hidden states as one stacked matrix
     *         (sum of tree sizes x outputDim), trees in input order.
     */
    ag::Var encodeForestStacked(
        const std::vector<const TreeSpec*>& trees,
        const ag::Var& inputs) const;

    /** Forest encode sliced per tree, per node (diagnostics). */
    std::vector<std::vector<ag::Var>> encodeForest(
        const std::vector<const TreeSpec*>& trees,
        const ag::Var& inputs) const;

    /** Forest encode returning only each tree's root row — the
     * serving path (no per-node slicing). */
    std::vector<ag::Var> encodeForestRoots(
        const std::vector<const TreeSpec*>& trees,
        const ag::Var& inputs) const;

    /** @return dimensionality of the per-node output. */
    int outputDim() const;

    int numLayers() const { return static_cast<int>(layers_.size()); }
    TreeArch arch() const { return arch_; }

    std::vector<Parameter*> parameters() override;

  private:
    struct Layer
    {
        std::unique_ptr<ChildSumTreeLstmCell> up;
        std::unique_ptr<ChildSumTreeLstmCell> down;
        TreeDirection soloDirection = TreeDirection::Upward;
        int outDim = 0;
    };

    /** Run a single direction per-node (legacy oracle path). */
    static std::vector<ag::Var> runDirection(
        const ChildSumTreeLstmCell& cell, TreeDirection dir,
        const TreeSpec& tree, const std::vector<ag::Var>& inputs);

    /**
     * Run a single direction level-batched over a (possibly merged)
     * schedule; @return the stacked hidden states (node_count x
     * hidden) in node order.
     */
    static ag::Var runDirectionLevels(
        const ChildSumTreeLstmCell& cell,
        const TreeSpec::LevelSchedule& sched, std::size_t node_count,
        const ag::Var& inputs);

    TreeArch arch_;
    int hiddenDim_;
    std::vector<Layer> layers_;
};

} // namespace nn
} // namespace ccsa

#endif // CCSA_NN_TREE_LSTM_HH
