#include "serve/admission/admission_controller.hh"

#include <algorithm>

#include "serve/metrics/metrics.hh"

namespace ccsa
{

void
AdmissionController::setQuota(const std::string& tenant, Quota quota)
{
    if (quota.burst < 1.0)
        quota.burst = 1.0;
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket& bucket = buckets_[tenant];
    bucket.limited = true;
    bucket.quota = quota;
    bucket.tokens = quota.burst;
    bucket.lastRefill = std::chrono::steady_clock::time_point{};
}

void
AdmissionController::clearQuota(const std::string& tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(tenant);
    if (it != buckets_.end())
        it->second.limited = false;
}

Status
AdmissionController::admitAt(const std::string& tenant,
                             std::size_t pairs,
                             std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket& bucket = buckets_[tenant];
    if (!bucket.limited) {
        bucket.admitted++;
        bucket.admittedPairs += pairs;
        return Status::ok();
    }

    // Lazy refill: top the bucket up for the time elapsed since the
    // last charge, clamped to the burst ceiling. A default
    // (zero-initialised) lastRefill means the bucket was just
    // (re)configured full, so the first charge only sets the epoch.
    if (bucket.lastRefill ==
        std::chrono::steady_clock::time_point{}) {
        bucket.lastRefill = now;
    } else if (now > bucket.lastRefill) {
        double dt = std::chrono::duration<double>(
                        now - bucket.lastRefill)
                        .count();
        bucket.tokens = std::min(
            bucket.quota.burst,
            bucket.tokens + dt * bucket.quota.pairsPerSec);
        bucket.lastRefill = now;
    }

    double cost = static_cast<double>(pairs);
    if (cost > bucket.tokens) {
        bucket.rejected++;
        return Status::resourceExhausted(
            "tenant '" + tenant + "': admission quota exceeded (" +
            std::to_string(pairs) + " pairs)");
    }
    bucket.tokens -= cost;
    bucket.admitted++;
    bucket.admittedPairs += pairs;
    return Status::ok();
}

Status
AdmissionController::admit(const std::string& tenant,
                           std::size_t pairs)
{
    return admitAt(tenant, pairs, std::chrono::steady_clock::now());
}

bool
AdmissionController::hasQuota(const std::string& tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(tenant);
    return it != buckets_.end() && it->second.limited;
}

std::vector<AdmissionController::TenantAdmissionStats>
AdmissionController::stats() const
{
    std::vector<TenantAdmissionStats> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(buckets_.size());
        for (const auto& [tenant, bucket] : buckets_) {
            TenantAdmissionStats row;
            row.tenant = tenant;
            row.admitted = bucket.admitted;
            row.admittedPairs = bucket.admittedPairs;
            row.rejected = bucket.rejected;
            row.limited = bucket.limited;
            row.tokens = bucket.tokens;
            out.push_back(std::move(row));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TenantAdmissionStats& a,
                 const TenantAdmissionStats& b) {
                  return a.tenant < b.tenant;
              });
    return out;
}

void
AdmissionController::publishMetrics(MetricsRegistry& registry) const
{
    for (const TenantAdmissionStats& row : stats()) {
        MetricLabels labels{{"tenant", row.tenant}};
        registry
            .counter("ccsa_admission_admitted_total", labels,
                     "Requests admitted past the quota gate.")
            .increaseTo(row.admitted);
        registry
            .counter("ccsa_admission_admitted_pairs_total", labels,
                     "Pairs charged against admitted requests.")
            .increaseTo(row.admittedPairs);
        registry
            .counter("ccsa_admission_rejected_total", labels,
                     "Requests rejected by the quota gate.")
            .increaseTo(row.rejected);
        if (row.limited) {
            registry
                .gauge("ccsa_admission_bucket_tokens", labels,
                       "Token-bucket fill (pairs) as of the "
                       "tenant's last charge.")
                .set(row.tokens);
        }
    }
}

} // namespace ccsa
