/**
 * @file
 * ccsa::AdmissionController — per-tenant token-bucket quotas at the
 * serving front door. Every submit endpoint of AsyncServer and
 * ShardedServer can be gated by one of these: a request costs as
 * many tokens as it carries pairs, each tenant owns an independent
 * bucket (configurable sustained rate and burst), and a dry bucket
 * answers the request immediately with ResourceExhausted instead of
 * letting one noisy tenant fill the shared queue and starve everyone
 * behind it. Tenants without a configured quota are unlimited, and
 * the empty tenant name is the DEFAULT tenant legacy callers land
 * on — so a server with no quotas configured admits exactly what it
 * admitted before this layer existed.
 *
 * The controller also defines the request vocabulary of the
 * admission layer: Priority (interactive vs batch traffic classes,
 * consumed by the deadline-aware coalescer in serve/coalesce.hh) and
 * SubmitOptions (tenant + priority + model name) that the servers'
 * submit overloads accept.
 *
 * Determinism: admission never changes a result, only whether a
 * request is answered at all. Time is injectable (admitAt) so tests
 * drive the bucket with a manual clock instead of sleeping.
 */

#ifndef CCSA_SERVE_ADMISSION_ADMISSION_CONTROLLER_HH
#define CCSA_SERVE_ADMISSION_ADMISSION_CONTROLLER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.hh"

namespace ccsa
{

class MetricsRegistry;

/** Scheduling class of a submitted request (serve/coalesce.hh):
 * interactive traffic bounds batch-flush latency, batch traffic
 * rides full batches. */
enum class Priority
{
    kInteractive,
    kBatch,
};

/** @return printable name of a Priority. */
inline const char*
priorityName(Priority p)
{
    return p == Priority::kBatch ? "batch" : "interactive";
}

/** Per-submit routing options for the async serving layers: which
 * model answers, which tenant pays, and which scheduling lane the
 * request rides. Default-constructed == the legacy submit paths
 * (default model, default tenant, interactive). */
struct SubmitOptions
{
    /** Registry model name; "" = the default model. */
    std::string model;
    /** Admission-control tenant; "" = the default tenant. */
    std::string tenant;
    /** Scheduling lane (see serve/coalesce.hh Coalescer). */
    Priority priority = Priority::kInteractive;
    /** Submit-side deadline, measured from submit entry; zero means
     * none. A request whose deadline expires while it is still
     * queued is completed with Status::DeadlineExceeded instead of
     * being encoded (counted requestsRejectedDeadline /
     * ccsa_requests_total{outcome="deadline"}); one already handed
     * to an engine runs to completion — the deadline bounds queue
     * wait, not execution. */
    std::chrono::microseconds deadline{0};

    SubmitOptions& withModel(std::string name)
    {
        model = std::move(name);
        return *this;
    }

    SubmitOptions& withTenant(std::string name)
    {
        tenant = std::move(name);
        return *this;
    }

    SubmitOptions& withPriority(Priority p)
    {
        priority = p;
        return *this;
    }

    SubmitOptions& withDeadline(std::chrono::microseconds d)
    {
        deadline = d;
        return *this;
    }
};

/** Per-tenant token-bucket admission gate. */
class AdmissionController
{
  public:
    /** One tenant's refill rate and bucket depth, in PAIRS (a
     * request costs one token per pair it carries, so a tournament
     * pays for its real batch weight, not "one request"). */
    struct Quota
    {
        /** Sustained admission rate, pairs per second. */
        double pairsPerSec = 0.0;
        /** Bucket capacity: the largest instantaneous burst. Also
         * the ceiling on a single request's cost — a request larger
         * than the burst can NEVER be admitted and is rejected even
         * from a full bucket. */
        double burst = 0.0;
    };

    /** Lifetime admission counters for one tenant. */
    struct TenantAdmissionStats
    {
        std::string tenant;
        std::uint64_t admitted = 0;
        std::uint64_t admittedPairs = 0;
        std::uint64_t rejected = 0;
        /** Whether a quota is currently installed. */
        bool limited = false;
        /** Bucket fill as of the last charge (lazy refill: the
         * level is only topped up when the tenant next submits).
         * Meaningful only when limited. */
        double tokens = 0.0;
    };

    AdmissionController() = default;
    AdmissionController(const AdmissionController&) = delete;
    AdmissionController& operator=(const AdmissionController&) =
        delete;

    /**
     * Install (or replace) `tenant`'s quota. The bucket starts (or
     * restarts) full — a tenant gets its burst immediately after a
     * quota change. Non-positive burst is clamped up to 1 so a
     * configured tenant can always make progress one pair at a time;
     * a non-positive rate means the bucket never refills (burst
     * total, then rejection — a hard cap).
     */
    void setQuota(const std::string& tenant, Quota quota);

    /** Remove `tenant`'s quota: it becomes unlimited again (its
     * counters survive). */
    void clearQuota(const std::string& tenant);

    /**
     * Charge `pairs` tokens against `tenant`'s bucket at time `now`.
     * Ok admits; ResourceExhausted means the bucket is dry (or the
     * request exceeds the burst ceiling). Unquoted tenants are
     * always admitted. `now` must be monotone per tenant; the
     * serving layer passes steady_clock::now() (admit()), tests pass
     * a manual clock.
     */
    Status admitAt(const std::string& tenant, std::size_t pairs,
                   std::chrono::steady_clock::time_point now);

    /** admitAt(tenant, pairs, steady_clock::now()). */
    Status admit(const std::string& tenant, std::size_t pairs);

    /** @return true when `tenant` currently has a quota installed. */
    bool hasQuota(const std::string& tenant) const;

    /** Lifetime per-tenant admission counters, sorted by tenant
     * name. Every tenant ever seen by admitAt or setQuota has a
     * row — including unlimited ones, so per-tenant traffic volume
     * is visible even before anyone configures a quota. */
    std::vector<TenantAdmissionStats> stats() const;

    /**
     * Mirror the admission counters into a metrics registry:
     * ccsa_admission_admitted_total / _admitted_pairs_total /
     * _rejected_total{tenant} (monotone, via Counter::increaseTo)
     * and ccsa_admission_bucket_tokens{tenant} gauges for quoted
     * tenants. Wire as a MetricsSampler probe.
     */
    void publishMetrics(MetricsRegistry& registry) const;

  private:
    struct Bucket
    {
        bool limited = false;
        Quota quota;
        double tokens = 0.0;
        std::chrono::steady_clock::time_point lastRefill{};
        std::uint64_t admitted = 0;
        std::uint64_t admittedPairs = 0;
        std::uint64_t rejected = 0;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Bucket> buckets_;
};

} // namespace ccsa

#endif // CCSA_SERVE_ADMISSION_ADMISSION_CONTROLLER_HH
