#include "serve/async_server.hh"

#include <algorithm>
#include <utility>

#include "serve/coalesce.hh"
#include "serve/metrics/slo_tracker.hh"

namespace ccsa
{

AsyncServer::AsyncServer(Engine& engine)
    : AsyncServer(engine, Options())
{
}

AsyncServer::AsyncServer(Engine::Options engineOpts)
    : AsyncServer(std::move(engineOpts), Options())
{
}

AsyncServer::AsyncServer(Engine& engine, Options opts)
    : engine_(&engine), opts_(opts), queue_(opts.queueCapacity)
{
    if (opts_.maxBatchSize == 0)
        opts_.maxBatchSize = 1;
    if (opts_.maxBatchDelay.count() < 0)
        opts_.maxBatchDelay = std::chrono::microseconds(0);
    initMetrics();
    if (!opts_.startPaused)
        start();
}

AsyncServer::AsyncServer(Engine::Options engineOpts, Options opts)
    : owned_(std::make_unique<Engine>(engineOpts)),
      engine_(owned_.get()), opts_(opts), queue_(opts.queueCapacity)
{
    if (opts_.maxBatchSize == 0)
        opts_.maxBatchSize = 1;
    if (opts_.maxBatchDelay.count() < 0)
        opts_.maxBatchDelay = std::chrono::microseconds(0);
    initMetrics();
    if (!opts_.startPaused)
        start();
}

AsyncServer::AsyncServer(std::shared_ptr<ModelRegistry> registry)
    : AsyncServer(std::move(registry), Options())
{
}

AsyncServer::AsyncServer(std::shared_ptr<ModelRegistry> registry,
                         Options opts)
    : owned_(std::make_unique<Engine>(std::move(registry))),
      engine_(owned_.get()), opts_(opts), queue_(opts.queueCapacity)
{
    if (opts_.maxBatchSize == 0)
        opts_.maxBatchSize = 1;
    if (opts_.maxBatchDelay.count() < 0)
        opts_.maxBatchDelay = std::chrono::microseconds(0);
    initMetrics();
    if (!opts_.startPaused)
        start();
}

void
AsyncServer::initMetrics()
{
    if (opts_.metrics != nullptr)
        metrics_.init(*opts_.metrics, "async");
}

AsyncServer::~AsyncServer()
{
    shutdown();
}

std::chrono::microseconds
AsyncServer::batchClassDelay() const
{
    if (opts_.maxBatchClassDelay.count() > 0)
        return opts_.maxBatchClassDelay;
    return opts_.maxBatchDelay * 8;
}

void
AsyncServer::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (shutdown_ || batcher_.joinable())
        return;
    batcher_ = std::thread([this] { batcherLoop(); });
}

void
AsyncServer::shutdown()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (shutdown_)
        return;
    // No new requests; already-queued ones stay poppable.
    queue_.close();
    // A paused server still owes answers for everything it accepted:
    // run the batcher now so the closed queue drains, then exits.
    if (!batcher_.joinable())
        batcher_ = std::thread([this] { batcherLoop(); });
    batcher_.join();
    batcher_ = std::thread();
    shutdown_ = true;
}

bool
AsyncServer::isShutdown() const
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    return shutdown_;
}

bool
AsyncServer::submitCore(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs,
    std::function<void(Result<std::vector<double>>)> complete,
    bool blocking)
{
    auto submitStart = std::chrono::steady_clock::now();

    // Per-request validation: a malformed request fails only its own
    // future and never reaches (or poisons) a shared batch.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (pairs[i].first == nullptr || pairs[i].second == nullptr) {
            complete(Status::invalidArgument(
                "submit: null tree in pair " + std::to_string(i)));
            noteFailed();
            return true;
        }
    }
    if (pairs.empty()) {
        complete(std::vector<double>{});
        if (metrics_.enabled())
            metrics_.completed->inc();
        std::lock_guard<std::mutex> lock(statsMutex_);
        completed_++;
        return true;
    }

    // Admission: charge the tenant's bucket BEFORE the request can
    // occupy queue capacity, so a flooding tenant is turned away at
    // the door instead of starving everyone behind it.
    if (opts_.admission != nullptr) {
        Status admitted =
            opts_.admission->admit(submitOpts.tenant, pairs.size());
        if (!admitted.isOk()) {
            if (metrics_.enabled())
                metrics_.rejectedQuota->inc();
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                rejectedQuota_++;
                TenantStats& row = tenants_[submitOpts.tenant];
                row.tenant = submitOpts.tenant;
                row.rejectedQuota++;
            }
            complete(admitted);
            return true;
        }
    }

    // Resolve the model AT ADMISSION: the request pins this version
    // snapshot for its whole life, so a registry hot-swap between
    // now and execution cannot change what it is answered with.
    Result<std::shared_ptr<const ModelVersion>> version =
        engine_->resolveModel(submitOpts.model);
    if (!version.isOk()) {
        complete(version.status());
        noteFailed();
        return true;
    }

    Request request;
    request.pairs = std::move(pairs);
    request.version = version.take();
    request.complete = std::move(complete);
    request.priority = submitOpts.priority;
    request.tenant = submitOpts.tenant;
    if (opts_.trace != nullptr)
        request.traceId = opts_.trace->nextChain();
    request.submitted = submitStart;
    request.enqueued = std::chrono::steady_clock::now();
    if (submitOpts.deadline.count() > 0)
        request.deadline = submitStart + submitOpts.deadline;

    QueuePush outcome = blocking ? queue_.push(std::move(request))
                                 : queue_.tryPush(std::move(request));
    switch (outcome) {
      case QueuePush::Ok: {
          if (metrics_.enabled())
              metrics_.submitted->inc();
          std::lock_guard<std::mutex> lock(statsMutex_);
          submitted_++;
          TenantStats& row = tenants_[submitOpts.tenant];
          row.tenant = submitOpts.tenant;
          row.submitted++;
          return true;
      }
      case QueuePush::Full: {
          // Backpressure: the caller keeps no future and may retry.
          if (metrics_.enabled())
              metrics_.rejectedShed->inc();
          std::lock_guard<std::mutex> lock(statsMutex_);
          rejectedShed_++;
          return false;
      }
      case QueuePush::Closed: {
          if (metrics_.enabled())
              metrics_.rejectedShutdown->inc();
          {
              std::lock_guard<std::mutex> lock(statsMutex_);
              rejectedShutdown_++;
          }
          // Push guarantees the request is untouched on rejection.
          request.complete(Status::unavailable(
              "AsyncServer: submit after shutdown"));
          return true;
      }
    }
    return true; // unreachable
}

std::future<Result<double>>
AsyncServer::submitCompare(const Ast& first, const Ast& second)
{
    return submitCompare(SubmitOptions(), first, second);
}

std::future<Result<double>>
AsyncServer::submitCompare(const std::string& model,
                           const Ast& first, const Ast& second)
{
    return submitCompare(SubmitOptions().withModel(model), first,
                         second);
}

std::future<Result<double>>
AsyncServer::submitCompare(const SubmitOptions& submitOpts,
                           const Ast& first, const Ast& second)
{
    auto promise =
        std::make_shared<std::promise<Result<double>>>();
    std::future<Result<double>> future = promise->get_future();
    submitCore(submitOpts, {Engine::PairRequest{&first, &second}},
               [promise](Result<std::vector<double>> r) {
                   if (r.isOk())
                       promise->set_value(r.value()[0]);
                   else
                       promise->set_value(r.status());
               },
               /*blocking=*/true);
    return future;
}

std::future<Result<std::vector<double>>>
AsyncServer::submitCompareMany(
    std::vector<Engine::PairRequest> pairs)
{
    return submitCompareMany(SubmitOptions(), std::move(pairs));
}

std::future<Result<std::vector<double>>>
AsyncServer::submitCompareMany(
    const std::string& model,
    std::vector<Engine::PairRequest> pairs)
{
    return submitCompareMany(SubmitOptions().withModel(model),
                             std::move(pairs));
}

std::future<Result<std::vector<double>>>
AsyncServer::submitCompareMany(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<double>>>>();
    std::future<Result<std::vector<double>>> future =
        promise->get_future();
    submitCore(submitOpts, std::move(pairs),
               [promise](Result<std::vector<double>> r) {
                   promise->set_value(std::move(r));
               },
               /*blocking=*/true);
    return future;
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
AsyncServer::submitRank(std::vector<const Ast*> candidates)
{
    return submitRank(SubmitOptions(), std::move(candidates));
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
AsyncServer::submitRank(const std::string& model,
                        std::vector<const Ast*> candidates)
{
    return submitRank(SubmitOptions().withModel(model),
                      std::move(candidates));
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
AsyncServer::submitRank(const SubmitOptions& submitOpts,
                        std::vector<const Ast*> candidates)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<Engine::RankedCandidate>>>>();
    std::future<Result<std::vector<Engine::RankedCandidate>>> future =
        promise->get_future();
    if (candidates.size() < 2) {
        promise->set_value(Status::invalidArgument(
            "submitRank: need at least two candidates"));
        noteFailed();
        return future;
    }
    std::size_t n = candidates.size();
    submitCore(submitOpts, Engine::tournamentPairs(candidates),
               [promise, n](Result<std::vector<double>> r) {
                   if (r.isOk())
                       promise->set_value(Engine::aggregateTournament(
                           n, r.value()));
                   else
                       promise->set_value(r.status());
               },
               /*blocking=*/true);
    return future;
}

std::optional<std::future<Result<double>>>
AsyncServer::trySubmitCompare(const Ast& first, const Ast& second)
{
    return trySubmitCompare(SubmitOptions(), first, second);
}

std::optional<std::future<Result<double>>>
AsyncServer::trySubmitCompare(const std::string& model,
                              const Ast& first, const Ast& second)
{
    return trySubmitCompare(SubmitOptions().withModel(model), first,
                            second);
}

std::optional<std::future<Result<double>>>
AsyncServer::trySubmitCompare(const SubmitOptions& submitOpts,
                              const Ast& first, const Ast& second)
{
    auto promise =
        std::make_shared<std::promise<Result<double>>>();
    std::future<Result<double>> future = promise->get_future();
    bool accepted =
        submitCore(submitOpts,
                   {Engine::PairRequest{&first, &second}},
                   [promise](Result<std::vector<double>> r) {
                       if (r.isOk())
                           promise->set_value(r.value()[0]);
                       else
                           promise->set_value(r.status());
                   },
                   /*blocking=*/false);
    if (!accepted)
        return std::nullopt;
    return future;
}

std::optional<std::future<Result<std::vector<double>>>>
AsyncServer::trySubmitCompareMany(
    std::vector<Engine::PairRequest> pairs)
{
    return trySubmitCompareMany(SubmitOptions(), std::move(pairs));
}

std::optional<std::future<Result<std::vector<double>>>>
AsyncServer::trySubmitCompareMany(
    const std::string& model,
    std::vector<Engine::PairRequest> pairs)
{
    return trySubmitCompareMany(SubmitOptions().withModel(model),
                                std::move(pairs));
}

std::optional<std::future<Result<std::vector<double>>>>
AsyncServer::trySubmitCompareMany(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<double>>>>();
    std::future<Result<std::vector<double>>> future =
        promise->get_future();
    bool accepted =
        submitCore(submitOpts, std::move(pairs),
                   [promise](Result<std::vector<double>> r) {
                       promise->set_value(std::move(r));
                   },
                   /*blocking=*/false);
    if (!accepted)
        return std::nullopt;
    return future;
}

void
AsyncServer::batcherLoop()
{
    Coalescer<Request> coalescer(queue_, opts_.maxBatchSize,
                                 opts_.maxBatchDelay,
                                 batchClassDelay());
    for (;;) {
        // Two-lane pop-and-coalesce (serve/coalesce.hh); nullopt
        // means the queue is closed, fully drained, and nothing is
        // held over — clean exit.
        std::optional<CoalescedBatch<Request>> batch =
            coalescer.next();
        if (!batch)
            return;

        // Expired members answer DeadlineExceeded instead of riding
        // the engine call; each one is an attributed rejection, not
        // a failure (it was accepted, but its answer came due while
        // it waited).
        expireDeadlines(
            *batch, std::chrono::steady_clock::now(), "AsyncServer",
            [this](const Request& r) {
                if (metrics_.enabled())
                    metrics_.rejectedDeadline->inc();
                std::lock_guard<std::mutex> lock(statsMutex_);
                rejectedDeadline_++;
                TenantStats& row = tenants_[r.tenant];
                row.tenant = r.tenant;
                row.rejectedDeadline++;
            });
        if (batch->requests.empty())
            continue;

        // One Engine call per model version in the batch: encodings
        // dedup across every member request OF THAT VERSION (the
        // cache namespaces keep versions apart). A failing model
        // fails only its own members.
        ModelBatches grouped = groupBatchByModel(*batch);
        std::vector<Result<std::vector<double>>> results;
        std::vector<Engine::PhaseTiming> timings(
            grouped.groups.size());
        results.reserve(grouped.groups.size());
        for (std::size_t g = 0; g < grouped.groups.size(); ++g)
            results.push_back(engine_->compareMany(
                *grouped.groups[g].version, grouped.groups[g].pairs,
                &timings[g]));
        recordBatch(batch->pairCount);

        // Fan results (or each group's failure) back out to each
        // member's promise, in submission order. Counters update
        // BEFORE the promise resolves so a caller that returns from
        // future.get() never observes stats lagging its request.
        auto completedAt = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < batch->requests.size(); ++i) {
            Request& r = batch->requests[i];
            const Result<std::vector<double>>& probs =
                results[grouped.groupOf[i]];
            recordOutcome(r, probs.isOk(), completedAt);
            if (probs.isOk()) {
                recordTrace(r, timings[grouped.groupOf[i]]);
                auto begin = probs.value().begin() +
                    static_cast<std::ptrdiff_t>(grouped.offsetOf[i]);
                r.complete(std::vector<double>(
                    begin,
                    begin + static_cast<std::ptrdiff_t>(
                                r.pairs.size())));
            } else {
                r.complete(probs.status());
            }
        }
    }
}

void
AsyncServer::recordBatch(std::size_t pairCount)
{
    if (metrics_.enabled()) {
        metrics_.batches->inc();
        metrics_.batchPairs->inc(pairCount);
    }
    std::lock_guard<std::mutex> lock(statsMutex_);
    batches_++;
    pairsServed_ += pairCount;
    batchSizes_.add(pairCount);
}

void
AsyncServer::recordOutcome(
    const Request& request, bool ok,
    std::chrono::steady_clock::time_point now)
{
    std::size_t us = latencySampleUs(now - request.enqueued);
    // Registry instruments synchronise themselves — feed them outside
    // statsMutex_ so exposition never contends with the batcher.
    if (metrics_.enabled()) {
        (ok ? metrics_.completed : metrics_.failed)->inc();
        serverLatencyHistogram(*opts_.metrics, "async",
                               request.version->name, request.tenant,
                               request.priority, opts_.metricsWindow)
            .add(us, now);
    }
    if (opts_.slo != nullptr)
        opts_.slo->record(request.version->name, request.tenant, us,
                          now);
    std::lock_guard<std::mutex> lock(statsMutex_);
    TenantStats& row = tenants_[request.tenant];
    row.tenant = request.tenant;
    if (ok) {
        completed_++;
        row.completed++;
    } else {
        failed_++;
        row.failed++;
    }
    latencyUs_.add(us);
    row.latencyUs.add(us);
}

void
AsyncServer::noteFailed()
{
    if (metrics_.enabled())
        metrics_.failed->inc();
    std::lock_guard<std::mutex> lock(statsMutex_);
    failed_++;
}

void
AsyncServer::recordTrace(const Request& request,
                         const Engine::PhaseTiming& timing)
{
    if (opts_.trace == nullptr || request.traceId == 0)
        return;
    TraceRecorder& trace = *opts_.trace;
    auto pairs = static_cast<std::uint32_t>(request.pairs.size());
    trace.record(request.traceId, TracePhase::Admission,
                 request.submitted, request.enqueued, 0,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Queue,
                 request.enqueued, request.dequeued, 0,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Coalesce,
                 request.dequeued, timing.encodeStart, 0,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Encode,
                 timing.encodeStart, timing.encodeEnd, 0,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Score,
                 timing.encodeEnd, timing.scoreEnd, 0,
                 request.tenant, pairs);
}

void
AsyncServer::sampleMetrics() const
{
    if (opts_.metrics == nullptr)
        return;
    publishServerGauges(*opts_.metrics, "async", queue_.size(),
                        queue_.capacity(),
                        engine_->perModelCacheStats());
}

ServerStats
AsyncServer::stats() const
{
    ServerStats out;
    out.queueDepth = queue_.size();
    out.queueCapacity = queue_.capacity();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out.requestsSubmitted = submitted_;
        out.requestsRejectedShed = rejectedShed_;
        out.requestsRejectedShutdown = rejectedShutdown_;
        out.requestsRejectedQuota = rejectedQuota_;
        out.requestsRejectedDeadline = rejectedDeadline_;
        out.requestsRejected = rejectedShed_ + rejectedShutdown_ +
            rejectedQuota_ + rejectedDeadline_;
        out.requestsCompleted = completed_;
        out.requestsFailed = failed_;
        out.batches = batches_;
        out.pairsServed = pairsServed_;
        out.batchSizes = batchSizes_;
        out.latencyUs = latencyUs_;
        out.tenants.reserve(tenants_.size());
        for (const auto& [name, row] : tenants_)
            out.tenants.push_back(row);
    }
    std::sort(out.tenants.begin(), out.tenants.end(),
              [](const TenantStats& a, const TenantStats& b) {
                  return a.tenant < b.tenant;
              });
    for (TenantStats& row : out.tenants)
        fillTenantPercentiles(row);
    fillLatencyPercentiles(out);
    out.engine = engine_->stats();
    out.models = engine_->perModelCacheStats();
    return out;
}

} // namespace ccsa
