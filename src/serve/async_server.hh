/**
 * @file
 * ccsa::AsyncServer — futures-based asynchronous serving with
 * cross-request dynamic batching. The Engine (PR 1) batches within
 * one call; every caller still blocks on compareMany, so batches can
 * only form inside a single request. AsyncServer is the serving-style
 * layer above it: many client threads submit comparisons and
 * immediately get a std::future back; submissions land in a bounded
 * MPMC RequestQueue (backpressure: submit() blocks when full,
 * trySubmit*() fails fast), and a dedicated batcher thread coalesces
 * pending pairs ACROSS requests into one Engine::compareMany call per
 * tick — flushing when the accumulated batch reaches maxBatchSize
 * pairs or the oldest request has waited maxBatchDelay — then fans
 * the results back out to each caller's promise.
 *
 * Determinism contract: batch composition never changes a result.
 * Each probability is produced by Engine::compareMany, whose output
 * per pair is independent of what else shares the batch, so every
 * future resolves to a value bitwise-identical to a synchronous
 * Engine call on the same model (tests/test_async_server.cc pins
 * this under an 8-producer stress load).
 *
 * Failure semantics: per-request Status, never process death. A
 * malformed request fails only its own future; a batch-level engine
 * failure is fanned out as each member request's Status; submissions
 * after shutdown() resolve immediately with Unavailable.
 *
 * Lifetime: trees referenced by a request must stay alive until its
 * future is ready. Futures are fulfilled from the batcher thread.
 * shutdown() closes the queue, drains every accepted request, joins
 * the batcher, and is idempotent; the destructor calls it.
 *
 * Multi-model serving: every submit endpoint has an overload taking
 * a model NAME, resolved through the wrapped Engine AT ADMISSION
 * time to an immutable ModelVersion snapshot — so a request admitted
 * before a registry hot-swap completes on the version it was
 * admitted under, and an unknown name fails only its own future.
 * The batcher still coalesces everything in flight into one tick,
 * then executes one Engine call per (model version, pairs) group
 * (serve/coalesce.hh groupBatchByModel); per-pair results are
 * independent of batch composition, so the determinism contract
 * holds per model.
 *
 * Admission, priorities & tracing: Options can attach a shared
 * AdmissionController (per-tenant token buckets — a dry bucket
 * answers the submit immediately with ResourceExhausted, before the
 * request touches the queue) and a TraceRecorder (every successful
 * request exports an admission->queue->coalesce->encode->score span
 * chain as chrome://tracing JSON). Every submit endpoint has a
 * SubmitOptions overload carrying tenant + priority; batch-priority
 * requests may be held past an interactive flush (Options::
 * maxBatchClassDelay, serve/coalesce.hh) so they ride full batches.
 * None of this changes any result — only whether a request is
 * admitted and when it executes.
 *
 * This queue/batcher seam is where the ROADMAP's sharded and
 * multi-process serving plug in: shards become multiple batcher
 * consumers of the same RequestQueue.
 */

#ifndef CCSA_SERVE_ASYNC_SERVER_HH
#define CCSA_SERVE_ASYNC_SERVER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/bounded_queue.hh"
#include "base/result.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/engine.hh"
#include "serve/server_stats.hh"
#include "serve/trace/trace_recorder.hh"

namespace ccsa
{

class SloTracker;

/** Async facade over an Engine with cross-request dynamic batching. */
class AsyncServer
{
  public:
    /** Builder-style serving options. */
    struct Options
    {
        /** Max requests waiting in the queue (backpressure bound). */
        std::size_t queueCapacity = 1024;
        /** Flush the current batch once it holds this many pairs. */
        std::size_t maxBatchSize = 256;
        /** Flush once the oldest pending INTERACTIVE request has
         * waited this long, even if the batch is below maxBatchSize.
         * Smaller = lower latency; larger = bigger batches / higher
         * throughput. */
        std::chrono::microseconds maxBatchDelay{500};
        /** Flush budget of the BATCH priority lane (see
         * serve/coalesce.hh): batch-class members may be held over
         * past an interactive flush until the oldest of them has
         * waited this long, so background traffic rides full batches
         * instead of fragmenting them. 0 (the default) means "8 x
         * maxBatchDelay"; values below maxBatchDelay are clamped up
         * to it. Irrelevant while every caller submits interactive
         * (the legacy paths), so the pre-priority flush behaviour is
         * unchanged by default. */
        std::chrono::microseconds maxBatchClassDelay{0};
        /** Optional per-tenant admission gate (not owned; must
         * outlive the server). Submissions a dry bucket rejects
         * resolve immediately with ResourceExhausted. nullptr =
         * admit everything (legacy behaviour). */
        AdmissionController* admission = nullptr;
        /** Optional span sink (not owned; must outlive the server).
         * Every SUCCESSFUL request leaves a full
         * admission->queue->coalesce->encode->score chain; failed or
         * rejected requests leave none, so an exported trace only
         * contains complete chains. nullptr = no tracing. */
        TraceRecorder* trace = nullptr;
        /** Optional metrics plane (serve/metrics; not owned, must
         * outlive the server). When set, the server records inline
         * request/batch counters ({server="async"}) and per-request
         * end-to-end latency into ccsa_request_latency_us windowed
         * histograms labeled {server, model, tenant, priority};
         * sampleMetrics() additionally publishes queue and
         * per-model cache gauges (wire it as a MetricsSampler
         * probe). nullptr = no instrumentation (legacy). */
        MetricsRegistry* metrics = nullptr;
        /** Optional SLO accounting (serve/metrics/slo_tracker; not
         * owned). Every completed request is record()ed under its
         * (model, tenant) — a no-op unless an objective is
         * registered for that pair. Requires nothing from
         * `metrics` (the tracker carries its own registry). */
        SloTracker* slo = nullptr;
        /** Window shape of the per-request latency histograms
         * (ccsa_request_latency_us). Note the family's shape is
         * fixed by the FIRST server to record into the registry. */
        WindowedHistogram::Options metricsWindow;
        /** Do not start the batcher thread until start() — lets tests
         * and daemons stage requests deterministically. */
        bool startPaused = false;

        Options& withQueueCapacity(std::size_t n)
        {
            queueCapacity = n;
            return *this;
        }

        Options& withMaxBatchSize(std::size_t n)
        {
            maxBatchSize = n == 0 ? 1 : n;
            return *this;
        }

        Options& withMaxBatchDelay(std::chrono::microseconds d)
        {
            maxBatchDelay = d;
            return *this;
        }

        Options& withMaxBatchClassDelay(std::chrono::microseconds d)
        {
            maxBatchClassDelay = d;
            return *this;
        }

        Options& withAdmission(AdmissionController* controller)
        {
            admission = controller;
            return *this;
        }

        Options& withTrace(TraceRecorder* recorder)
        {
            trace = recorder;
            return *this;
        }

        Options& withStartPaused(bool paused)
        {
            startPaused = paused;
            return *this;
        }

        Options& withMetrics(MetricsRegistry* registry)
        {
            metrics = registry;
            return *this;
        }

        Options& withSlo(SloTracker* tracker)
        {
            slo = tracker;
            return *this;
        }

        Options& withMetricsWindow(WindowedHistogram::Options w)
        {
            metricsWindow = w;
            return *this;
        }
    };

    /**
     * Serve an existing engine (not owned; must outlive the server).
     * Starts the batcher thread unless opts.startPaused.
     */
    explicit AsyncServer(Engine& engine);
    AsyncServer(Engine& engine, Options opts);

    /** Construct and own a fresh Engine, then serve it. */
    explicit AsyncServer(Engine::Options engineOpts);
    AsyncServer(Engine::Options engineOpts, Options opts);

    /** Construct and own a registry-backed Engine (multi-model
     * serving: submit with model names, hot-swap via the registry). */
    explicit AsyncServer(std::shared_ptr<ModelRegistry> registry);
    AsyncServer(std::shared_ptr<ModelRegistry> registry, Options opts);

    /** Equivalent to shutdown(). */
    ~AsyncServer();

    AsyncServer(const AsyncServer&) = delete;
    AsyncServer& operator=(const AsyncServer&) = delete;

    /**
     * Submit one comparison; resolves to P(first slower-or-equal),
     * exactly as Engine::compare. Blocks while the queue is full.
     * The model-name overloads serve a named registry model (the
     * unnamed forms serve the default model).
     */
    std::future<Result<double>> submitCompare(const Ast& first,
                                              const Ast& second);
    std::future<Result<double>> submitCompare(
        const std::string& model, const Ast& first,
        const Ast& second);
    std::future<Result<double>> submitCompare(
        const SubmitOptions& submitOpts, const Ast& first,
        const Ast& second);

    /**
     * Submit a pair batch; resolves to one probability per pair in
     * request order, exactly as Engine::compareMany. Blocks while
     * the queue is full.
     */
    std::future<Result<std::vector<double>>>
    submitCompareMany(std::vector<Engine::PairRequest> pairs);
    std::future<Result<std::vector<double>>>
    submitCompareMany(const std::string& model,
                      std::vector<Engine::PairRequest> pairs);
    std::future<Result<std::vector<double>>>
    submitCompareMany(const SubmitOptions& submitOpts,
                      std::vector<Engine::PairRequest> pairs);

    /**
     * Submit a ranking tournament; resolves to the same best-first
     * ranking Engine::rank would return. Blocks while the queue is
     * full. Candidate trees must outlive the future.
     */
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(std::vector<const Ast*> candidates);
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(const std::string& model,
               std::vector<const Ast*> candidates);
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(const SubmitOptions& submitOpts,
               std::vector<const Ast*> candidates);

    /**
     * Non-blocking submitCompare: @return nullopt when the queue is
     * at capacity (the request was NOT accepted — retry or shed
     * load). A shut-down server still returns a future carrying
     * Unavailable, so callers can distinguish backpressure from
     * teardown.
     */
    std::optional<std::future<Result<double>>>
    trySubmitCompare(const Ast& first, const Ast& second);
    std::optional<std::future<Result<double>>>
    trySubmitCompare(const std::string& model, const Ast& first,
                     const Ast& second);
    std::optional<std::future<Result<double>>>
    trySubmitCompare(const SubmitOptions& submitOpts,
                     const Ast& first, const Ast& second);

    /** Non-blocking submitCompareMany; same contract. */
    std::optional<std::future<Result<std::vector<double>>>>
    trySubmitCompareMany(std::vector<Engine::PairRequest> pairs);
    std::optional<std::future<Result<std::vector<double>>>>
    trySubmitCompareMany(const std::string& model,
                         std::vector<Engine::PairRequest> pairs);
    std::optional<std::future<Result<std::vector<double>>>>
    trySubmitCompareMany(const SubmitOptions& submitOpts,
                         std::vector<Engine::PairRequest> pairs);

    /** Start the batcher if construction was startPaused. No-op when
     * already running or shut down. */
    void start();

    /**
     * Stop accepting requests, drain and answer everything already
     * accepted, then join the batcher. Idempotent and safe from any
     * thread (but not from a request callback).
     */
    void shutdown();

    /** @return true once shutdown() has completed. */
    bool isShutdown() const;

    /** Snapshot of serving counters (queue, batches, latency, the
     * wrapped engine's cache counters). */
    ServerStats stats() const;

    /** Publish the pull-style gauges (queue depth/capacity, live
     * models, per-model cache counters + resident bytes) into
     * Options::metrics. No-op without a registry; wire as a
     * MetricsSampler probe. */
    void sampleMetrics() const;

    const Options& options() const { return opts_; }

    Engine& engine() { return *engine_; }
    const Engine& engine() const { return *engine_; }

  private:
    /** One queued unit of work: pairs to score, the ModelVersion
     * snapshot resolved at admission, plus a type-erased completion
     * that converts the probability slice into the endpoint's result
     * type and fulfils the caller's promise. */
    struct Request
    {
        std::vector<Engine::PairRequest> pairs;
        std::shared_ptr<const ModelVersion> version;
        std::function<void(Result<std::vector<double>>)> complete;
        /** Scheduling lane (serve/coalesce.hh two-lane flush). */
        Priority priority = Priority::kInteractive;
        /** Admission tenant ("" = default tenant). */
        std::string tenant;
        /** TraceRecorder chain id; 0 = untraced. */
        std::uint64_t traceId = 0;
        /** submitCore entry — the admission trace span's start. */
        std::chrono::steady_clock::time_point submitted;
        std::chrono::steady_clock::time_point enqueued;
        /** Stamped by the Coalescer when popped (queue-span end). */
        std::chrono::steady_clock::time_point dequeued;
        /** Absolute submit-side deadline (max() = none); the batcher
         * answers an expired request with DeadlineExceeded instead
         * of encoding it (serve/coalesce.hh expireDeadlines). */
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
    };

    /**
     * Validate + charge admission + resolve the model + enqueue a
     * request. Invalid requests (including unknown model names),
     * quota rejections, and closed-queue rejections are answered
     * through `complete` immediately (on the calling thread).
     * @return false only for a non-blocking attempt that found the
     * queue full — the one case where no future should be handed out.
     */
    bool submitCore(
        const SubmitOptions& submitOpts,
        std::vector<Engine::PairRequest> pairs,
        std::function<void(Result<std::vector<double>>)> complete,
        bool blocking);

    /** Fetch the registry-owned inline counters (ctor tail). */
    void initMetrics();

    void batcherLoop();
    void recordBatch(std::size_t pairCount);
    void recordOutcome(const Request& request, bool ok,
                       std::chrono::steady_clock::time_point now);
    void noteFailed();
    /** Emit the five-span chain of one successfully answered
     * request (no-op when untraced). */
    void recordTrace(const Request& request,
                     const Engine::PhaseTiming& timing);
    /** The batch lane's flush budget after defaulting (0 -> 8x
     * maxBatchDelay); the Coalescer clamps it >= maxBatchDelay. */
    std::chrono::microseconds batchClassDelay() const;

    std::unique_ptr<Engine> owned_;
    Engine* engine_;
    Options opts_;
    BoundedQueue<Request> queue_;
    /** Inline instruments ({server="async"}); disabled (null
     * members) without Options::metrics. */
    ServerMetrics metrics_;

    /** Guards the batcher thread lifecycle (start/shutdown). */
    mutable std::mutex lifecycleMutex_;
    std::thread batcher_;
    bool shutdown_ = false;

    /** Guards the counters below (shared by clients + batcher). */
    mutable std::mutex statsMutex_;
    std::uint64_t submitted_ = 0;
    std::uint64_t rejectedShed_ = 0;
    std::uint64_t rejectedShutdown_ = 0;
    std::uint64_t rejectedQuota_ = 0;
    std::uint64_t rejectedDeadline_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t pairsServed_ = 0;
    Histogram batchSizes_;
    /** All-time latency distribution (us); the ServerStats
     * percentile fields derive from it, exactly as a sharded
     * aggregate derives them from merged shard histograms — one
     * latency population semantics across every server flavour. */
    Histogram latencyUs_;
    /** Per-tenant counters + latency histograms, keyed by tenant
     * name; snapshotted (sorted) into ServerStats::tenants. */
    std::unordered_map<std::string, TenantStats> tenants_;
};

} // namespace ccsa

#endif // CCSA_SERVE_ASYNC_SERVER_HH
