/**
 * @file
 * The pop-and-coalesce machinery shared by AsyncServer's single
 * batcher and every ShardedServer worker. Exactly one implementation
 * exists of the subtle part — how long a batcher waits for more work
 * before executing. Since the admission-control layer that wait is
 * PRIORITY-AWARE: a Coalescer keeps a two-lane pending set inside
 * the tick, and the flush policy treats the lanes differently:
 *
 *  - pairCount reaching maxBatchSize flushes everything — a full
 *    batch is a full batch, whoever filled it;
 *  - the oldest INTERACTIVE member reaching its interactiveDelay
 *    budget (queue time counts against it) flushes the interactive
 *    lane EARLY, leaving batch-class members pending so the engine
 *    call answering latency-sensitive work stays small;
 *  - batch-class members flush when the oldest of them exhausts the
 *    larger batchDelay budget (or on queue close/drain) — batch
 *    traffic rides full batches instead of fragmenting them.
 *
 * Determinism contract: lane assignment and flush timing change only
 * WHICH requests share an engine call, never a result — every pair's
 * probability is independent of batch composition, so priorities are
 * purely a latency/throughput trade (tests pin futures bitwise
 * against a synchronous Engine under priority scheduling).
 *
 * Since the ModelRegistry refactor a request also pins the
 * ModelVersion it resolved at ADMISSION time, so one coalesced batch
 * can span models. groupBatchByModel() is the second shared piece:
 * it partitions a batch into per-version groups — one
 * Engine::compareMany(version, pairs) call each — while remembering
 * where every member request's slice lives, so the executors fan
 * results back per request and a failing model fails only its own
 * requests.
 *
 * Request is any type with `.pairs` (a vector of Engine pair
 * requests), `.version` (a shared_ptr<const ModelVersion> resolved
 * at admission), `.priority` (a ccsa::Priority lane tag),
 * `.enqueued` (a steady_clock time_point stamped at submission) and
 * `.dequeued` (a steady_clock time_point the Coalescer stamps when
 * it pops the request — the queue->coalesce trace-span boundary).
 */

#ifndef CCSA_SERVE_COALESCE_HH
#define CCSA_SERVE_COALESCE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/bounded_queue.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/engine.hh"

namespace ccsa
{

/** One batcher tick's worth of coalesced requests. */
template <typename Request>
struct CoalescedBatch
{
    std::vector<Request> requests;
    /** Total pairs across all member requests. */
    std::size_t pairCount = 0;

    /** The members' pairs flattened in submission order — the
     * argument to one Engine::compareMany call. */
    std::vector<Engine::PairRequest>
    flattenPairs() const
    {
        std::vector<Engine::PairRequest> all;
        all.reserve(pairCount);
        for (const Request& r : requests)
            all.insert(all.end(), r.pairs.begin(), r.pairs.end());
        return all;
    }
};

/** A coalesced batch partitioned into per-model-version groups. */
struct ModelBatches
{
    struct Group
    {
        /** The admission-time snapshot every member resolved. */
        std::shared_ptr<const ModelVersion> version;
        /** Members' pairs flattened in submission order — one
         * Engine::compareMany(*version, pairs) call. */
        std::vector<Engine::PairRequest> pairs;
    };

    /** Groups in first-appearance order (deterministic). */
    std::vector<Group> groups;
    /** Per batch request: which group holds its pairs... */
    std::vector<std::size_t> groupOf;
    /** ...and at which offset within that group's pairs. */
    std::vector<std::size_t> offsetOf;
};

/**
 * Partition a coalesced batch by the ModelVersion each request
 * pinned at admission (grouping on the version's namespace id, so
 * two versions of one NAME stay separate across a hot swap).
 */
template <typename Request>
ModelBatches
groupBatchByModel(const CoalescedBatch<Request>& batch)
{
    ModelBatches out;
    out.groupOf.resize(batch.requests.size());
    out.offsetOf.resize(batch.requests.size());
    std::unordered_map<std::uint64_t, std::size_t> groupIndex;
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
        const Request& r = batch.requests[i];
        std::uint64_t id = r.version ? r.version->id : 0;
        auto [it, inserted] =
            groupIndex.emplace(id, out.groups.size());
        if (inserted) {
            out.groups.emplace_back();
            out.groups.back().version = r.version;
        }
        ModelBatches::Group& g = out.groups[it->second];
        out.groupOf[i] = it->second;
        out.offsetOf[i] = g.pairs.size();
        g.pairs.insert(g.pairs.end(), r.pairs.begin(),
                       r.pairs.end());
    }
    return out;
}

/**
 * Answer-and-remove every batch member whose submit-side deadline
 * (SubmitOptions::withDeadline, stamped as an absolute
 * Request::deadline at admission) expired by `now`: each expired
 * member completes with Status::DeadlineExceeded and the batch
 * shrinks in place, so an expired request is never encoded. Shared
 * by every batcher flavour (AsyncServer, ShardedServer worker,
 * ProcessShardedServer dispatcher) so "deadline bounds queue wait,
 * not execution" is implemented — and testable — exactly once.
 * `onExpired(request)` runs before each expired member's completion
 * — the hook where a server attributes the rejection to its
 * counters (servers that count inside a completion wrapper pass a
 * no-op).
 * @return the number of members expired.
 */
template <typename Request, typename OnExpired>
std::size_t
expireDeadlines(CoalescedBatch<Request>& batch,
                std::chrono::steady_clock::time_point now,
                const char* server, OnExpired onExpired)
{
    std::size_t kept = 0;
    std::size_t expired = 0;
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
        Request& r = batch.requests[i];
        if (r.deadline <= now) {
            batch.pairCount -= r.pairs.size();
            ++expired;
            onExpired(r);
            r.complete(Status::deadlineExceeded(
                std::string(server) +
                ": deadline expired while queued"));
            continue;
        }
        if (kept != i)
            batch.requests[kept] = std::move(r);
        ++kept;
    }
    batch.requests.resize(kept);
    return expired;
}

/**
 * The two-lane pop-and-coalesce state machine. One Coalescer per
 * batcher thread; call next() in a loop until it returns nullopt
 * (queue closed AND drained AND nothing held over — the clean-exit
 * signal). Batch-lane members a tick held back stay pending inside
 * the Coalescer between next() calls.
 */
template <typename Request>
class Coalescer
{
  public:
    /**
     * @param interactiveDelay flush budget of the interactive lane
     *   (AsyncServer::Options::maxBatchDelay);
     * @param batchDelay flush budget of the batch lane — clamped up
     *   to interactiveDelay so batch traffic never flushes EARLIER
     *   than interactive traffic.
     */
    Coalescer(BoundedQueue<Request>& queue, std::size_t maxBatchSize,
              std::chrono::microseconds interactiveDelay,
              std::chrono::microseconds batchDelay)
        : queue_(queue),
          maxBatchSize_(maxBatchSize == 0 ? 1 : maxBatchSize),
          interactiveDelay_(interactiveDelay),
          batchDelay_(batchDelay < interactiveDelay
                          ? interactiveDelay
                          : batchDelay)
    {
    }

    /**
     * Block for the next batch of work.
     * @return nullopt only when the queue is closed, drained, and no
     * batch-lane members are held over.
     */
    std::optional<CoalescedBatch<Request>>
    next()
    {
        for (;;) {
            if (pending_.empty()) {
                std::optional<Request> first = queue_.pop();
                if (!first)
                    return std::nullopt; // closed & fully drained
                admit(std::move(*first));
            }
            for (;;) {
                if (pendingPairs_ >= maxBatchSize_)
                    return flushAll();
                auto now = Clock::now();
                Clock::time_point deadline = earliestDeadline();
                if (now >= deadline) {
                    // Budget spent: still sweep up anything already
                    // queued — free coalescing under backlog — then
                    // flush whichever lane(s) came due.
                    while (pendingPairs_ < maxBatchSize_) {
                        std::optional<Request> more = queue_.tryPop();
                        if (!more)
                            break;
                        admit(std::move(*more));
                    }
                    if (pendingPairs_ >= maxBatchSize_)
                        return flushAll();
                    CoalescedBatch<Request> due =
                        flushDue(Clock::now());
                    if (!due.requests.empty())
                        return due;
                    continue; // clock jitter: nothing was actually due
                }
                std::optional<Request> next = queue_.popFor(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(deadline - now));
                if (next) {
                    admit(std::move(*next));
                    continue;
                }
                if (queue_.closed()) {
                    // Drained for good: nothing else will ever
                    // arrive, so holding the batch lane back buys
                    // nothing — answer everything accepted.
                    return flushAll();
                }
                // Timed out: the next loop iteration classifies the
                // now-expired deadline and flushes.
            }
        }
    }

    /** Batch-lane members currently held over between ticks. */
    std::size_t pendingRequests() const { return pending_.size(); }

  private:
    using Clock = std::chrono::steady_clock;

    Clock::time_point
    deadlineOf(const Request& r) const
    {
        return r.enqueued +
            (r.priority == Priority::kBatch ? batchDelay_
                                            : interactiveDelay_);
    }

    /** Earliest member deadline. Pending holds at most
     * maxBatchSize requests (every queued request carries >= 1
     * pair), so the scan is cheap and bounded. */
    Clock::time_point
    earliestDeadline() const
    {
        Clock::time_point earliest = Clock::time_point::max();
        for (const Request& r : pending_) {
            Clock::time_point d = deadlineOf(r);
            if (d < earliest)
                earliest = d;
        }
        return earliest;
    }

    void
    admit(Request&& r)
    {
        r.dequeued = Clock::now();
        pendingPairs_ += r.pairs.size();
        pending_.push_back(std::move(r));
    }

    CoalescedBatch<Request>
    flushAll()
    {
        CoalescedBatch<Request> batch;
        batch.requests = std::move(pending_);
        batch.pairCount = pendingPairs_;
        pending_.clear();
        pendingPairs_ = 0;
        return batch;
    }

    /** Flush the lane(s) whose budget expired by `now`: an expired
     * batch lane takes everything with it, while an expired
     * interactive lane alone leaves batch-class members pending so
     * the latency-sensitive engine call stays small. */
    CoalescedBatch<Request>
    flushDue(Clock::time_point now)
    {
        bool haveBatch = false;
        bool batchDue = false;
        for (const Request& r : pending_) {
            if (r.priority != Priority::kBatch)
                continue;
            haveBatch = true;
            if (deadlineOf(r) <= now)
                batchDue = true;
        }
        if (!haveBatch || batchDue)
            return flushAll();

        CoalescedBatch<Request> batch;
        std::vector<Request> held;
        for (Request& r : pending_) {
            if (r.priority == Priority::kBatch) {
                held.push_back(std::move(r));
            } else {
                batch.pairCount += r.pairs.size();
                batch.requests.push_back(std::move(r));
            }
        }
        pending_ = std::move(held);
        pendingPairs_ -= batch.pairCount;
        // Nothing interactive was actually due (clock jitter): the
        // caller still gets a valid (possibly empty) batch; an empty
        // one simply loops back into next()'s accumulate phase.
        return batch;
    }

    BoundedQueue<Request>& queue_;
    std::size_t maxBatchSize_;
    std::chrono::microseconds interactiveDelay_;
    std::chrono::microseconds batchDelay_;
    std::vector<Request> pending_;
    std::size_t pendingPairs_ = 0;
};

} // namespace ccsa

#endif // CCSA_SERVE_COALESCE_HH
