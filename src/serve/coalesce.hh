/**
 * @file
 * The pop-and-coalesce state machine shared by AsyncServer's single
 * batcher and every ShardedServer worker. Exactly one implementation
 * exists of the subtle part — how long a batcher waits for more work
 * before executing: block for the tick's first request, then keep
 * popping until the batch holds maxBatchSize pairs or the oldest
 * member has waited maxBatchDelay since submission (queue time
 * counts against the budget), and once the budget is spent still
 * sweep up anything already queued — free coalescing under backlog.
 *
 * Request is any type with `.pairs` (a vector of Engine pair
 * requests) and `.enqueued` (a steady_clock time_point).
 */

#ifndef CCSA_SERVE_COALESCE_HH
#define CCSA_SERVE_COALESCE_HH

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "base/bounded_queue.hh"
#include "serve/engine.hh"

namespace ccsa
{

/** One batcher tick's worth of coalesced requests. */
template <typename Request>
struct CoalescedBatch
{
    std::vector<Request> requests;
    /** Total pairs across all member requests. */
    std::size_t pairCount = 0;

    /** The members' pairs flattened in submission order — the
     * argument to one Engine::compareMany call. */
    std::vector<Engine::PairRequest>
    flattenPairs() const
    {
        std::vector<Engine::PairRequest> all;
        all.reserve(pairCount);
        for (const Request& r : requests)
            all.insert(all.end(), r.pairs.begin(), r.pairs.end());
        return all;
    }
};

/**
 * Block for the next batch of work.
 * @return nullopt only when the queue is closed AND drained — the
 * batcher's clean-exit signal.
 */
template <typename Request>
std::optional<CoalescedBatch<Request>>
popCoalescedBatch(BoundedQueue<Request>& queue,
                  std::size_t maxBatchSize,
                  std::chrono::microseconds maxBatchDelay)
{
    std::optional<Request> first = queue.pop();
    if (!first)
        return std::nullopt;

    CoalescedBatch<Request> batch;
    batch.pairCount = first->pairs.size();
    batch.requests.push_back(std::move(*first));

    auto deadline = batch.requests[0].enqueued + maxBatchDelay;
    while (batch.pairCount < maxBatchSize) {
        auto now = std::chrono::steady_clock::now();
        std::optional<Request> next;
        if (now >= deadline) {
            next = queue.tryPop();
            if (!next)
                break; // budget spent and nothing ready
        } else {
            next = queue.popFor(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline - now));
            if (!next)
                break; // timed out, or closed and drained
        }
        batch.pairCount += next->pairs.size();
        batch.requests.push_back(std::move(*next));
    }
    return batch;
}

} // namespace ccsa

#endif // CCSA_SERVE_COALESCE_HH
