/**
 * @file
 * The pop-and-coalesce state machine shared by AsyncServer's single
 * batcher and every ShardedServer worker. Exactly one implementation
 * exists of the subtle part — how long a batcher waits for more work
 * before executing: block for the tick's first request, then keep
 * popping until the batch holds maxBatchSize pairs or the oldest
 * member has waited maxBatchDelay since submission (queue time
 * counts against the budget), and once the budget is spent still
 * sweep up anything already queued — free coalescing under backlog.
 *
 * Since the ModelRegistry refactor a request also pins the
 * ModelVersion it resolved at ADMISSION time, so one coalesced batch
 * can span models. groupBatchByModel() is the second shared piece:
 * it partitions a batch into per-version groups — one
 * Engine::compareMany(version, pairs) call each — while remembering
 * where every member request's slice lives, so the executors fan
 * results back per request and a failing model fails only its own
 * requests.
 *
 * Request is any type with `.pairs` (a vector of Engine pair
 * requests), `.version` (a shared_ptr<const ModelVersion> resolved
 * at admission) and `.enqueued` (a steady_clock time_point).
 */

#ifndef CCSA_SERVE_COALESCE_HH
#define CCSA_SERVE_COALESCE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/bounded_queue.hh"
#include "serve/engine.hh"

namespace ccsa
{

/** One batcher tick's worth of coalesced requests. */
template <typename Request>
struct CoalescedBatch
{
    std::vector<Request> requests;
    /** Total pairs across all member requests. */
    std::size_t pairCount = 0;

    /** The members' pairs flattened in submission order — the
     * argument to one Engine::compareMany call. */
    std::vector<Engine::PairRequest>
    flattenPairs() const
    {
        std::vector<Engine::PairRequest> all;
        all.reserve(pairCount);
        for (const Request& r : requests)
            all.insert(all.end(), r.pairs.begin(), r.pairs.end());
        return all;
    }
};

/** A coalesced batch partitioned into per-model-version groups. */
struct ModelBatches
{
    struct Group
    {
        /** The admission-time snapshot every member resolved. */
        std::shared_ptr<const ModelVersion> version;
        /** Members' pairs flattened in submission order — one
         * Engine::compareMany(*version, pairs) call. */
        std::vector<Engine::PairRequest> pairs;
    };

    /** Groups in first-appearance order (deterministic). */
    std::vector<Group> groups;
    /** Per batch request: which group holds its pairs... */
    std::vector<std::size_t> groupOf;
    /** ...and at which offset within that group's pairs. */
    std::vector<std::size_t> offsetOf;
};

/**
 * Partition a coalesced batch by the ModelVersion each request
 * pinned at admission (grouping on the version's namespace id, so
 * two versions of one NAME stay separate across a hot swap).
 */
template <typename Request>
ModelBatches
groupBatchByModel(const CoalescedBatch<Request>& batch)
{
    ModelBatches out;
    out.groupOf.resize(batch.requests.size());
    out.offsetOf.resize(batch.requests.size());
    std::unordered_map<std::uint64_t, std::size_t> groupIndex;
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
        const Request& r = batch.requests[i];
        std::uint64_t id = r.version ? r.version->id : 0;
        auto [it, inserted] =
            groupIndex.emplace(id, out.groups.size());
        if (inserted) {
            out.groups.emplace_back();
            out.groups.back().version = r.version;
        }
        ModelBatches::Group& g = out.groups[it->second];
        out.groupOf[i] = it->second;
        out.offsetOf[i] = g.pairs.size();
        g.pairs.insert(g.pairs.end(), r.pairs.begin(),
                       r.pairs.end());
    }
    return out;
}

/**
 * Block for the next batch of work.
 * @return nullopt only when the queue is closed AND drained — the
 * batcher's clean-exit signal.
 */
template <typename Request>
std::optional<CoalescedBatch<Request>>
popCoalescedBatch(BoundedQueue<Request>& queue,
                  std::size_t maxBatchSize,
                  std::chrono::microseconds maxBatchDelay)
{
    std::optional<Request> first = queue.pop();
    if (!first)
        return std::nullopt;

    CoalescedBatch<Request> batch;
    batch.pairCount = first->pairs.size();
    batch.requests.push_back(std::move(*first));

    auto deadline = batch.requests[0].enqueued + maxBatchDelay;
    while (batch.pairCount < maxBatchSize) {
        auto now = std::chrono::steady_clock::now();
        std::optional<Request> next;
        if (now >= deadline) {
            next = queue.tryPop();
            if (!next)
                break; // budget spent and nothing ready
        } else {
            next = queue.popFor(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline - now));
            if (!next)
                break; // timed out, or closed and drained
        }
        batch.pairCount += next->pairs.size();
        batch.requests.push_back(std::move(*next));
    }
    return batch;
}

} // namespace ccsa

#endif // CCSA_SERVE_COALESCE_HH
