#include "serve/encoding_cache.hh"

#include <algorithm>
#include <atomic>

#include "base/logging.hh"

namespace ccsa
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
/** Second stream: different offset so the two words are independent. */
constexpr std::uint64_t kFnvOffset2 = 0x6C62272E07BB0142ULL;

inline void
mix(std::uint64_t& h, std::uint64_t v)
{
    h = (h ^ v) * kFnvPrime;
}

} // namespace

AstDigest
digestAst(const Ast& ast)
{
    AstDigest d;
    d.lo = kFnvOffset;
    d.hi = kFnvOffset2;
    mix(d.lo, static_cast<std::uint64_t>(ast.size()));
    mix(d.hi, static_cast<std::uint64_t>(ast.size()));
    for (int id = 0; id < ast.size(); ++id) {
        const AstNode& n = ast.node(id);
        std::uint64_t word =
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(n.parent)) << 32) |
            static_cast<std::uint32_t>(n.kind);
        mix(d.lo, word);
        mix(d.hi, word + 0x9E3779B97F4A7C15ULL);
    }
    return d;
}

std::uint64_t
allocateModelNamespace()
{
    // 0 is never handed out: it stays the "no model" sentinel a
    // default-constructed EncodingKey carries.
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1);
}

EncodingCache::EncodingCache(std::size_t capacity,
                             LatentPrecision precision)
    : capacity_(capacity), precision_(precision)
{
    if (capacity_ == 0)
        fatal("EncodingCache: capacity must be >= 1");
}

bool
EncodingCache::lookup(const EncodingKey& key, Tensor* out)
{
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        ++perNamespace_[key.modelVersion].misses;
        return false;
    }
    ++stats_.hits;
    ++perNamespace_[key.modelVersion].hits;
    order_.splice(order_.begin(), order_, it->second);
    if (out != nullptr)
        *out = decodeLatent(it->second->stored);
    return true;
}

void
EncodingCache::insert(const EncodingKey& key, Tensor latent)
{
    StoredLatent stored = encodeLatent(latent, precision_);
    const std::size_t bytes = stored.payloadBytes();
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Overwrite of a resident key: residents is unchanged and
        // residentBytes swaps the old payload for the new one — the
        // new bytes are added before the old are subtracted so an
        // unsigned counter can't transiently underflow.
        NamespaceStats& ns = perNamespace_[key.modelVersion];
        ns.residentBytes += bytes;
        ns.residentBytes -= it->second->stored.payloadBytes();
        it->second->stored = std::move(stored);
        order_.splice(order_.begin(), order_, it->second);
        return;
    }
    order_.push_front(Entry{key, std::move(stored)});
    entries_.emplace(key, order_.begin());
    NamespaceStats& inserted = perNamespace_[key.modelVersion];
    ++inserted.residents;
    inserted.residentBytes += bytes;
    while (entries_.size() > capacity_) {
        const Entry& victimEntry = order_.back();
        const EncodingKey& victim = victimEntry.key;
        NamespaceStats& ns = perNamespace_[victim.modelVersion];
        ++ns.evictions;
        --ns.residents;
        ns.residentBytes -= victimEntry.stored.payloadBytes();
        entries_.erase(victim);
        order_.pop_back();
        ++stats_.evictions;
    }

    // Bound the per-namespace counter map: continuous hot-swap mints
    // a fresh namespace per publish, and retired versions' rows would
    // otherwise accumulate forever. Once the map far exceeds anything
    // the resident set can reference, drop fully-evicted namespaces —
    // their counters are only lost long after the version retired.
    if (perNamespace_.size() >
        std::max<std::size_t>(64, 4 * capacity_)) {
        for (auto it = perNamespace_.begin();
             it != perNamespace_.end();) {
            if (it->second.residents == 0 &&
                !(it->first == key.modelVersion))
                it = perNamespace_.erase(it);
            else
                ++it;
        }
    }
}

void
EncodingCache::clear()
{
    entries_.clear();
    order_.clear();
    for (auto& [ns, stats] : perNamespace_) {
        stats.residents = 0;
        stats.residentBytes = 0;
    }
}

void
EncodingCache::clearNamespace(std::uint64_t modelVersion)
{
    for (auto it = order_.begin(); it != order_.end();) {
        if (it->key.modelVersion == modelVersion) {
            entries_.erase(it->key);
            it = order_.erase(it);
        } else {
            ++it;
        }
    }
    NamespaceStats& ns = perNamespace_[modelVersion];
    ns.residents = 0;
    ns.residentBytes = 0;
}

EncodingCache::NamespaceStats
EncodingCache::namespaceStats(std::uint64_t modelVersion) const
{
    auto it = perNamespace_.find(modelVersion);
    return it == perNamespace_.end() ? NamespaceStats() : it->second;
}

ShardedEncodingCache::ShardedEncodingCache(
    std::size_t numShards, std::size_t capacityPerShard,
    LatentPrecision precision)
    : ShardedEncodingCache(numShards, capacityPerShard, precision,
                           /*namespaceAware=*/false)
{
}

ShardedEncodingCache::ShardedEncodingCache(
    std::size_t numShards, std::size_t capacityPerShard,
    LatentPrecision precision, bool namespaceAware)
    : capacityPerShard_(capacityPerShard), precision_(precision),
      namespaceAware_(namespaceAware)
{
    if (numShards == 0)
        fatal("ShardedEncodingCache: numShards must be >= 1");
    shards_.reserve(numShards);
    for (std::size_t s = 0; s < numShards; ++s)
        shards_.push_back(
            std::make_unique<Shard>(capacityPerShard, precision));
}

std::shared_ptr<ShardedEncodingCache>
ShardedEncodingCache::makeShared(std::size_t numShards,
                                 std::size_t capacityPerShard,
                                 LatentPrecision precision)
{
    return std::shared_ptr<ShardedEncodingCache>(
        new ShardedEncodingCache(numShards, capacityPerShard,
                                 precision,
                                 /*namespaceAware=*/true));
}

std::uint64_t
ShardedEncodingCache::namespaceFor(
    const std::shared_ptr<const void>& owner)
{
    if (!namespaceAware_)
        fatal("ShardedEncodingCache: namespaceFor on a cache not "
              "built via makeShared()");
    if (!owner)
        fatal("ShardedEncodingCache: namespaceFor(nullptr)");
    std::lock_guard<std::mutex> lock(namespaceMutex_);
    // Reclaim memo rows whose model died: under continuous hot-swap
    // (a fresh model object per publish) the memo would otherwise
    // grow by one entry per retired version forever.
    for (auto it = namespaces_.begin(); it != namespaces_.end();) {
        if (it->second.owner.expired())
            it = namespaces_.erase(it);
        else
            ++it;
    }
    NamespaceEntry& entry = namespaces_[owner.get()];
    // A dead weak_ptr means the address was recycled by a NEW model:
    // mint a fresh id so the newcomer can never read the old
    // tenant's latents. (The sweep above already dropped such rows,
    // but a zero id covers the freshly-inserted case too.)
    if (entry.id == 0 || entry.owner.expired()) {
        entry.owner = owner;
        entry.id = allocateModelNamespace();
    }
    return entry.id;
}

bool
ShardedEncodingCache::lookup(const EncodingKey& key, Tensor* out)
{
    Shard& shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Decoded under the partition lock: the caller gets a private
    // Tensor and never holds a pointer into a concurrently evicting
    // cache.
    return shard.cache.lookup(key, out);
}

void
ShardedEncodingCache::insert(const EncodingKey& key, Tensor latent)
{
    Shard& shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.insert(key, std::move(latent));
}

void
ShardedEncodingCache::clear()
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->cache.clear();
    }
}

void
ShardedEncodingCache::clearNamespace(std::uint64_t modelVersion)
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->cache.clearNamespace(modelVersion);
    }
}

std::size_t
ShardedEncodingCache::size() const
{
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->cache.size();
    }
    return total;
}

std::size_t
ShardedEncodingCache::shardSize(std::size_t shard) const
{
    if (shard >= shards_.size())
        fatal("ShardedEncodingCache: shard index out of range");
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    return shards_[shard]->cache.size();
}

EncodingCache::Stats
ShardedEncodingCache::stats() const
{
    EncodingCache::Stats total;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        const EncodingCache::Stats& s = shard->cache.stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
    }
    return total;
}

EncodingCache::Stats
ShardedEncodingCache::shardStats(std::size_t shard) const
{
    if (shard >= shards_.size())
        fatal("ShardedEncodingCache: shard index out of range");
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    return shards_[shard]->cache.stats();
}

EncodingCache::NamespaceStats
ShardedEncodingCache::namespaceStats(std::uint64_t modelVersion) const
{
    EncodingCache::NamespaceStats total;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        EncodingCache::NamespaceStats s =
            shard->cache.namespaceStats(modelVersion);
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
        total.residents += s.residents;
        total.residentBytes += s.residentBytes;
    }
    return total;
}

} // namespace ccsa
