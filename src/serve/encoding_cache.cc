#include "serve/encoding_cache.hh"

#include "base/logging.hh"

namespace ccsa
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
/** Second stream: different offset so the two words are independent. */
constexpr std::uint64_t kFnvOffset2 = 0x6C62272E07BB0142ULL;

inline void
mix(std::uint64_t& h, std::uint64_t v)
{
    h = (h ^ v) * kFnvPrime;
}

} // namespace

AstDigest
digestAst(const Ast& ast)
{
    AstDigest d;
    d.lo = kFnvOffset;
    d.hi = kFnvOffset2;
    mix(d.lo, static_cast<std::uint64_t>(ast.size()));
    mix(d.hi, static_cast<std::uint64_t>(ast.size()));
    for (int id = 0; id < ast.size(); ++id) {
        const AstNode& n = ast.node(id);
        std::uint64_t word =
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(n.parent)) << 32) |
            static_cast<std::uint32_t>(n.kind);
        mix(d.lo, word);
        mix(d.hi, word + 0x9E3779B97F4A7C15ULL);
    }
    return d;
}

EncodingCache::EncodingCache(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        fatal("EncodingCache: capacity must be >= 1");
}

const Tensor*
EncodingCache::lookup(const AstDigest& key)
{
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->latent;
}

void
EncodingCache::insert(const AstDigest& key, Tensor latent)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second->latent = std::move(latent);
        order_.splice(order_.begin(), order_, it->second);
        return;
    }
    order_.push_front(Entry{key, std::move(latent)});
    entries_.emplace(key, order_.begin());
    while (entries_.size() > capacity_) {
        entries_.erase(order_.back().key);
        order_.pop_back();
        ++stats_.evictions;
    }
}

void
EncodingCache::clear()
{
    entries_.clear();
    order_.clear();
}

ShardedEncodingCache::ShardedEncodingCache(
    std::size_t numShards, std::size_t capacityPerShard)
    : capacityPerShard_(capacityPerShard)
{
    if (numShards == 0)
        fatal("ShardedEncodingCache: numShards must be >= 1");
    shards_.reserve(numShards);
    for (std::size_t s = 0; s < numShards; ++s)
        shards_.push_back(std::make_unique<Shard>(capacityPerShard));
}

bool
ShardedEncodingCache::lookup(const AstDigest& key, Tensor* out)
{
    Shard& shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const Tensor* hit = shard.cache.lookup(key);
    if (hit == nullptr)
        return false;
    *out = *hit;
    return true;
}

void
ShardedEncodingCache::insert(const AstDigest& key, Tensor latent)
{
    Shard& shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.insert(key, std::move(latent));
}

void
ShardedEncodingCache::clear()
{
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->cache.clear();
    }
}

std::size_t
ShardedEncodingCache::size() const
{
    std::size_t total = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->cache.size();
    }
    return total;
}

std::size_t
ShardedEncodingCache::shardSize(std::size_t shard) const
{
    if (shard >= shards_.size())
        fatal("ShardedEncodingCache: shard index out of range");
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    return shards_[shard]->cache.size();
}

EncodingCache::Stats
ShardedEncodingCache::stats() const
{
    EncodingCache::Stats total;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        const EncodingCache::Stats& s = shard->cache.stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
    }
    return total;
}

EncodingCache::Stats
ShardedEncodingCache::shardStats(std::size_t shard) const
{
    if (shard >= shards_.size())
        fatal("ShardedEncodingCache: shard index out of range");
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    return shards_[shard]->cache.stats();
}

} // namespace ccsa
