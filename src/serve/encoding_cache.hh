/**
 * @file
 * LRU cache of encoded latents keyed by AST content. The encoders
 * consume only the node-kind sequence and the tree shape, so two
 * structurally identical trees — however they were parsed or where
 * they live in memory — share one cache entry. Serving workloads are
 * dominated by repeated candidates (ranking tournaments, regression
 * watch over commit history), which is exactly what an LRU rewards.
 *
 * Keys are 128-bit structural digests (two independent FNV-1a streams
 * over the kind/parent arrays); a collision needs ~2^64 distinct
 * trees, far beyond any corpus this system serves.
 */

#ifndef CCSA_SERVE_ENCODING_CACHE_HH
#define CCSA_SERVE_ENCODING_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ast/ast.hh"
#include "tensor/tensor.hh"

namespace ccsa
{

/** 128-bit structural digest of an AST. */
struct AstDigest
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const AstDigest& other) const
    {
        return lo == other.lo && hi == other.hi;
    }
};

/** Digest the model-visible content of a tree (kinds + shape). */
AstDigest digestAst(const Ast& ast);

/** Hash functor so AstDigest can key unordered containers. */
struct AstDigestHash
{
    std::size_t
    operator()(const AstDigest& d) const
    {
        // lo is already a well-mixed 64-bit hash; fold hi in.
        return static_cast<std::size_t>(
            d.lo ^ (d.hi * 0x9E3779B97F4A7C15ULL));
    }
};

/**
 * Least-recently-used map from AST digest to encoded latent (a
 * 1 x d row vector). Not internally synchronised: callers go through
 * ShardedEncodingCache, which wraps each partition in its own mutex.
 * Lookup and insert are NOT one atomic unit there — two engines can
 * miss on the same digest and both encode it, a benign duplicate
 * since encoding is deterministic and the last insert wins with an
 * identical latent.
 */
class EncodingCache
{
  public:
    /** Running hit/miss/eviction counters. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /** @param capacity maximum resident entries (>= 1). */
    explicit EncodingCache(std::size_t capacity);

    /**
     * Look up a digest, refreshing its recency on a hit.
     * @return pointer to the cached latent, or nullptr on a miss.
     * The pointer stays valid until the entry is evicted or the
     * cache is cleared.
     */
    const Tensor* lookup(const AstDigest& key);

    /**
     * Insert (or overwrite) an entry, evicting the least recently
     * used entries when over capacity.
     */
    void insert(const AstDigest& key, Tensor latent);

    /** Drop every entry (counters are preserved). */
    void clear();

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    const Stats& stats() const { return stats_; }

  private:
    struct Entry
    {
        AstDigest key;
        Tensor latent;
    };

    /** Front = most recently used. */
    std::list<Entry> order_;
    std::unordered_map<AstDigest, std::list<Entry>::iterator,
                       AstDigestHash> entries_;
    std::size_t capacity_;
    Stats stats_;
};

/**
 * A partitioned, independently-locked view over N EncodingCaches —
 * the shared cache under sharded serving. Every digest is owned by
 * exactly one partition (`shardOf(digest) == digest % numShards` on
 * the digest's low word), so a tree's latent lives on exactly one
 * shard no matter which worker encodes it, per-shard hit/miss/
 * eviction counters partition the unsharded counters exactly, and
 * eviction pressure in one shard can never invalidate an entry held
 * by another. Each partition has its own mutex: concurrent workers
 * touching different shards never contend.
 *
 * With numShards == 1 this is behaviourally identical to a single
 * mutex-guarded EncodingCache — the Engine always goes through this
 * class so the sharded and unsharded code paths cannot drift.
 */
class ShardedEncodingCache
{
  public:
    /**
     * @param numShards partition count (>= 1).
     * @param capacityPerShard LRU capacity of EACH partition (>= 1);
     * aggregate capacity is numShards * capacityPerShard, which is
     * the point of sharding: memory scales with the shard count while
     * per-shard eviction behaviour stays local.
     */
    ShardedEncodingCache(std::size_t numShards,
                         std::size_t capacityPerShard);

    ShardedEncodingCache(const ShardedEncodingCache&) = delete;
    ShardedEncodingCache& operator=(const ShardedEncodingCache&) =
        delete;

    /** @return the partition that owns a digest under n shards. */
    static std::size_t
    shardOf(const AstDigest& key, std::size_t numShards)
    {
        return static_cast<std::size_t>(key.lo % numShards);
    }

    /** @return the partition that owns a digest in this cache. */
    std::size_t
    shardOf(const AstDigest& key) const
    {
        return shardOf(key, shards_.size());
    }

    /**
     * Look up a digest on its owning partition, refreshing recency
     * on a hit. The latent is copied out under the partition lock so
     * the caller never holds a pointer into a concurrently evicting
     * cache.
     * @return true and fill *out on a hit; false on a miss.
     */
    bool lookup(const AstDigest& key, Tensor* out);

    /** Insert (or overwrite) on the owning partition, evicting that
     * partition's LRU entries when it is over capacity. */
    void insert(const AstDigest& key, Tensor latent);

    /** Drop every entry in every partition (counters preserved). */
    void clear();

    /** @return total resident entries across all partitions. */
    std::size_t size() const;

    /** @return resident entries in one partition. */
    std::size_t shardSize(std::size_t shard) const;

    /** @return counters summed across partitions — by construction
     * equal to what one unsharded cache serving the same keys under
     * the same per-key eviction pressure would report. */
    EncodingCache::Stats stats() const;

    /** @return one partition's counters. */
    EncodingCache::Stats shardStats(std::size_t shard) const;

    std::size_t numShards() const { return shards_.size(); }
    std::size_t capacityPerShard() const { return capacityPerShard_; }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        EncodingCache cache;

        explicit Shard(std::size_t capacity) : cache(capacity) {}
    };

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t capacityPerShard_;
};

} // namespace ccsa

#endif // CCSA_SERVE_ENCODING_CACHE_HH
