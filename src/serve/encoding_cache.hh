/**
 * @file
 * LRU cache of encoded latents keyed by AST content. The encoders
 * consume only the node-kind sequence and the tree shape, so two
 * structurally identical trees — however they were parsed or where
 * they live in memory — share one cache entry. Serving workloads are
 * dominated by repeated candidates (ranking tournaments, regression
 * watch over commit history), which is exactly what an LRU rewards.
 *
 * Keys are 128-bit structural digests (two independent FNV-1a streams
 * over the kind/parent arrays); a collision needs ~2^64 distinct
 * trees, far beyond any corpus this system serves.
 */

#ifndef CCSA_SERVE_ENCODING_CACHE_HH
#define CCSA_SERVE_ENCODING_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ast/ast.hh"
#include "tensor/tensor.hh"

namespace ccsa
{

/** 128-bit structural digest of an AST. */
struct AstDigest
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const AstDigest& other) const
    {
        return lo == other.lo && hi == other.hi;
    }
};

/** Digest the model-visible content of a tree (kinds + shape). */
AstDigest digestAst(const Ast& ast);

/** Hash functor so AstDigest can key unordered containers. */
struct AstDigestHash
{
    std::size_t
    operator()(const AstDigest& d) const
    {
        // lo is already a well-mixed 64-bit hash; fold hi in.
        return static_cast<std::size_t>(
            d.lo ^ (d.hi * 0x9E3779B97F4A7C15ULL));
    }
};

/**
 * Least-recently-used map from AST digest to encoded latent (a
 * 1 x d row vector). Not internally synchronised: the Engine guards
 * it with its own mutex so lookup+insert batches stay atomic.
 */
class EncodingCache
{
  public:
    /** Running hit/miss/eviction counters. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /** @param capacity maximum resident entries (>= 1). */
    explicit EncodingCache(std::size_t capacity);

    /**
     * Look up a digest, refreshing its recency on a hit.
     * @return pointer to the cached latent, or nullptr on a miss.
     * The pointer stays valid until the entry is evicted or the
     * cache is cleared.
     */
    const Tensor* lookup(const AstDigest& key);

    /**
     * Insert (or overwrite) an entry, evicting the least recently
     * used entries when over capacity.
     */
    void insert(const AstDigest& key, Tensor latent);

    /** Drop every entry (counters are preserved). */
    void clear();

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    const Stats& stats() const { return stats_; }

  private:
    struct Entry
    {
        AstDigest key;
        Tensor latent;
    };

    /** Front = most recently used. */
    std::list<Entry> order_;
    std::unordered_map<AstDigest, std::list<Entry>::iterator,
                       AstDigestHash> entries_;
    std::size_t capacity_;
    Stats stats_;
};

} // namespace ccsa

#endif // CCSA_SERVE_ENCODING_CACHE_HH
