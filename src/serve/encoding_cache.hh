/**
 * @file
 * LRU cache of encoded latents keyed by (model version, AST content).
 * The encoders consume only the node-kind sequence and the tree
 * shape, so two structurally identical trees — however they were
 * parsed or where they live in memory — share one cache entry PER
 * MODEL VERSION. Serving workloads are dominated by repeated
 * candidates (ranking tournaments, regression watch over commit
 * history), which is exactly what an LRU rewards.
 *
 * Keys pair a model-version namespace id with a 128-bit structural
 * digest (two independent FNV-1a streams over the kind/parent
 * arrays); a digest collision needs ~2^64 distinct trees, far beyond
 * any corpus this system serves. The namespace id is what lets many
 * model versions share one cache without ever serving each other's
 * latents: a hot-swapped version gets a fresh namespace and the old
 * version's entries simply age out of the LRU.
 */

#ifndef CCSA_SERVE_ENCODING_CACHE_HH
#define CCSA_SERVE_ENCODING_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ast/ast.hh"
#include "serve/latent_codec.hh"
#include "tensor/tensor.hh"

namespace ccsa
{

/** 128-bit structural digest of an AST. */
struct AstDigest
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const AstDigest& other) const
    {
        return lo == other.lo && hi == other.hi;
    }
};

/** Digest the model-visible content of a tree (kinds + shape). */
AstDigest digestAst(const Ast& ast);

/** Hash functor so AstDigest can key unordered containers. */
struct AstDigestHash
{
    std::size_t
    operator()(const AstDigest& d) const
    {
        // lo is already a well-mixed 64-bit hash; fold hi in.
        return static_cast<std::size_t>(
            d.lo ^ (d.hi * 0x9E3779B97F4A7C15ULL));
    }
};

/**
 * Full cache key: which model version encoded the latent, and the
 * structural digest of the tree it encodes. Two models (or two
 * versions of one model) sharing a cache can never cross-read: their
 * namespace ids differ, so their keys differ even for the same tree.
 */
struct EncodingKey
{
    /** Model-version namespace (ModelVersion::id). */
    std::uint64_t modelVersion = 0;
    AstDigest digest;

    bool
    operator==(const EncodingKey& other) const
    {
        return modelVersion == other.modelVersion &&
            digest == other.digest;
    }
};

/** Hash functor so EncodingKey can key unordered containers. */
struct EncodingKeyHash
{
    std::size_t
    operator()(const EncodingKey& k) const
    {
        return AstDigestHash()(k.digest) ^
            static_cast<std::size_t>(
                k.modelVersion * 0x9E3779B97F4A7C15ULL);
    }
};

/**
 * @return a fresh process-unique model-version namespace id
 * (monotonically increasing, never reused, never 0). Every
 * ModelVersion — registry-published or wrapped by an Engine — draws
 * from this one counter, so namespaces can never collide no matter
 * which caches and registries end up sharing a process.
 */
std::uint64_t allocateModelNamespace();

/**
 * Least-recently-used map from EncodingKey to encoded latent (a
 * 1 x d row vector). Not internally synchronised: callers go through
 * ShardedEncodingCache, which wraps each partition in its own mutex.
 * Lookup and insert are NOT one atomic unit there — two engines can
 * miss on the same key and both encode it, a benign duplicate since
 * encoding is deterministic and the last insert wins with an
 * identical latent.
 */
class EncodingCache
{
  public:
    /** Running hit/miss/eviction counters (all namespaces). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /** Per-model-version counters, plus that version's resident
     * entry count (evictions are attributed to the namespace of the
     * evicted entry, so per-namespace rows partition the global
     * counters exactly). Rows for long-retired, fully-evicted
     * namespaces are garbage-collected once the map far outgrows the
     * cache capacity, so continuous hot-swap cannot grow it without
     * bound. */
    struct NamespaceStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t residents = 0;
        /** Payload bytes of this namespace's resident latents AS
         * STORED — the compressed size under fp16/int8, element
         * count * sizeof(float) under fp32 (excludes map/list
         * overhead). What the metrics plane exports as
         * ccsa_cache_resident_bytes. */
        std::size_t residentBytes = 0;
    };

    /**
     * @param capacity maximum resident entries (>= 1).
     * @param precision storage precision for resident latents;
     * fp16/int8 entries are quantized on insert and dequantized on
     * hit (see latent_codec.hh), trading ~1e-3 relative error for
     * 2-4x more trees resident at the same memory.
     */
    explicit EncodingCache(
        std::size_t capacity,
        LatentPrecision precision = LatentPrecision::kFp32);

    /**
     * Look up a key, refreshing its recency on a hit.
     * @return true on a hit, decoding the stored latent into *out
     * when out is non-null (under fp16/int8 this materialises the
     * dequantized values; under fp32 it is a bit-exact copy). Pass
     * out == nullptr for a presence probe that still refreshes
     * recency and counts the hit.
     */
    bool lookup(const EncodingKey& key, Tensor* out = nullptr);

    /**
     * Insert (or overwrite) an entry, evicting the least recently
     * used entries when over capacity. Eviction is capacity-global:
     * a hot namespace can push a cold one's entries out, which is
     * the intended behaviour for retired model versions.
     */
    void insert(const EncodingKey& key, Tensor latent);

    /** Drop every entry (counters are preserved). */
    void clear();

    /** Drop one namespace's entries (counters preserved). */
    void clearNamespace(std::uint64_t modelVersion);

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    LatentPrecision precision() const { return precision_; }
    const Stats& stats() const { return stats_; }

    /** One namespace's counters (zeros for an unseen namespace). */
    NamespaceStats namespaceStats(std::uint64_t modelVersion) const;

  private:
    struct Entry
    {
        EncodingKey key;
        /** Cache-resident form; decoded on hit. */
        StoredLatent stored;
    };

    /** Front = most recently used. */
    std::list<Entry> order_;
    std::unordered_map<EncodingKey, std::list<Entry>::iterator,
                       EncodingKeyHash> entries_;
    std::size_t capacity_;
    LatentPrecision precision_;
    Stats stats_;
    std::unordered_map<std::uint64_t, NamespaceStats> perNamespace_;
};

/**
 * A partitioned, independently-locked view over N EncodingCaches —
 * the shared cache under sharded and multi-model serving. Every key
 * is owned by exactly one partition (`shardOf(digest) ==
 * digest % numShards` on the digest's low word — routing ignores the
 * namespace, so every version of a tree lives on the same shard),
 * per-shard hit/miss/eviction counters partition the unsharded
 * counters exactly, and eviction pressure in one shard can never
 * invalidate an entry held by another. Each partition has its own
 * mutex: concurrent workers touching different shards never contend.
 *
 * With numShards == 1 this is behaviourally identical to a single
 * mutex-guarded EncodingCache — the Engine always goes through this
 * class so the sharded and unsharded code paths cannot drift.
 *
 * Namespace-aware mode: a cache built through makeShared() is meant
 * to be SHARED between engines (sharded serving, model registries)
 * and can mint a namespace per distinct model object via
 * namespaceFor(). Engines refuse to attach to an external cache that
 * was NOT built this way — before namespaced keys existed, two
 * models sharing a digest-keyed cache silently served each other's
 * latents, and the construction-time FatalError is what keeps that
 * hazard structurally impossible now.
 */
class ShardedEncodingCache
{
  public:
    /**
     * A private (single-tenant) partitioned cache.
     * @param numShards partition count (>= 1).
     * @param capacityPerShard LRU capacity of EACH partition (>= 1);
     * aggregate capacity is numShards * capacityPerShard, which is
     * the point of sharding: memory scales with the shard count while
     * per-shard eviction behaviour stays local.
     * @param precision storage precision applied by every partition.
     */
    ShardedEncodingCache(
        std::size_t numShards, std::size_t capacityPerShard,
        LatentPrecision precision = LatentPrecision::kFp32);

    ShardedEncodingCache(const ShardedEncodingCache&) = delete;
    ShardedEncodingCache& operator=(const ShardedEncodingCache&) =
        delete;

    /**
     * Build a namespace-aware cache for sharing between engines —
     * the only flavour Engine accepts as an external cache.
     */
    static std::shared_ptr<ShardedEncodingCache>
    makeShared(std::size_t numShards, std::size_t capacityPerShard,
               LatentPrecision precision = LatentPrecision::kFp32);

    /** @return true when built via makeShared(). */
    bool namespaceAware() const { return namespaceAware_; }

    /**
     * Mint (or recall) the namespace id for a model object: the same
     * live object always maps to the same id, so N engines serving
     * one predictor share latents, while distinct models get
     * distinct namespaces and can never cross-read. Ids are drawn
     * from allocateModelNamespace() and never reused — a model freed
     * and reallocated at the same address gets a fresh namespace.
     * FatalError unless namespaceAware().
     */
    std::uint64_t namespaceFor(const std::shared_ptr<const void>& owner);

    /** @return the partition that owns a digest under n shards. */
    static std::size_t
    shardOf(const AstDigest& key, std::size_t numShards)
    {
        return static_cast<std::size_t>(key.lo % numShards);
    }

    /** @return the partition that owns a digest in this cache. */
    std::size_t
    shardOf(const AstDigest& key) const
    {
        return shardOf(key, shards_.size());
    }

    /** @return the partition that owns a key (digest routing). */
    std::size_t
    shardOf(const EncodingKey& key) const
    {
        return shardOf(key.digest, shards_.size());
    }

    /**
     * Look up a key on its owning partition, refreshing recency on a
     * hit. The latent is copied out under the partition lock so the
     * caller never holds a pointer into a concurrently evicting
     * cache.
     * @return true and fill *out on a hit; false on a miss.
     */
    bool lookup(const EncodingKey& key, Tensor* out);

    /** Insert (or overwrite) on the owning partition, evicting that
     * partition's LRU entries when it is over capacity. */
    void insert(const EncodingKey& key, Tensor latent);

    /** Drop every entry in every partition (counters preserved). */
    void clear();

    /** Drop one namespace's entries everywhere (counters
     * preserved) — e.g. after mutating a model's weights in place. */
    void clearNamespace(std::uint64_t modelVersion);

    /** @return total resident entries across all partitions. */
    std::size_t size() const;

    /** @return resident entries in one partition. */
    std::size_t shardSize(std::size_t shard) const;

    /** @return counters summed across partitions — by construction
     * equal to what one unsharded cache serving the same keys under
     * the same per-key eviction pressure would report. */
    EncodingCache::Stats stats() const;

    /** @return one partition's counters. */
    EncodingCache::Stats shardStats(std::size_t shard) const;

    /** @return one namespace's counters summed across partitions —
     * the per-model rows surfaced through ServerStats. */
    EncodingCache::NamespaceStats
    namespaceStats(std::uint64_t modelVersion) const;

    std::size_t numShards() const { return shards_.size(); }
    std::size_t capacityPerShard() const { return capacityPerShard_; }
    LatentPrecision precision() const { return precision_; }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        EncodingCache cache;

        Shard(std::size_t capacity, LatentPrecision precision)
            : cache(capacity, precision)
        {
        }
    };

    ShardedEncodingCache(std::size_t numShards,
                         std::size_t capacityPerShard,
                         LatentPrecision precision,
                         bool namespaceAware);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t capacityPerShard_;
    LatentPrecision precision_ = LatentPrecision::kFp32;
    bool namespaceAware_ = false;

    /** Guards the model-object -> namespace-id memo below. */
    std::mutex namespaceMutex_;
    struct NamespaceEntry
    {
        std::weak_ptr<const void> owner;
        std::uint64_t id = 0;
    };
    std::unordered_map<const void*, NamespaceEntry> namespaces_;
};

} // namespace ccsa

#endif // CCSA_SERVE_ENCODING_CACHE_HH
