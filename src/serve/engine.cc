#include "serve/engine.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "frontend/parser.hh"

namespace ccsa
{

namespace
{

/** The exact probability map of the legacy per-pair path. */
inline double
logitToProb(float logit)
{
    return 1.0 / (1.0 + std::exp(-logit));
}

} // namespace

Engine::Engine() : Engine(Options()) {}

Engine::Engine(Options opts)
    : model_(std::make_shared<ComparativePredictor>(opts.encoder,
                                                    opts.seed)),
      opts_(opts), pool_(opts.threads),
      cache_(std::make_shared<ShardedEncodingCache>(
          opts.cacheShards == 0 ? 1 : opts.cacheShards,
          opts.cacheCapacity))
{
}

Engine::Engine(std::shared_ptr<ComparativePredictor> model)
    : Engine(std::move(model), Options())
{
}

Engine::Engine(std::shared_ptr<ComparativePredictor> model,
               Options opts)
    : Engine(std::move(model), opts,
             std::make_shared<ShardedEncodingCache>(
                 opts.cacheShards == 0 ? 1 : opts.cacheShards,
                 opts.cacheCapacity))
{
}

Engine::Engine(std::shared_ptr<ComparativePredictor> model,
               Options opts,
               std::shared_ptr<ShardedEncodingCache> cache)
    : model_(std::move(model)), opts_(opts), pool_(opts.threads),
      cache_(std::move(cache))
{
    if (!model_)
        fatal("Engine: null model");
    if (!cache_)
        fatal("Engine: null cache");
    opts_.encoder = model_->config();
}

Result<std::vector<Tensor>>
Engine::encodeBatch(const std::vector<const Ast*>& trees)
{
    for (std::size_t i = 0; i < trees.size(); ++i) {
        if (trees[i] == nullptr)
            return Status::invalidArgument(
                "encodeBatch: null tree at index " + std::to_string(i));
    }

    // Deduplicate by structural digest, preserving first-appearance
    // order so cache insertion (and therefore eviction) order is
    // deterministic regardless of the thread count.
    std::vector<std::size_t> slot_of(trees.size());
    std::vector<const Ast*> unique_trees;
    std::vector<AstDigest> unique_digests;
    {
        std::unordered_map<AstDigest, std::size_t, AstDigestHash> seen;
        for (std::size_t i = 0; i < trees.size(); ++i) {
            AstDigest d = digestAst(*trees[i]);
            auto [it, inserted] = seen.emplace(d, unique_trees.size());
            if (inserted) {
                unique_trees.push_back(trees[i]);
                unique_digests.push_back(d);
            }
            slot_of[i] = it->second;
        }
    }

    // The partitioned cache locks per shard, so concurrent engines
    // sharing it (sharded serving) only contend when their trees
    // hash to the same partition. Two engines racing on the same
    // digest may both miss and both encode — a benign duplicate:
    // encoding is deterministic, so whichever insert lands last
    // stores the identical latent.
    std::vector<Tensor> latents(unique_trees.size());
    std::vector<std::size_t> miss_slots;
    for (std::size_t s = 0; s < unique_trees.size(); ++s) {
        if (!cache_->lookup(unique_digests[s], &latents[s]))
            miss_slots.push_back(s);
    }

    if (!miss_slots.empty()) {
        try {
            // Forest-batch the misses: each worker encodes one
            // contiguous chunk of distinct trees in a single
            // level-batched wavefront. Tree rows never mix inside a
            // forest batch, so every latent is independent of the
            // chunking — and therefore of the thread count.
            std::size_t workers = static_cast<std::size_t>(
                std::max(1, pool_.workerCount()));
            std::size_t chunks = std::min(miss_slots.size(), workers);
            std::size_t per = (miss_slots.size() + chunks - 1) / chunks;
            pool_.parallelFor(chunks, [&](std::size_t ci) {
                std::size_t lo = ci * per;
                std::size_t hi =
                    std::min(miss_slots.size(), lo + per);
                if (lo >= hi)
                    return;
                std::vector<const Ast*> chunk;
                chunk.reserve(hi - lo);
                for (std::size_t i = lo; i < hi; ++i)
                    chunk.push_back(unique_trees[miss_slots[i]]);
                std::vector<ag::Var> encoded =
                    model_->encodeMany(chunk);
                for (std::size_t i = lo; i < hi; ++i)
                    latents[miss_slots[i]] = encoded[i - lo].value();
            });
        } catch (const std::exception& e) {
            return Status::internal(
                std::string("encodeBatch: ") + e.what());
        }
        for (std::size_t s : miss_slots)
            cache_->insert(unique_digests[s], latents[s]);
        std::lock_guard<std::mutex> lock(mutex_);
        treesEncoded_ += miss_slots.size();
    }

    std::vector<Tensor> out;
    out.reserve(trees.size());
    for (std::size_t i = 0; i < trees.size(); ++i)
        out.push_back(latents[slot_of[i]]);
    return out;
}

Result<std::vector<double>>
Engine::compareMany(const std::vector<PairRequest>& pairs)
{
    std::vector<const Ast*> trees;
    trees.reserve(pairs.size() * 2);
    for (const PairRequest& p : pairs) {
        trees.push_back(p.first);
        trees.push_back(p.second);
    }

    Result<std::vector<Tensor>> latents = encodeBatch(trees);
    if (!latents.isOk())
        return latents.status();

    // The classifier head is a single 2d -> 1 linear layer; running
    // it serially in request order keeps the output deterministic
    // and adds negligible cost next to encoding.
    std::vector<double> probs;
    probs.reserve(pairs.size());
    try {
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            ag::Var z = model_->logitFromEncodings(
                ag::constant(latents.value()[2 * i]),
                ag::constant(latents.value()[2 * i + 1]));
            probs.push_back(logitToProb(z.value().at(0, 0)));
        }
    } catch (const std::exception& e) {
        return Status::internal(
            std::string("compareMany: ") + e.what());
    }

    std::lock_guard<std::mutex> lock(mutex_);
    pairsServed_ += pairs.size();
    return probs;
}

Result<double>
Engine::compare(const Ast& first, const Ast& second)
{
    Result<std::vector<double>> probs =
        compareMany({PairRequest{&first, &second}});
    if (!probs.isOk())
        return probs.status();
    return probs.value()[0];
}

Result<double>
Engine::compareSources(const std::string& first,
                       const std::string& second)
{
    Result<Ast> a = parseSource(first);
    if (!a.isOk())
        return a.status();
    Result<Ast> b = parseSource(second);
    if (!b.isOk())
        return b.status();
    return compare(a.value(), b.value());
}

Result<std::vector<Engine::RankedCandidate>>
Engine::rank(const std::vector<const Ast*>& candidates)
{
    if (candidates.size() < 2)
        return Status::invalidArgument(
            "rank: need at least two candidates");

    Result<std::vector<double>> probs =
        compareMany(tournamentPairs(candidates));
    if (!probs.isOk())
        return probs.status();
    return aggregateTournament(candidates.size(), probs.value());
}

std::vector<Engine::PairRequest>
Engine::tournamentPairs(const std::vector<const Ast*>& candidates)
{
    // Round-robin over every ordered pair: the classifier is not
    // antisymmetric, so (i, j) and (j, i) are distinct evidence.
    // Encoding cost stays O(candidates): all pairs share one batch.
    std::vector<PairRequest> pairs;
    pairs.reserve(candidates.size() * (candidates.size() - 1));
    for (std::size_t i = 0; i < candidates.size(); ++i)
        for (std::size_t j = 0; j < candidates.size(); ++j)
            if (i != j)
                pairs.push_back(
                    PairRequest{candidates[i], candidates[j]});
    return pairs;
}

std::vector<Engine::RankedCandidate>
Engine::aggregateTournament(std::size_t n,
                            const std::vector<double>& probs)
{
    if (n < 2 || probs.size() != n * (n - 1))
        panic("aggregateTournament: ", probs.size(),
              " probs for ", n, " candidates");

    std::vector<RankedCandidate> ranked(n);
    for (std::size_t i = 0; i < n; ++i)
        ranked[i].index = static_cast<int>(i);

    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            // p = P(i slower than j); > 0.5 elects j.
            double p = probs[k++];
            if (p >= 0.5)
                ranked[j].wins++;
            else
                ranked[i].wins++;
            ranked[i].meanProbFaster += 1.0 - p;
            ranked[j].meanProbFaster += p;
        }
    }
    // Each candidate appears in 2 * (n - 1) ordered pairs.
    double norm = 2.0 * static_cast<double>(n - 1);
    for (RankedCandidate& r : ranked)
        r.meanProbFaster /= norm;

    std::sort(ranked.begin(), ranked.end(),
              [](const RankedCandidate& a, const RankedCandidate& b) {
                  if (a.wins != b.wins)
                      return a.wins > b.wins;
                  if (a.meanProbFaster != b.meanProbFaster)
                      return a.meanProbFaster > b.meanProbFaster;
                  return a.index < b.index;
              });
    return ranked;
}

Result<Ast>
Engine::parseSource(const std::string& source)
{
    try {
        return parseAndPrune(source);
    } catch (const FatalError& e) {
        return Status::invalidArgument(e.what());
    }
}

Status
Engine::save(const std::string& path)
{
    return model_->save(path);
}

Status
Engine::load(const std::string& path)
{
    Status s = model_->load(path);
    if (s.isOk())
        invalidateCache();
    return s;
}

Engine::Stats
Engine::stats() const
{
    Stats out;
    EncodingCache::Stats cache = cache_->stats();
    out.cacheHits = cache.hits;
    out.cacheMisses = cache.misses;
    out.cacheEvictions = cache.evictions;
    out.cacheSize = cache_->size();
    std::lock_guard<std::mutex> lock(mutex_);
    out.pairsServed = pairsServed_;
    out.treesEncoded = treesEncoded_;
    return out;
}

void
Engine::invalidateCache()
{
    cache_->clear();
}

} // namespace ccsa
