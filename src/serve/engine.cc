#include "serve/engine.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "frontend/parser.hh"
#include "serve/metrics/metrics.hh"
#include "tensor/arena.hh"

namespace ccsa
{

namespace
{

/** Non-negative microsecond span between two time points. */
std::size_t
spanUs(std::chrono::steady_clock::time_point from,
       std::chrono::steady_clock::time_point to)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  to - from)
                  .count();
    return us < 0 ? 0 : static_cast<std::size_t>(us);
}

/** The exact probability map of the legacy per-pair path. */
inline double
logitToProb(float logit)
{
    return 1.0 / (1.0 + std::exp(-logit));
}

/** Wrap a bare predictor in an immutable single-model version. */
std::shared_ptr<const ModelVersion>
wrapModel(std::shared_ptr<ComparativePredictor> model,
          std::uint64_t namespaceId)
{
    auto version = std::make_shared<ModelVersion>();
    version->name = "model";
    version->id = namespaceId;
    version->sequence = 1;
    version->model = std::move(model);
    return version;
}

} // namespace

Engine::Engine() : Engine(Options()) {}

Engine::Engine(Options opts)
    : Engine(std::make_shared<ComparativePredictor>(opts.encoder,
                                                    opts.seed),
             opts)
{
}

Engine::Engine(std::shared_ptr<ComparativePredictor> model)
    : Engine(std::move(model), Options())
{
}

Engine::Engine(std::shared_ptr<ComparativePredictor> model,
               Options opts)
    : version_(wrapModel(model, allocateModelNamespace())),
      opts_(opts), pool_(opts.threads)
{
    if (!version_->model)
        fatal("Engine: null model");
    opts_.encoder = version_->model->config();
    init(nullptr, /*externalCache=*/false);
}

Engine::Engine(std::shared_ptr<ComparativePredictor> model,
               Options opts,
               std::shared_ptr<ShardedEncodingCache> cache)
    : opts_(opts), pool_(opts.threads)
{
    if (!model)
        fatal("Engine: null model");
    init(std::move(cache), /*externalCache=*/true);
    // Same model object => same namespace => shared latents; a
    // different model sharing this cache gets its own namespace.
    version_ = wrapModel(model, cache_->namespaceFor(model));
    opts_.encoder = version_->model->config();
}

Engine::Engine(std::shared_ptr<const ModelVersion> version,
               Options opts,
               std::shared_ptr<ShardedEncodingCache> cache)
    : version_(std::move(version)), opts_(opts), pool_(opts.threads)
{
    if (!version_ || !version_->model)
        fatal("Engine: null model version");
    if (version_->id == 0)
        fatal("Engine: model version without a cache namespace");
    opts_.encoder = version_->model->config();
    init(std::move(cache), /*externalCache=*/true);
}

Engine::Engine(std::shared_ptr<ModelRegistry> registry)
    : Engine(std::move(registry), Options())
{
}

Engine::Engine(std::shared_ptr<ModelRegistry> registry, Options opts)
    : registry_(std::move(registry)), opts_(opts),
      pool_(opts.threads)
{
    if (!registry_)
        fatal("Engine: null registry");
    init(nullptr, /*externalCache=*/false);
}

Engine::Engine(std::shared_ptr<ModelRegistry> registry, Options opts,
               std::shared_ptr<ShardedEncodingCache> cache)
    : registry_(std::move(registry)), opts_(opts),
      pool_(opts.threads)
{
    if (!registry_)
        fatal("Engine: null registry");
    init(std::move(cache), /*externalCache=*/true);
}

void
Engine::init(std::shared_ptr<ShardedEncodingCache> cache,
             bool externalCache)
{
    initMetrics();
    if (externalCache) {
        if (!cache)
            fatal("Engine: null cache");
        if (!cache->namespaceAware())
            fatal("Engine: an external shared cache must be built "
                  "via ShardedEncodingCache::makeShared() — a "
                  "digest-only cache would serve one model's latents "
                  "to another");
        cache_ = std::move(cache);
        return;
    }
    cache_ = std::make_shared<ShardedEncodingCache>(
        opts_.cacheShards == 0 ? 1 : opts_.cacheShards,
        opts_.cacheCapacity, opts_.latentPrecision);
}

void
Engine::initMetrics()
{
    if (opts_.metrics == nullptr)
        return;
    const std::string help =
        "Engine pipeline stage wall time per compareMany call, us.";
    phaseEncodeUs_ = &opts_.metrics->windowedHistogram(
        "ccsa_engine_phase_us", {{"phase", "encode"}},
        WindowedHistogram::Options(), help);
    phaseScoreUs_ = &opts_.metrics->windowedHistogram(
        "ccsa_engine_phase_us", {{"phase", "score"}},
        WindowedHistogram::Options(), help);
}

Result<std::shared_ptr<const ModelVersion>>
Engine::resolveModel(const std::string& name) const
{
    if (registry_) {
        std::shared_ptr<const ModelVersion> version =
            registry_->resolve(name);
        if (!version)
            return Status::invalidArgument(
                name.empty()
                    ? std::string("Engine: registry has no models")
                    : "Engine: unknown model '" + name + "'");
        return version;
    }
    if (name.empty() || name == version_->name)
        return version_;
    return Status::invalidArgument(
        "Engine: unknown model '" + name +
        "' (single-model engine serves '" + version_->name + "')");
}

Result<std::vector<Tensor>>
Engine::encodeBatch(const std::vector<const Ast*>& trees)
{
    return encodeBatch(std::string(), trees);
}

Result<std::vector<Tensor>>
Engine::encodeBatch(const std::string& model,
                    const std::vector<const Ast*>& trees)
{
    Result<std::shared_ptr<const ModelVersion>> version =
        resolveModel(model);
    if (!version.isOk())
        return version.status();
    return encodeBatch(*version.value(), trees);
}

Result<std::vector<Tensor>>
Engine::encodeBatch(const ModelVersion& version,
                    const std::vector<const Ast*>& trees)
{
    for (std::size_t i = 0; i < trees.size(); ++i) {
        if (trees[i] == nullptr)
            return Status::invalidArgument(
                "encodeBatch: null tree at index " + std::to_string(i));
    }

    // Deduplicate by structural digest, preserving first-appearance
    // order so cache insertion (and therefore eviction) order is
    // deterministic regardless of the thread count.
    std::vector<std::size_t> slot_of(trees.size());
    std::vector<const Ast*> unique_trees;
    std::vector<EncodingKey> unique_keys;
    {
        std::unordered_map<AstDigest, std::size_t, AstDigestHash> seen;
        for (std::size_t i = 0; i < trees.size(); ++i) {
            AstDigest d = digestAst(*trees[i]);
            auto [it, inserted] = seen.emplace(d, unique_trees.size());
            if (inserted) {
                unique_trees.push_back(trees[i]);
                unique_keys.push_back(EncodingKey{version.id, d});
            }
            slot_of[i] = it->second;
        }
    }

    // The partitioned cache locks per shard, so concurrent engines
    // sharing it (sharded serving) only contend when their trees
    // hash to the same partition. Two engines racing on the same
    // key may both miss and both encode — a benign duplicate:
    // encoding is deterministic, so whichever insert lands last
    // stores the identical latent. Keys carry the model-version
    // namespace, so different versions sharing the cache can never
    // race at all — their keys are disjoint.
    std::vector<Tensor> latents(unique_trees.size());
    std::vector<std::size_t> miss_slots;
    for (std::size_t s = 0; s < unique_trees.size(); ++s) {
        if (!cache_->lookup(unique_keys[s], &latents[s]))
            miss_slots.push_back(s);
    }

    if (!miss_slots.empty()) {
        try {
            // Forest-batch the misses: each worker encodes one
            // contiguous chunk of distinct trees in a single
            // level-batched wavefront. Tree rows never mix inside a
            // forest batch, so every latent is independent of the
            // chunking — and therefore of the thread count.
            std::size_t workers = static_cast<std::size_t>(
                std::max(1, pool_.workerCount()));
            std::size_t chunks = std::min(miss_slots.size(), workers);
            std::size_t per = (miss_slots.size() + chunks - 1) / chunks;
            pool_.parallelFor(chunks, [&](std::size_t ci) {
                std::size_t lo = ci * per;
                std::size_t hi =
                    std::min(miss_slots.size(), lo + per);
                if (lo >= hi)
                    return;
                std::vector<const Ast*> chunk;
                chunk.reserve(hi - lo);
                for (std::size_t i = lo; i < hi; ++i)
                    chunk.push_back(unique_trees[miss_slots[i]]);
                // Tape-free encode: ops write into this worker's
                // arena instead of allocating VarNodes + tensors.
                // The latents below are the only values that outlive
                // the scope, so they (and nothing else) are copied
                // out of the arena into owned storage.
                InferenceScope scope;
                std::vector<ag::Var> encoded =
                    version.model->encodeMany(chunk);
                for (std::size_t i = lo; i < hi; ++i)
                    latents[miss_slots[i]] =
                        encoded[i - lo].value().toOwned();
            });
        } catch (const std::exception& e) {
            return Status::internal(
                std::string("encodeBatch: ") + e.what());
        }
        const LatentPrecision precision = cache_->precision();
        for (std::size_t s : miss_slots) {
            cache_->insert(unique_keys[s], latents[s]);
            // Under a quantizing cache, serve the miss through the
            // same quantize/dequantize roundtrip a later hit will
            // decode from the stored bytes — scores must never
            // depend on whether a tree was resident.
            if (precision != LatentPrecision::kFp32)
                latents[s] = decodeLatent(
                    encodeLatent(latents[s], precision));
        }
        std::lock_guard<std::mutex> lock(mutex_);
        treesEncoded_ += miss_slots.size();
    }

    std::vector<Tensor> out;
    out.reserve(trees.size());
    for (std::size_t i = 0; i < trees.size(); ++i)
        out.push_back(latents[slot_of[i]]);
    return out;
}

Result<std::vector<double>>
Engine::compareMany(const std::vector<PairRequest>& pairs)
{
    return compareMany(std::string(), pairs);
}

Result<std::vector<double>>
Engine::compareMany(const std::string& model,
                    const std::vector<PairRequest>& pairs)
{
    // One handle resolution per request batch: the whole batch runs
    // on this snapshot even if the registry hot-swaps mid-flight.
    Result<std::shared_ptr<const ModelVersion>> version =
        resolveModel(model);
    if (!version.isOk())
        return version.status();
    return compareMany(*version.value(), pairs);
}

Result<std::vector<double>>
Engine::compareMany(const ModelVersion& version,
                    const std::vector<PairRequest>& pairs,
                    PhaseTiming* timing)
{
    // The metrics plane needs the stage boundaries even when the
    // caller doesn't: time into a local PhaseTiming in that case.
    PhaseTiming localTiming;
    if (timing == nullptr && phaseEncodeUs_ != nullptr)
        timing = &localTiming;

    std::vector<const Ast*> trees;
    trees.reserve(pairs.size() * 2);
    for (const PairRequest& p : pairs) {
        trees.push_back(p.first);
        trees.push_back(p.second);
    }

    if (timing)
        timing->encodeStart = std::chrono::steady_clock::now();
    Result<std::vector<Tensor>> latents = encodeBatch(version, trees);
    if (timing)
        timing->encodeEnd = timing->scoreEnd =
            std::chrono::steady_clock::now();
    if (!latents.isOk())
        return latents.status();

    // The classifier head is a single 2d -> 1 linear layer; running
    // it serially in request order keeps the output deterministic
    // and adds negligible cost next to encoding.
    std::vector<double> probs;
    probs.reserve(pairs.size());
    try {
        // Scoring is tape-free too; each probability is extracted
        // before the scope (and its arena) dies.
        InferenceScope scope;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            ag::Var z = version.model->logitFromEncodings(
                ag::constant(latents.value()[2 * i]),
                ag::constant(latents.value()[2 * i + 1]));
            probs.push_back(logitToProb(z.value().at(0, 0)));
        }
    } catch (const std::exception& e) {
        return Status::internal(
            std::string("compareMany: ") + e.what());
    }
    if (timing)
        timing->scoreEnd = std::chrono::steady_clock::now();

    if (phaseEncodeUs_ != nullptr && timing != nullptr) {
        phaseEncodeUs_->add(
            spanUs(timing->encodeStart, timing->encodeEnd),
            timing->scoreEnd);
        phaseScoreUs_->add(
            spanUs(timing->encodeEnd, timing->scoreEnd),
            timing->scoreEnd);
    }

    std::lock_guard<std::mutex> lock(mutex_);
    pairsServed_ += pairs.size();
    return probs;
}

Result<std::vector<double>>
Engine::compareManyCached(
    const std::vector<std::pair<AstDigest, AstDigest>>& pairs)
{
    Result<std::shared_ptr<const ModelVersion>> version =
        resolveModel(std::string());
    if (!version.isOk())
        return version.status();
    const ModelVersion& v = *version.value();

    // Resolve EVERY latent before any head work: a miss must refuse
    // the whole batch so the caller's self-contained fallback is the
    // first execution, not a second one.
    std::unordered_map<AstDigest, Tensor, AstDigestHash> latents;
    std::size_t missing = 0;
    auto resolve = [&](const AstDigest& d) {
        if (latents.count(d) != 0)
            return;
        Tensor t;
        if (cache_->lookup(EncodingKey{v.id, d}, &t))
            latents.emplace(d, std::move(t));
        else
            ++missing;
    };
    for (const auto& pair : pairs) {
        resolve(pair.first);
        resolve(pair.second);
    }
    if (missing > 0)
        return Status::resourceExhausted(
            "compareManyCached: " + std::to_string(missing) +
            " latent(s) not resident (evicted since encode?)");

    std::vector<double> probs;
    probs.reserve(pairs.size());
    try {
        InferenceScope scope;
        for (const auto& pair : pairs) {
            ag::Var z = v.model->logitFromEncodings(
                ag::constant(latents.at(pair.first)),
                ag::constant(latents.at(pair.second)));
            probs.push_back(logitToProb(z.value().at(0, 0)));
        }
    } catch (const std::exception& e) {
        return Status::internal(
            std::string("compareManyCached: ") + e.what());
    }

    std::lock_guard<std::mutex> lock(mutex_);
    pairsServed_ += pairs.size();
    return probs;
}

Result<double>
Engine::compare(const Ast& first, const Ast& second)
{
    Result<std::vector<double>> probs =
        compareMany({PairRequest{&first, &second}});
    if (!probs.isOk())
        return probs.status();
    return probs.value()[0];
}

Result<double>
Engine::compareSources(const std::string& first,
                       const std::string& second)
{
    Result<Ast> a = parseSource(first);
    if (!a.isOk())
        return a.status();
    Result<Ast> b = parseSource(second);
    if (!b.isOk())
        return b.status();
    return compare(a.value(), b.value());
}

Result<std::vector<Engine::RankedCandidate>>
Engine::rank(const std::vector<const Ast*>& candidates)
{
    return rank(std::string(), candidates);
}

Result<std::vector<Engine::RankedCandidate>>
Engine::rank(const std::string& model,
             const std::vector<const Ast*>& candidates)
{
    if (candidates.size() < 2)
        return Status::invalidArgument(
            "rank: need at least two candidates");

    Result<std::vector<double>> probs =
        compareMany(model, tournamentPairs(candidates));
    if (!probs.isOk())
        return probs.status();
    return aggregateTournament(candidates.size(), probs.value());
}

std::vector<Engine::PairRequest>
Engine::tournamentPairs(const std::vector<const Ast*>& candidates)
{
    // Round-robin over every ordered pair: the classifier is not
    // antisymmetric, so (i, j) and (j, i) are distinct evidence.
    // Encoding cost stays O(candidates): all pairs share one batch.
    std::vector<PairRequest> pairs;
    pairs.reserve(candidates.size() * (candidates.size() - 1));
    for (std::size_t i = 0; i < candidates.size(); ++i)
        for (std::size_t j = 0; j < candidates.size(); ++j)
            if (i != j)
                pairs.push_back(
                    PairRequest{candidates[i], candidates[j]});
    return pairs;
}

std::vector<Engine::RankedCandidate>
Engine::aggregateTournament(std::size_t n,
                            const std::vector<double>& probs)
{
    if (n < 2 || probs.size() != n * (n - 1))
        panic("aggregateTournament: ", probs.size(),
              " probs for ", n, " candidates");

    std::vector<RankedCandidate> ranked(n);
    for (std::size_t i = 0; i < n; ++i)
        ranked[i].index = static_cast<int>(i);

    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            // p = P(i slower than j); > 0.5 elects j.
            double p = probs[k++];
            if (p >= 0.5)
                ranked[j].wins++;
            else
                ranked[i].wins++;
            ranked[i].meanProbFaster += 1.0 - p;
            ranked[j].meanProbFaster += p;
        }
    }
    // Each candidate appears in 2 * (n - 1) ordered pairs.
    double norm = 2.0 * static_cast<double>(n - 1);
    for (RankedCandidate& r : ranked)
        r.meanProbFaster /= norm;

    std::sort(ranked.begin(), ranked.end(),
              [](const RankedCandidate& a, const RankedCandidate& b) {
                  if (a.wins != b.wins)
                      return a.wins > b.wins;
                  if (a.meanProbFaster != b.meanProbFaster)
                      return a.meanProbFaster > b.meanProbFaster;
                  return a.index < b.index;
              });
    return ranked;
}

Result<Ast>
Engine::parseSource(const std::string& source)
{
    try {
        return parseAndPrune(source);
    } catch (const FatalError& e) {
        return Status::invalidArgument(e.what());
    }
}

Status
Engine::save(const std::string& path)
{
    if (registry_)
        return Status::invalidArgument(
            "Engine::save: this engine serves a ModelRegistry; save "
            "through ModelRegistry::save(name, path)");
    return version_->model->save(path, version_->name,
                                 version_->sequence);
}

Status
Engine::load(const std::string& path)
{
    if (registry_)
        return Status::invalidArgument(
            "Engine::load: this engine serves a ModelRegistry; "
            "publish through ModelRegistry::load instead of mutating "
            "weights in place");
    Status s = version_->model->load(path);
    if (s.isOk()) {
        // Weights changed in place under the SAME namespace, so only
        // this model's cached latents are stale.
        cache_->clearNamespace(version_->id);
    }
    return s;
}

ComparativePredictor&
Engine::model()
{
    return const_cast<ComparativePredictor&>(
        static_cast<const Engine*>(this)->model());
}

const ComparativePredictor&
Engine::model() const
{
    std::shared_ptr<const ModelVersion> version = modelVersion();
    if (!version)
        fatal("Engine::model: registry has no models");
    // The reference stays valid while the version is registered (or
    // for the engine's lifetime in classic mode).
    return *version->model;
}

std::shared_ptr<ComparativePredictor>
Engine::sharedModel()
{
    std::shared_ptr<const ModelVersion> version = modelVersion();
    if (!version)
        fatal("Engine::sharedModel: registry has no models");
    return version->model;
}

std::shared_ptr<const ModelVersion>
Engine::modelVersion() const
{
    Result<std::shared_ptr<const ModelVersion>> version =
        resolveModel(std::string());
    return version.isOk() ? version.value() : nullptr;
}

Engine::Stats
Engine::stats() const
{
    Stats out;
    EncodingCache::Stats cache = cache_->stats();
    out.cacheHits = cache.hits;
    out.cacheMisses = cache.misses;
    out.cacheEvictions = cache.evictions;
    out.cacheSize = cache_->size();
    std::lock_guard<std::mutex> lock(mutex_);
    out.pairsServed = pairsServed_;
    out.treesEncoded = treesEncoded_;
    return out;
}

std::vector<ModelCacheStats>
Engine::perModelCacheStats() const
{
    std::vector<ModelCacheStats> out;
    auto addRow = [&](const std::shared_ptr<const ModelVersion>& v) {
        ModelCacheStats row;
        row.name = v->name;
        row.versionId = v->id;
        row.sequence = v->sequence;
        row.cache = cache_->namespaceStats(v->id);
        out.push_back(std::move(row));
    };
    if (registry_) {
        for (const std::string& name : registry_->names()) {
            std::shared_ptr<const ModelVersion> v =
                registry_->resolve(name);
            if (v)
                addRow(v);
        }
    } else {
        addRow(version_);
    }
    return out;
}

void
Engine::invalidateCache()
{
    cache_->clear();
}

} // namespace ccsa
