/**
 * @file
 * ccsa::Engine — the serving facade and canonical public API of the
 * library. Where ComparativePredictor answers one pair at a time and
 * re-encodes both trees on every call, the Engine is shaped like the
 * paper's actual product (rank many candidate versions of a program):
 * it dedups and caches encodings across requests, encodes batch
 * misses in parallel on a ThreadPool, fans cached latents across all
 * pairs that reference them, and reports per-request failures through
 * Status/Result instead of exceptions.
 *
 * Since the ModelRegistry refactor the Engine no longer OWNS a
 * predictor: it resolves an immutable ModelVersion handle per request
 * batch — either a fixed version wrapped at construction (classic
 * single-model mode) or by name through a shared ModelRegistry
 * (multi-model mode, hot-swap safe: a batch keeps the snapshot it
 * resolved even while a new version is published mid-flight). Cache
 * keys are (model version id, structural digest), so versions and
 * models sharing one cache occupy isolated namespaces.
 *
 * Determinism contract: every probability produced by the batch
 * endpoints is bitwise-identical to a per-pair encode+classify of
 * the same version's weights and invariant to the thread count —
 * each tree's encoding is an independent computation, and the
 * classifier head always runs on the calling thread in request
 * order. Per model, a registry-backed engine is bitwise-identical
 * to a dedicated single-model engine on the same weights.
 */

#ifndef CCSA_SERVE_ENGINE_HH
#define CCSA_SERVE_ENGINE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/result.hh"
#include "base/thread_pool.hh"
#include "model/predictor.hh"
#include "serve/encoding_cache.hh"
#include "serve/model_registry.hh"

namespace ccsa
{

class MetricsRegistry;
class WindowedHistogram;

/** One model's cache-namespace counters (see Engine::
 * perModelCacheStats / ServerStats::models). */
struct ModelCacheStats
{
    std::string name;
    /** Cache namespace id of the CURRENT version. */
    std::uint64_t versionId = 0;
    /** Publish sequence of the current version. */
    std::uint64_t sequence = 0;
    EncodingCache::NamespaceStats cache;
};

/** Batched, cached, thread-parallel serving facade. */
class Engine
{
  public:
    /**
     * Builder-style construction options subsuming EncoderConfig:
     * `Engine::Options().withHiddenDim(64).withThreads(4)`.
     */
    struct Options
    {
        /** Model architecture (ignored when wrapping a model). */
        EncoderConfig encoder;
        /** Weight-initialisation seed for fresh models. */
        std::uint64_t seed = 1;
        /** Maximum resident entries PER cache shard; aggregate
         * capacity is cacheShards * cacheCapacity. */
        std::size_t cacheCapacity = 4096;
        /** Encoding-cache partitions (independently locked, keys
         * routed by structural digest). 1 = classic single cache;
         * ignored when the Engine is handed an external shared
         * cache. */
        std::size_t cacheShards = 1;
        /** Storage precision of the PRIVATE encoding cache; fp16 or
         * int8 quantizes latents on insert and dequantizes on hit
         * (2-4x more trees resident at the same memory — see
         * latent_codec.hh). Ignored when the Engine is handed an
         * external shared cache, which fixed its precision at
         * construction. Miss results are served through the same
         * quantize/dequantize roundtrip the cache stores, so hit and
         * miss answers are bitwise-identical at any precision. */
        LatentPrecision latentPrecision = LatentPrecision::kFp32;
        /** Encoder worker threads; 0 = hardware, 1 = inline. */
        int threads = 0;
        /** Optional metrics plane (serve/metrics). Not owned; must
         * outlive the engine. When set, every compareMany records
         * its encode/score wall time into the
         * ccsa_engine_phase_us{phase=...} windowed histograms. */
        MetricsRegistry* metrics = nullptr;

        Options& withEncoder(const EncoderConfig& cfg)
        {
            encoder = cfg;
            return *this;
        }

        Options& withEncoderKind(EncoderKind kind)
        {
            encoder.kind = kind;
            return *this;
        }

        Options& withEmbedDim(int dim)
        {
            encoder.embedDim = dim;
            return *this;
        }

        Options& withHiddenDim(int dim)
        {
            encoder.hiddenDim = dim;
            return *this;
        }

        Options& withLayers(int n)
        {
            encoder.layers = n;
            return *this;
        }

        Options& withArch(nn::TreeArch arch)
        {
            encoder.arch = arch;
            return *this;
        }

        Options& withSeed(std::uint64_t s)
        {
            seed = s;
            return *this;
        }

        Options& withCacheCapacity(std::size_t n)
        {
            cacheCapacity = n;
            return *this;
        }

        Options& withCacheShards(std::size_t n)
        {
            cacheShards = n == 0 ? 1 : n;
            return *this;
        }

        Options& withThreads(int n)
        {
            threads = n;
            return *this;
        }

        Options& withMetrics(MetricsRegistry* m)
        {
            metrics = m;
            return *this;
        }

        Options& withLatentPrecision(LatentPrecision p)
        {
            latentPrecision = p;
            return *this;
        }
    };

    /** One comparison request; both trees must outlive the call. */
    struct PairRequest
    {
        const Ast* first = nullptr;
        const Ast* second = nullptr;
    };

    /** rank() output, best candidate first. */
    struct RankedCandidate
    {
        /** Index into the candidates vector passed to rank(). */
        int index = 0;
        /** Round-robin wins (candidate predicted faster). */
        int wins = 0;
        /** Mean probability of being the faster element of a pair. */
        double meanProbFaster = 0.0;
    };

    /** Serving counters (cache behaviour + request volume). */
    struct Stats
    {
        std::uint64_t cacheHits = 0;
        std::uint64_t cacheMisses = 0;
        std::uint64_t cacheEvictions = 0;
        std::size_t cacheSize = 0;
        std::uint64_t pairsServed = 0;
        std::uint64_t treesEncoded = 0;
    };

    /** Default-configured engine with a fresh (untrained) model. */
    Engine();

    /** Build a fresh (untrained) model per opts.encoder/opts.seed. */
    explicit Engine(Options opts);

    /** Serve an existing (typically trained) predictor. */
    explicit Engine(std::shared_ptr<ComparativePredictor> model);

    /** Serve an existing predictor with explicit serving options. */
    Engine(std::shared_ptr<ComparativePredictor> model, Options opts);

    /**
     * Serve an existing predictor through an EXTERNAL encoding
     * cache, shared with other engines. This is the sharded-serving
     * seam: every ShardedServer worker owns one of these engines and
     * they all resolve latents through the same partitioned cache,
     * so a tree encoded by any worker is visible to all of them while
     * still living on exactly one cache shard. The cache MUST have
     * been built namespace-aware (ShardedEncodingCache::makeShared);
     * anything else is a FatalError — a digest-only shared cache
     * would let two models serve each other's latents. Engines
     * handed the SAME model object share its cache namespace (and
     * therefore its latents); distinct models get isolated
     * namespaces. opts.cacheCapacity / opts.cacheShards are ignored
     * (the cache is already built).
     */
    Engine(std::shared_ptr<ComparativePredictor> model, Options opts,
           std::shared_ptr<ShardedEncodingCache> cache);

    /**
     * Serve a pre-wrapped immutable version through an external
     * namespace-aware cache — the seam for callers that manage
     * versions themselves (ShardedServer wraps its model once and
     * hands every worker the same version).
     */
    Engine(std::shared_ptr<const ModelVersion> version, Options opts,
           std::shared_ptr<ShardedEncodingCache> cache);

    /**
     * Multi-model mode: resolve models BY NAME through a shared
     * registry, one handle per request batch. Hot-swap safe — see
     * the file comment. Unnamed endpoints serve the registry's
     * default model.
     */
    explicit Engine(std::shared_ptr<ModelRegistry> registry);
    Engine(std::shared_ptr<ModelRegistry> registry, Options opts);
    Engine(std::shared_ptr<ModelRegistry> registry, Options opts,
           std::shared_ptr<ShardedEncodingCache> cache);

    /**
     * Resolve a model name to the version snapshot a batch would
     * serve right now. "" resolves the default model (the fixed
     * version in classic mode). Unknown names are InvalidArgument.
     * The async layers resolve at ADMISSION time through this, so a
     * request admitted before a hot swap completes on the version it
     * was admitted under.
     */
    Result<std::shared_ptr<const ModelVersion>>
    resolveModel(const std::string& name) const;

    /**
     * Encode a batch of trees, one latent row vector per input, in
     * input order. Each distinct tree (by structural digest) is
     * encoded at most once; cache hits skip encoding entirely and
     * misses run data-parallel on the thread pool.
     */
    Result<std::vector<Tensor>>
    encodeBatch(const std::vector<const Ast*>& trees);

    /** encodeBatch through a named model. */
    Result<std::vector<Tensor>>
    encodeBatch(const std::string& model,
                const std::vector<const Ast*>& trees);

    /** encodeBatch on an explicit version snapshot. */
    Result<std::vector<Tensor>>
    encodeBatch(const ModelVersion& version,
                const std::vector<const Ast*>& trees);

    /**
     * P(first slower-or-equal) for every requested pair, in request
     * order (paper Eq. 1: > 0.5 means the second program is the
     * better version). All trees across all pairs share one encoding
     * batch.
     */
    Result<std::vector<double>>
    compareMany(const std::vector<PairRequest>& pairs);

    /** compareMany through a named model. */
    Result<std::vector<double>>
    compareMany(const std::string& model,
                const std::vector<PairRequest>& pairs);

    /** Wall-clock boundaries of one compareMany call's pipeline
     * stages, for per-request trace spans (serve/trace): encode
     * covers the shared encodeBatch (cache walk + miss encoding),
     * score the classifier-head loop. Every member of a coalesced
     * group shares the group's window. */
    struct PhaseTiming
    {
        std::chrono::steady_clock::time_point encodeStart{};
        std::chrono::steady_clock::time_point encodeEnd{};
        std::chrono::steady_clock::time_point scoreEnd{};
    };

    /** compareMany on an explicit version snapshot — what the async
     * batchers execute per coalesced (model, pairs) group. `timing`,
     * when non-null, receives the encode/score stage boundaries. */
    Result<std::vector<double>>
    compareMany(const ModelVersion& version,
                const std::vector<PairRequest>& pairs,
                PhaseTiming* timing = nullptr);

    /**
     * compareMany against latents ALREADY resident in the encoding
     * cache, addressed by structural digest — no trees needed. The
     * IPC worker loop serves its hot path with this: the encode RPC
     * ships the batch's trees once and warms the cache, then the
     * compare RPC references them by digest. Refuses with
     * ResourceExhausted BEFORE any head work if any latent is not
     * resident (e.g. evicted because the cache is smaller than the
     * batch's working set), so a caller can fall back to a
     * self-contained compareMany without risking double execution.
     */
    Result<std::vector<double>> compareManyCached(
        const std::vector<std::pair<AstDigest, AstDigest>>& pairs);

    /** Single-pair convenience over compareMany(). */
    Result<double> compare(const Ast& first, const Ast& second);

    /** Parse + prune + compare; parse errors come back as Status. */
    Result<double> compareSources(const std::string& first,
                                  const std::string& second);

    /**
     * Round-robin tournament over candidate versions of a program
     * (the paper's algorithm-selection use case). Every ordered pair
     * is compared through one shared encoding batch; candidates come
     * back best-first (wins, then meanProbFaster).
     */
    Result<std::vector<RankedCandidate>>
    rank(const std::vector<const Ast*>& candidates);

    /** rank through a named model. */
    Result<std::vector<RankedCandidate>>
    rank(const std::string& model,
         const std::vector<const Ast*>& candidates);

    /**
     * Build the ordered round-robin pair list rank() scores: every
     * (i, j), i != j, in row-major order over n candidates. Exposed
     * so the async serving layer submits exactly the pairs rank()
     * would.
     */
    static std::vector<PairRequest>
    tournamentPairs(const std::vector<const Ast*>& candidates);

    /**
     * Aggregate round-robin probabilities (as produced by
     * compareMany() over tournamentPairs()) into a best-first
     * ranking. Deterministic and shared with AsyncServer, so async
     * rankings are bitwise-identical to rank(). `probs` must hold
     * n * (n - 1) entries.
     */
    static std::vector<RankedCandidate>
    aggregateTournament(std::size_t n,
                        const std::vector<double>& probs);

    /** Parse + prune one source file without aborting on errors. */
    static Result<Ast> parseSource(const std::string& source);

    /**
     * Persist / restore the default model's weights. Classic mode
     * only: a registry-backed engine reports InvalidArgument — save
     * and load through the registry, which stamps real manifests and
     * publishes hot-swaps instead of mutating weights in place.
     */
    Status save(const std::string& path);
    Status load(const std::string& path);

    /**
     * The default model (classic mode: the fixed version's
     * predictor; registry mode: the current default version's).
     * FatalError when a registry-backed engine has no models yet.
     */
    ComparativePredictor& model();
    const ComparativePredictor& model() const;
    std::shared_ptr<ComparativePredictor> sharedModel();

    /** Current default version snapshot (see resolveModel("")). */
    std::shared_ptr<const ModelVersion> modelVersion() const;

    /** The registry, or nullptr for a classic engine. */
    const std::shared_ptr<ModelRegistry>& registry() const
    {
        return registry_;
    }

    /** The (possibly shared) partitioned encoding cache. */
    ShardedEncodingCache& cache() { return *cache_; }
    const ShardedEncodingCache& cache() const { return *cache_; }
    std::shared_ptr<ShardedEncodingCache> sharedCache()
    {
        return cache_;
    }

    /** Snapshot of the serving counters. */
    Stats stats() const;

    /** Per-model cache-namespace counters for every CURRENTLY
     * resolvable model (one row in classic mode; one per registered
     * name in registry mode, sorted by name). Retired hot-swapped
     * versions are not listed — their entries age out of the LRU. */
    std::vector<ModelCacheStats> perModelCacheStats() const;

    /**
     * Drop all cached encodings (every namespace). Rarely needed
     * since versions are immutable and namespaced; classic load()
     * already invalidates just its own namespace.
     */
    void invalidateCache();

  private:
    /** Shared ctor tail: validate + allocate the private cache when
     * none was supplied. */
    void init(std::shared_ptr<ShardedEncodingCache> cache,
              bool externalCache);

    /** Fetch the phase instruments when opts_.metrics is set. */
    void initMetrics();

    /** Fixed version (classic mode); null in registry mode. */
    std::shared_ptr<const ModelVersion> version_;
    std::shared_ptr<ModelRegistry> registry_;
    Options opts_;
    ThreadPool pool_;
    std::shared_ptr<ShardedEncodingCache> cache_;
    /** Phase instruments (registry-owned; null without metrics). */
    WindowedHistogram* phaseEncodeUs_ = nullptr;
    WindowedHistogram* phaseScoreUs_ = nullptr;
    /** Guards the volume counters below (the cache locks itself). */
    mutable std::mutex mutex_;
    std::uint64_t pairsServed_ = 0;
    std::uint64_t treesEncoded_ = 0;
};

} // namespace ccsa

#endif // CCSA_SERVE_ENGINE_HH
