#include "serve/ipc/fault_injector.hh"

#include <cstdlib>

#include "base/fd_util.hh"

namespace ccsa
{
namespace ipc
{

namespace
{

FaultInjector* globalInjector = nullptr;

bool
globalInterruptHook()
{
    FaultInjector* inj = globalInjector;
    return inj != nullptr && inj->consumeInterrupt();
}

} // namespace

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::Crash: return "crash";
      case FaultKind::Stall: return "stall";
      case FaultKind::TornWrite: return "torn";
      case FaultKind::EintrStorm: return "eintr";
    }
    return "unknown";
}

Result<FaultSpec>
parseFaultSpec(const std::string& text)
{
    if (text.empty())
        return FaultSpec{};

    auto malformed = [&text]() {
        return Status::invalidArgument(
            "bad fault spec '" + text +
            "' (want kind:N[:ms], kind in "
            "{crash, stall, torn, eintr})");
    };

    const std::size_t colon = text.find(':');
    if (colon == std::string::npos || colon + 1 == text.size())
        return malformed();
    const std::string kindText = text.substr(0, colon);

    FaultSpec spec;
    if (kindText == "crash")
        spec.kind = FaultKind::Crash;
    else if (kindText == "stall")
        spec.kind = FaultKind::Stall;
    else if (kindText == "torn")
        spec.kind = FaultKind::TornWrite;
    else if (kindText == "eintr")
        spec.kind = FaultKind::EintrStorm;
    else
        return malformed();

    std::string rest = text.substr(colon + 1);
    std::string stallText;
    if (const std::size_t colon2 = rest.find(':');
        colon2 != std::string::npos) {
        if (spec.kind != FaultKind::Stall)
            return malformed();
        stallText = rest.substr(colon2 + 1);
        rest = rest.substr(0, colon2);
    }

    auto parseU32 = [](const std::string& s, std::uint32_t* out) {
        if (s.empty())
            return false;
        std::uint64_t v = 0;
        for (char c : s) {
            if (c < '0' || c > '9')
                return false;
            v = v * 10 + static_cast<std::uint64_t>(c - '0');
            if (v > 0xffffffffull)
                return false;
        }
        *out = static_cast<std::uint32_t>(v);
        return true;
    };

    if (!parseU32(rest, &spec.trigger) || spec.trigger == 0)
        return malformed();
    if (!stallText.empty() && !parseU32(stallText, &spec.stallMs))
        return malformed();
    return spec;
}

FaultInjector::FaultInjector(FaultSpec spec)
{
    arm(spec);
}

void
FaultInjector::arm(FaultSpec spec)
{
    spec_ = spec;
    requests_ = 0;
    fired_ = false;
    interruptsLeft_ =
        spec_.kind == FaultKind::EintrStorm ? spec_.trigger : 0;
}

FaultKind
FaultInjector::onRequest()
{
    ++requests_;
    if (fired_ || !spec_.active() ||
        spec_.kind == FaultKind::EintrStorm)
        return FaultKind::None;
    if (requests_ < spec_.trigger)
        return FaultKind::None;
    fired_ = true;
    return spec_.kind;
}

bool
FaultInjector::consumeInterrupt()
{
    if (interruptsLeft_ == 0)
        return false;
    --interruptsLeft_;
    return true;
}

void
installGlobalFaultInjector(FaultInjector* injector)
{
    globalInjector = injector;
    setIoInterruptHook(injector != nullptr ? &globalInterruptHook
                                           : nullptr);
}

FaultInjector*
globalFaultInjector()
{
    return globalInjector;
}

} // namespace ipc
} // namespace ccsa
