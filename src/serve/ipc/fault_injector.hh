/**
 * @file
 * Deterministic fault injection for the multi-process serving layer.
 * A FaultSpec is parsed from a compact string (flag- or env-driven:
 * `CCSA_FAULT` / `--fault-inject`) and armed inside the WORKER
 * process, where it perturbs exactly one request:
 *
 *   "crash:N"       _exit(42) on the worker's Nth request (1-based)
 *                   BEFORE replying — the parent sees the socket
 *                   close mid-RPC, exactly like a segfault.
 *   "stall:N[:ms]"  sleep `ms` (default 60000) before replying to
 *                   the Nth request — trips the parent's RPC
 *                   deadline / heartbeat hang detection.
 *   "torn:N"        write only half of the Nth reply frame, then
 *                   _exit(43) — the parent must treat the torn
 *                   frame as a crash, not parse garbage.
 *   "eintr:N"       simulate an EINTR storm: the first N reads and
 *                   writes in the worker are interrupted (via the
 *                   fd_util I/O hook) and must be retried
 *                   transparently — no user-visible effect at all.
 *
 * Faults fire once (first request matching the trigger count) so a
 * respawned worker — which is NOT handed the fault spec again —
 * recovers cleanly; that recovery is what the CI crash-recovery gate
 * asserts.
 */

#ifndef CCSA_SERVE_IPC_FAULT_INJECTOR_HH
#define CCSA_SERVE_IPC_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>

#include "base/result.hh"

namespace ccsa
{
namespace ipc
{

/** Kinds of injectable faults. */
enum class FaultKind
{
    None,
    /** _exit before replying to the Nth request. */
    Crash,
    /** Sleep before replying to the Nth request. */
    Stall,
    /** Write a partial reply frame for the Nth request, then exit. */
    TornWrite,
    /** Interrupt the first N reads/writes with simulated EINTR. */
    EintrStorm,
};

/** @return printable name of a FaultKind. */
const char* faultKindName(FaultKind kind);

/** A parsed fault directive. */
struct FaultSpec
{
    FaultKind kind = FaultKind::None;
    /** 1-based request ordinal (Crash/Stall/TornWrite) or
     * interruption count (EintrStorm). */
    std::uint32_t trigger = 0;
    /** Stall duration in milliseconds (Stall only). */
    std::uint32_t stallMs = 60000;

    bool active() const { return kind != FaultKind::None; }
};

/**
 * Parse "crash:3", "stall:2:500", "torn:1", "eintr:8", or "" (no
 * fault). Malformed specs are InvalidArgument so a typo'd CI flag
 * fails loudly instead of silently testing nothing.
 */
Result<FaultSpec> parseFaultSpec(const std::string& text);

/**
 * Per-worker fault state. Exactly one instance lives in the worker
 * process (single-threaded request loop — no synchronisation
 * needed); the parent never arms one.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec = {});

    /** Arm from spec; installs the fd_util I/O interrupt hook when
     * the spec is an EINTR storm. */
    void arm(FaultSpec spec);

    const FaultSpec& spec() const { return spec_; }

    /**
     * Note that the worker is about to serve its next request.
     * @return the fault to apply to THIS request (None for most).
     * Crash/Stall/TornWrite fire when the running request count hits
     * `trigger`; each fires at most once.
     */
    FaultKind onRequest();

    /** Requests observed so far. */
    std::uint32_t requestCount() const { return requests_; }

    /**
     * EINTR-storm budget consumed by the I/O hook; returns true
     * (simulate EINTR) while interruptions remain. Exposed for unit
     * tests; the installed hook calls this on the armed instance.
     */
    bool consumeInterrupt();

  private:
    FaultSpec spec_;
    std::uint32_t requests_ = 0;
    std::uint32_t interruptsLeft_ = 0;
    bool fired_ = false;
};

/**
 * The worker-global injector the fd_util hook consults. arm()
 * installs `this` here; tests may install their own and must
 * uninstall (installGlobalFaultInjector(nullptr)) before returning.
 */
void installGlobalFaultInjector(FaultInjector* injector);
FaultInjector* globalFaultInjector();

} // namespace ipc
} // namespace ccsa

#endif // CCSA_SERVE_IPC_FAULT_INJECTOR_HH
