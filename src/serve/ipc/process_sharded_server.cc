#include "serve/ipc/process_sharded_server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "serve/coalesce.hh"
#include "serve/encoding_cache.hh"
#include "serve/ipc/worker.hh"

extern char** environ;

namespace ccsa
{

namespace
{

ProcessShardedServer::Options
normalized(ProcessShardedServer::Options opts)
{
    if (opts.numShards == 0)
        opts.numShards = 1;
    if (opts.maxBatchSize == 0)
        opts.maxBatchSize = 1;
    if (opts.maxBatchDelay.count() < 0)
        opts.maxBatchDelay = std::chrono::microseconds(0);
    if (opts.threadsPerWorker < 1)
        opts.threadsPerWorker = 1;
    if (opts.cachePerWorker == 0)
        opts.cachePerWorker = 1;
    if (opts.rpcDeadline.count() <= 0)
        opts.rpcDeadline = std::chrono::milliseconds(1);
    if (opts.breakerThreshold == 0)
        opts.breakerThreshold = 1;
    return opts;
}

/** $CCSA_WORKER, else ccsa_worker next to the running binary (the
 * build tree layout), else bare "ccsa_worker" ($PATH). */
std::string
defaultWorkerBinary()
{
    const char* env = std::getenv("CCSA_WORKER");
    if (env != nullptr && env[0] != '\0')
        return env;
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path(buf);
        std::size_t slash = path.find_last_of('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + "ccsa_worker";
    }
    return "ccsa_worker";
}

} // namespace

ProcessShardedServer::ProcessShardedServer(
    std::shared_ptr<ComparativePredictor> model, Options opts)
    : opts_(normalized(opts))
{
    // One ModelVersion tags every request (labels, grouping); the
    // actual scoring model lives in the worker processes, which load
    // it from the checkpoint written below.
    auto version = std::make_shared<ModelVersion>();
    version->name = "model";
    version->id = 1;
    version->sequence = 1;
    version->model = model;
    version_ = std::move(version);

    // Ship the model once: a v2 checkpoint every spawn loads.
    // Float32 checkpoints round-trip bitwise, so worker results are
    // bitwise-identical to a local Engine on `model`.
    std::string templ = opts_.checkpointDir + "/ccsa_ipc_XXXXXX";
    std::vector<char> pathBuf(templ.begin(), templ.end());
    pathBuf.push_back('\0');
    int fd = ::mkstemp(pathBuf.data());
    if (fd < 0)
        fatal("ProcessShardedServer: cannot create checkpoint in ",
              opts_.checkpointDir, ": ", std::strerror(errno));
    ::close(fd);
    checkpoint_ = pathBuf.data();
    Status saved = model->save(checkpoint_, "model", 1);
    if (!saved.isOk()) {
        ::unlink(checkpoint_.c_str());
        fatal("ProcessShardedServer: checkpoint write failed: ",
              saved.message());
    }

    shards_.reserve(opts_.numShards);
    for (std::size_t s = 0; s < opts_.numShards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->queue = std::make_unique<BoundedQueue<Request>>(
            opts_.queueCapacity);
        shards_.push_back(std::move(shard));
    }
    initMetrics();
    if (!opts_.startPaused)
        start();
}

ProcessShardedServer::~ProcessShardedServer()
{
    shutdown();
    if (!checkpoint_.empty())
        ::unlink(checkpoint_.c_str());
}

void
ProcessShardedServer::initMetrics()
{
    if (opts_.metrics == nullptr)
        return;
    metrics_.init(*opts_.metrics, "ipc");
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        MetricLabels labels{{"server", "ipc"},
                            {"shard", std::to_string(s)}};
        Shard& shard = *shards_[s];
        shard.restartsMetric = &opts_.metrics->counter(
            "ccsa_worker_restarts_total", labels,
            "Successful worker-process respawns after a crash, "
            "hang, or protocol violation.");
        shard.upMetric = &opts_.metrics->gauge(
            "ccsa_worker_up", labels,
            "1 while a live worker process serves this shard.");
        shard.degradedMetric = &opts_.metrics->gauge(
            "ccsa_shard_degraded", labels,
            "1 while this shard's circuit breaker is open "
            "(requests answered Unavailable without an RPC).");
        shard.heartbeatMetric = &opts_.metrics->windowedHistogram(
            "ccsa_heartbeat_latency_us", labels, opts_.metricsWindow,
            "Supervisor ping/pong round-trip per shard (us).");
    }
}

const std::string&
ProcessShardedServer::workerBinary()
{
    if (workerBinary_.empty()) {
        workerBinary_ = opts_.workerPath.empty() ? defaultWorkerBinary()
                                                 : opts_.workerPath;
    }
    return workerBinary_;
}

std::chrono::microseconds
ProcessShardedServer::batchClassDelay() const
{
    if (opts_.maxBatchClassDelay.count() > 0)
        return opts_.maxBatchClassDelay;
    return opts_.maxBatchDelay * 8;
}

void
ProcessShardedServer::startWorkersLocked()
{
    // Spawn eagerly so configuration errors (missing binary, bad
    // checkpoint dir) surface as a down shard NOW instead of on the
    // first request; a failed spawn is not fatal — supervision keeps
    // retrying under backoff.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        std::lock_guard<std::mutex> lock(shards_[s]->rpcMutex);
        ensureWorkerLocked(s);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s)
        shards_[s]->dispatcher =
            std::thread([this, s] { dispatcherLoop(s); });
    supervisor_ = std::thread([this] { supervisorLoop(); });
    started_ = true;
}

void
ProcessShardedServer::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (shutdown_ || started_)
        return;
    startWorkersLocked();
}

void
ProcessShardedServer::shutdown()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (shutdown_)
        return;
    for (auto& shard : shards_)
        shard->queue->close();
    // A paused server still owes answers for everything accepted.
    if (!started_)
        startWorkersLocked();
    for (auto& shard : shards_)
        shard->dispatcher.join();
    {
        std::lock_guard<std::mutex> stop(supervisorMutex_);
        supervisorStop_ = true;
    }
    supervisorCv_.notify_all();
    supervisor_.join();

    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> rpc(shard->rpcMutex);
        if (shard->pid <= 0)
            continue;
        // Orderly first: kShutdown, then EOF (fd close) — either
        // exits a healthy worker. SIGKILL only mops up a wedged one
        // (e.g. mid-stall); workers hold no durable state.
        if (shard->fd.valid()) {
            ipc::writeFrame(shard->fd.get(), ipc::MsgType::kShutdown,
                            0, {});
            shard->fd.reset();
        }
        bool reaped = false;
        for (int i = 0; i < 50 && !reaped; ++i) {
            if (::waitpid(shard->pid, nullptr, WNOHANG) == shard->pid)
                reaped = true;
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        if (!reaped) {
            ::kill(shard->pid, SIGKILL);
            ::waitpid(shard->pid, nullptr, 0);
        }
        shard->pid = -1;
        shard->up = false;
        shard->upFlag = false;
        shard->pidFlag = -1;
        if (shard->upMetric != nullptr)
            shard->upMetric->set(0);
    }
    shutdown_ = true;
}

bool
ProcessShardedServer::isShutdown() const
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    return shutdown_;
}

// ---------------------------------------------------------- submit

std::vector<std::pair<std::size_t, ProcessShardedServer::Request>>
ProcessShardedServer::splitRequest(
    std::vector<Engine::PairRequest> pairs,
    std::function<void(Result<std::vector<double>>)> complete,
    const SubmitOptions& submitOpts,
    std::chrono::steady_clock::time_point submitStart)
{
    auto now = std::chrono::steady_clock::now();
    auto stamp = [&](Request& request) {
        request.version = version_;
        request.priority = submitOpts.priority;
        request.tenant = submitOpts.tenant;
        request.submitted = submitStart;
        request.enqueued = now;
        if (submitOpts.deadline.count() > 0)
            request.deadline = submitStart + submitOpts.deadline;
    };
    std::vector<std::pair<std::size_t, Request>> out;

    // Digest routing as in ShardedServer::splitRequest — but here it
    // is LOAD-BEARING, not advisory: each worker process owns its
    // partition's encoding cache in a separate address space, so a
    // slice must land on the process that owns its first trees.
    std::vector<std::vector<std::size_t>> groups(shards_.size());
    if (shards_.size() == 1) {
        Request request;
        request.pairs = std::move(pairs);
        request.complete = std::move(complete);
        stamp(request);
        out.emplace_back(0, std::move(request));
        return out;
    }
    std::unordered_map<const Ast*, std::size_t> shardOfTree;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        auto [it, inserted] = shardOfTree.emplace(pairs[i].first, 0);
        if (inserted)
            it->second = ShardedEncodingCache::shardOf(
                digestAst(*pairs[i].first), shards_.size());
        groups[it->second].push_back(i);
    }
    std::size_t nonEmpty = 0;
    std::size_t lastShard = 0;
    for (std::size_t s = 0; s < groups.size(); ++s) {
        if (!groups[s].empty()) {
            nonEmpty++;
            lastShard = s;
        }
    }

    if (nonEmpty == 1) {
        Request request;
        request.pairs = std::move(pairs);
        request.complete = std::move(complete);
        stamp(request);
        out.emplace_back(lastShard, std::move(request));
        return out;
    }

    auto join = std::make_shared<JoinState>();
    join->values.resize(pairs.size(), 0.0);
    join->remaining = nonEmpty;
    join->complete = std::move(complete);

    for (std::size_t s = 0; s < groups.size(); ++s) {
        const std::vector<std::size_t>& slots = groups[s];
        if (slots.empty())
            continue;
        Request request;
        request.pairs.reserve(slots.size());
        for (std::size_t i : slots)
            request.pairs.push_back(pairs[i]);
        stamp(request);
        request.complete =
            [join, slots](Result<std::vector<double>> r) {
                bool done = false;
                {
                    std::lock_guard<std::mutex> lock(join->mutex);
                    if (r.isOk()) {
                        for (std::size_t k = 0; k < slots.size();
                             ++k)
                            join->values[slots[k]] = r.value()[k];
                    } else if (join->error.isOk()) {
                        join->error = r.status();
                    }
                    done = --join->remaining == 0;
                }
                if (done) {
                    if (join->error.isOk())
                        join->complete(std::move(join->values));
                    else
                        join->complete(join->error);
                }
            };
        out.emplace_back(s, std::move(request));
    }
    return out;
}

bool
ProcessShardedServer::submitCore(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs,
    std::function<void(Result<std::vector<double>>)> complete)
{
    auto submitStart = std::chrono::steady_clock::now();

    // Same completion-side attribution as ShardedServer::submitCore:
    // deadline expiries are attributed rejections, everything else
    // completes or fails, and a door-rejected request raises the tag
    // so outcome counters stay disjoint.
    auto rejectedTag = std::make_shared<std::atomic<bool>>(false);
    auto counted =
        [this, rejectedTag, tenant = submitOpts.tenant,
         complete = std::move(complete)](
            Result<std::vector<double>> r) {
            if (!rejectedTag->load()) {
                bool deadline = !r.isOk() &&
                    r.status().code() ==
                        StatusCode::DeadlineExceeded;
                if (metrics_.enabled())
                    (r.isOk()          ? metrics_.completed
                         : deadline    ? metrics_.rejectedDeadline
                                       : metrics_.failed)
                        ->inc();
                std::lock_guard<std::mutex> lock(submitMutex_);
                if (r.isOk()) {
                    completed_++;
                    tenants_[tenant].completed++;
                } else if (deadline) {
                    rejectedDeadline_++;
                    tenants_[tenant].rejectedDeadline++;
                } else {
                    failed_++;
                    tenants_[tenant].failed++;
                }
            }
            complete(std::move(r));
        };

    for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (pairs[i].first == nullptr || pairs[i].second == nullptr) {
            counted(Status::invalidArgument(
                "submit: null tree in pair " + std::to_string(i)));
            return true;
        }
    }
    if (pairs.empty()) {
        counted(std::vector<double>{});
        return true;
    }
    // Single-model server: there is no registry to resolve names
    // against (the model already shipped to the workers at spawn).
    if (!submitOpts.model.empty() &&
        submitOpts.model != version_->name) {
        counted(Status::invalidArgument(
            "ProcessShardedServer serves a single model; unknown "
            "model \"" + submitOpts.model + "\""));
        return true;
    }

    if (opts_.admission != nullptr) {
        Status admitted =
            opts_.admission->admit(submitOpts.tenant, pairs.size());
        if (!admitted.isOk()) {
            if (metrics_.enabled())
                metrics_.rejectedQuota->inc();
            {
                std::lock_guard<std::mutex> lock(submitMutex_);
                rejectedQuota_++;
                tenants_[submitOpts.tenant].rejectedQuota++;
            }
            rejectedTag->store(true);
            counted(admitted);
            return true;
        }
    }

    std::vector<std::pair<std::size_t, Request>> slices =
        splitRequest(std::move(pairs), std::move(counted),
                     submitOpts, submitStart);

    bool anyClosed = false;
    for (auto& [shard, request] : slices) {
        if (shards_[shard]->queue->push(std::move(request)) ==
            QueuePush::Closed) {
            if (!anyClosed) {
                if (metrics_.enabled())
                    metrics_.rejectedShutdown->inc();
                std::lock_guard<std::mutex> lock(submitMutex_);
                rejectedShutdown_++;
            }
            anyClosed = true;
            rejectedTag->store(true);
            // push leaves the item untouched on rejection; resolve
            // the slice so a join still fans in correctly.
            request.complete(Status::unavailable(
                "ProcessShardedServer: submit after shutdown"));
        }
    }
    if (!anyClosed) {
        if (metrics_.enabled())
            metrics_.submitted->inc();
        std::lock_guard<std::mutex> lock(submitMutex_);
        submitted_++;
        tenants_[submitOpts.tenant].submitted++;
    }
    return true;
}

std::future<Result<double>>
ProcessShardedServer::submitCompare(const Ast& first,
                                    const Ast& second)
{
    return submitCompare(SubmitOptions(), first, second);
}

std::future<Result<double>>
ProcessShardedServer::submitCompare(const SubmitOptions& submitOpts,
                                    const Ast& first,
                                    const Ast& second)
{
    auto promise = std::make_shared<std::promise<Result<double>>>();
    std::future<Result<double>> future = promise->get_future();
    submitCore(submitOpts, {Engine::PairRequest{&first, &second}},
               [promise](Result<std::vector<double>> r) {
                   if (r.isOk())
                       promise->set_value(r.value()[0]);
                   else
                       promise->set_value(r.status());
               });
    return future;
}

std::future<Result<std::vector<double>>>
ProcessShardedServer::submitCompareMany(
    std::vector<Engine::PairRequest> pairs)
{
    return submitCompareMany(SubmitOptions(), std::move(pairs));
}

std::future<Result<std::vector<double>>>
ProcessShardedServer::submitCompareMany(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<double>>>>();
    std::future<Result<std::vector<double>>> future =
        promise->get_future();
    submitCore(submitOpts, std::move(pairs),
               [promise](Result<std::vector<double>> r) {
                   promise->set_value(std::move(r));
               });
    return future;
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
ProcessShardedServer::submitRank(std::vector<const Ast*> candidates)
{
    return submitRank(SubmitOptions(), std::move(candidates));
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
ProcessShardedServer::submitRank(const SubmitOptions& submitOpts,
                                 std::vector<const Ast*> candidates)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<Engine::RankedCandidate>>>>();
    std::future<Result<std::vector<Engine::RankedCandidate>>> future =
        promise->get_future();
    if (candidates.size() < 2) {
        promise->set_value(Status::invalidArgument(
            "submitRank: need at least two candidates"));
        if (metrics_.enabled())
            metrics_.failed->inc();
        std::lock_guard<std::mutex> lock(submitMutex_);
        failed_++;
        return future;
    }
    std::size_t n = candidates.size();
    submitCore(submitOpts, Engine::tournamentPairs(candidates),
               [promise, n](Result<std::vector<double>> r) {
                   if (r.isOk())
                       promise->set_value(Engine::aggregateTournament(
                           n, r.value()));
                   else
                       promise->set_value(r.status());
               });
    return future;
}

// ------------------------------------------------------ dispatcher

void
ProcessShardedServer::dispatcherLoop(std::size_t s)
{
    Shard& shard = *shards_[s];
    Coalescer<Request> coalescer(*shard.queue, opts_.maxBatchSize,
                                 opts_.maxBatchDelay,
                                 batchClassDelay());
    for (;;) {
        std::optional<CoalescedBatch<Request>> batch =
            coalescer.next();
        if (!batch)
            return;
        expireDeadlines(*batch, std::chrono::steady_clock::now(),
                        "ProcessShardedServer", [](const Request&) {});
        if (batch->requests.empty())
            continue;
        serveBatch(s, *batch);
    }
}

void
ProcessShardedServer::failBatch(CoalescedBatch<Request>& batch,
                                const Status& status)
{
    for (Request& r : batch.requests)
        r.complete(status);
}

void
ProcessShardedServer::serveBatch(std::size_t s,
                                 CoalescedBatch<Request>& batch)
{
    Shard& shard = *shards_[s];
    std::vector<Engine::PairRequest> flat = batch.flattenPairs();
    ipc::TreeBatch trees = ipc::makeTreeBatch(flat);
    std::string where =
        "ProcessShardedServer: shard " + std::to_string(s);

    std::unique_lock<std::mutex> lock(shard.rpcMutex);
    if (!ensureWorkerLocked(s)) {
        // Dead worker behind its backoff gate, or an open breaker:
        // fail FAST with an attributed status — the other shards
        // keep serving their partitions (graceful N-1 degradation).
        failBatch(batch,
                  Status::unavailable(where + " unavailable (worker "
                                              "down or degraded)"));
        return;
    }

    // The two phases are PIPELINED: both request frames go out
    // back-to-back, then both replies are read — one worker wakeup
    // per batch instead of two. The worker serves frames strictly in
    // order and replies to each before reading the next, so the
    // at-most-once contract survives pipelining: a missing ENCODE
    // reply proves the compare frame was never even read (it died
    // unread in the socket buffer), making the encode leg — and the
    // queued compare behind it — safe to resend on a fresh worker.
    // A missing COMPARE reply after a good encode reply means the
    // worker died mid-compare, and that leg still fails fast.
    //
    // Phase 1 — ENCODE. Idempotent (latents are a pure function of
    // the trees), so a crash here retries on a fresh worker — which
    // doubles as warming the respawned process's cache partition.
    // Phase 2 — COMPARE, by DIGEST: each tree crosses the wire
    // exactly once per batch, in encode. If the worker evicted any
    // referenced latent it refuses before running the head
    // (ResourceExhausted) and the one self-contained resend below is
    // still the FIRST execution.
    std::vector<AstDigest> digests;
    digests.reserve(trees.trees.size());
    for (const Ast* tree : trees.trees)
        digests.push_back(digestAst(*tree));
    std::vector<std::pair<AstDigest, AstDigest>> digestPairs;
    digestPairs.reserve(trees.pairs.size());
    for (const auto& pair : trees.pairs)
        digestPairs.emplace_back(digests[pair.first],
                                 digests[pair.second]);
    std::vector<std::uint8_t> digPayload =
        ipc::encodeCompareDigestsRequest(digestPairs);

    std::size_t attempt = 0;
    std::uint64_t cmpId = 0;
    std::vector<std::size_t> shipped; // indices into trees.trees
    for (;;) {
        // Ship only trees the residency mirror can't vouch for —
        // against a warm worker the encode frame carries ZERO trees
        // and exists to keep the phase cadence (and the fault
        // injector's request arithmetic) identical in every batch.
        shipped.clear();
        std::vector<const Ast*> unknown;
        for (std::size_t i = 0; i < trees.trees.size(); ++i) {
            if (shard.residentOverflow ||
                shard.residentDigests.count(digests[i]) == 0) {
                shipped.push_back(i);
                unknown.push_back(trees.trees[i]);
            }
        }
        std::vector<std::uint8_t> encPayload =
            ipc::encodeEncodeRequest(unknown);

        std::uint64_t encId = 0;
        ipc::Frame reply;
        Rpc rc = Rpc::Closed;
        if (sendRequestPairLocked(shard, ipc::MsgType::kEncode,
                                  encPayload, &encId,
                                  ipc::MsgType::kCompareDigests,
                                  digPayload, &cmpId))
            rc = awaitReplyLocked(shard, encId, opts_.rpcDeadline,
                                  &reply);
        if (rc == Rpc::Ok) {
            Result<std::vector<std::vector<float>>> latents =
                Status::internal("encode reply not decoded");
            Status decoded =
                ipc::decodeEncodeReply(reply.payload, &latents);
            if (decoded.isOk()) {
                if (!latents.isOk()) {
                    // The worker ran and refused (e.g. malformed
                    // tree): a real answer, not a fault. The queued
                    // digest compare will refuse on the same missing
                    // latents; its stale reply is skipped by the
                    // next awaitReplyLocked on this shard.
                    failBatch(batch, latents.status());
                    return;
                }
                // The worker inserted every shipped tree before
                // replying — extend the mirror, or abandon it the
                // moment the worker's LRU may have started evicting.
                if (!shard.residentOverflow) {
                    for (std::size_t i : shipped)
                        shard.residentDigests.insert(digests[i]);
                    if (shard.residentDigests.size() >
                        opts_.cachePerWorker) {
                        shard.residentDigests.clear();
                        shard.residentOverflow = true;
                    }
                }
                break;
            }
            rc = Rpc::Closed; // corrupt reply == treat as crash
        }
        if (rc == Rpc::Timeout) {
            // Hung worker: kill it, answer DeadlineExceeded. A hang
            // is not retried — the caller's clock already ran.
            handleFailureLocked(s);
            failBatch(batch, Status::deadlineExceeded(
                                 where + " encode RPC deadline "
                                         "(worker hung)"));
            return;
        }
        handleFailureLocked(s);
        if (attempt++ >= opts_.encodeRetryLimit ||
            !ensureWorkerLocked(s)) {
            failBatch(batch, Status::unavailable(
                                 where + " worker crashed during "
                                         "encode"));
            return;
        }
    }

    // Phase 2 resolution. NEVER retried on a crash: if the worker
    // dies after a good encode reply we cannot know how far the
    // compare got, so the batch fails fast with an attributed
    // status instead of risking a second execution.
    for (bool selfContained = false;; selfContained = true) {
        ipc::Frame reply;
        Rpc rc = selfContained
            ? rpcLocked(shard, ipc::MsgType::kCompare,
                        ipc::encodeCompareRequest(trees),
                        opts_.rpcDeadline, &reply)
            : awaitReplyLocked(shard, cmpId, opts_.rpcDeadline,
                               &reply);
        if (rc == Rpc::Ok) {
            Result<std::vector<double>> result =
                Status::internal("compare reply not decoded");
            Status decoded =
                ipc::decodeCompareReply(reply.payload, &result);
            if (decoded.isOk()) {
                if (!result.isOk()) {
                    if (!selfContained &&
                        result.status().code() ==
                            StatusCode::ResourceExhausted)
                        continue; // evicted latents: resend trees
                    failBatch(batch, result.status());
                    return;
                }
                if (result.value().size() != batch.pairCount) {
                    handleFailureLocked(s);
                    failBatch(batch,
                              Status::internal(
                                  where + " compare reply count "
                                          "mismatch"));
                    return;
                }
                lock.unlock(); // completions don't need the socket
                completeBatch(s, batch, result.value());
                return;
            }
            rc = Rpc::Closed;
        }
        if (rc == Rpc::Timeout) {
            handleFailureLocked(s);
            failBatch(batch, Status::deadlineExceeded(
                                 where + " compare RPC deadline "
                                         "(worker hung)"));
            return;
        }
        handleFailureLocked(s);
        failBatch(batch, Status::unavailable(
                             where + " worker crashed mid-batch "
                                     "(compare is not retried)"));
        return;
    }
}

void
ProcessShardedServer::completeBatch(std::size_t s,
                                    CoalescedBatch<Request>& batch,
                                    const std::vector<double>& probs)
{
    Shard& shard = *shards_[s];
    auto completedAt = std::chrono::steady_clock::now();
    if (metrics_.enabled()) {
        metrics_.batches->inc();
        metrics_.batchPairs->inc(batch.pairCount);
    }
    {
        std::lock_guard<std::mutex> lock(shard.statsMutex);
        shard.batches++;
        shard.pairsServed += batch.pairCount;
        shard.batchSizes.add(batch.pairCount);
        for (const Request& r : batch.requests) {
            std::size_t us =
                latencySampleUs(completedAt - r.enqueued);
            shard.latencyUs.add(us);
            shard.tenantLatencyUs[r.tenant].add(us);
        }
    }
    for (const Request& r : batch.requests) {
        std::size_t us = latencySampleUs(completedAt - r.enqueued);
        if (metrics_.enabled())
            serverLatencyHistogram(*opts_.metrics, "ipc",
                                   r.version->name, r.tenant,
                                   r.priority, opts_.metricsWindow)
                .add(us, completedAt);
    }
    std::size_t off = 0;
    for (Request& r : batch.requests) {
        auto begin =
            probs.begin() + static_cast<std::ptrdiff_t>(off);
        r.complete(std::vector<double>(
            begin,
            begin + static_cast<std::ptrdiff_t>(r.pairs.size())));
        off += r.pairs.size();
    }
}

// ------------------------------------------------------ rpc plumbing

bool
ProcessShardedServer::sendRequestLocked(
    Shard& shard, ipc::MsgType type,
    const std::vector<std::uint8_t>& payload, std::uint64_t* id)
{
    if (!shard.fd.valid())
        return false;
    *id = shard.nextFrameId++;
    return ipc::writeFrame(shard.fd.get(), type, *id, payload);
}

bool
ProcessShardedServer::sendRequestPairLocked(
    Shard& shard, ipc::MsgType type1,
    const std::vector<std::uint8_t>& payload1, std::uint64_t* id1,
    ipc::MsgType type2, const std::vector<std::uint8_t>& payload2,
    std::uint64_t* id2)
{
    if (!shard.fd.valid())
        return false;
    *id1 = shard.nextFrameId++;
    *id2 = shard.nextFrameId++;
    // One send for both frames: the worker's blocking read wakes once
    // per batch, and the pair can never be split by a crash of THIS
    // process between the two writes.
    std::vector<std::uint8_t> bytes;
    bytes.reserve(2 * 17 + payload1.size() + payload2.size());
    if (!ipc::appendFrame(bytes, type1, *id1, payload1) ||
        !ipc::appendFrame(bytes, type2, *id2, payload2))
        return false; // oversized payload: same path as a dead peer
    return ipc::writeRaw(shard.fd.get(), bytes);
}

ProcessShardedServer::Rpc
ProcessShardedServer::rpcLocked(Shard& shard, ipc::MsgType type,
                                const std::vector<std::uint8_t>& payload,
                                std::chrono::milliseconds deadline,
                                ipc::Frame* reply)
{
    std::uint64_t id = 0;
    if (!sendRequestLocked(shard, type, payload, &id))
        return Rpc::Closed;
    return awaitReplyLocked(shard, id, deadline, reply);
}

ProcessShardedServer::Rpc
ProcessShardedServer::awaitReplyLocked(
    Shard& shard, std::uint64_t id,
    std::chrono::milliseconds deadline, ipc::Frame* reply)
{
    if (!shard.fd.valid())
        return Rpc::Closed;
    auto deadlineAt = std::chrono::steady_clock::now() + deadline;
    for (;;) {
        auto now = std::chrono::steady_clock::now();
        if (now >= deadlineAt)
            return Rpc::Timeout;
        auto remain =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadlineAt - now)
                .count() +
            1;
        struct pollfd pfd;
        pfd.fd = shard.fd.get();
        pfd.events = POLLIN;
        pfd.revents = 0;
        int rv = ::poll(&pfd, 1,
                        static_cast<int>(std::min<long long>(
                            remain, 1000000)));
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            return Rpc::Closed;
        }
        if (rv == 0)
            return Rpc::Timeout;
        // Readable (or HUP — readFrame turns that into Eof/Error).
        ipc::Frame frame;
        ipc::ReadFrame rf = ipc::readFrame(shard.fd.get(), &frame);
        if (rf != ipc::ReadFrame::Ok)
            return Rpc::Closed;
        if (frame.id != id)
            continue; // stale reply from an abandoned earlier RPC
        *reply = std::move(frame);
        return Rpc::Ok;
    }
}

ProcessShardedServer::Rpc
ProcessShardedServer::pingLocked(Shard& shard,
                                 std::chrono::milliseconds deadline,
                                 std::chrono::microseconds* latency)
{
    auto start = std::chrono::steady_clock::now();
    ipc::Frame reply;
    Rpc rc = rpcLocked(shard, ipc::MsgType::kPing, {}, deadline,
                       &reply);
    if (rc != Rpc::Ok)
        return rc;
    if (reply.type != ipc::MsgType::kPong)
        return Rpc::Closed; // protocol violation
    if (latency != nullptr)
        *latency =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start);
    return Rpc::Ok;
}

// ------------------------------------------------------ supervision

bool
ProcessShardedServer::ensureWorkerLocked(std::size_t s)
{
    Shard& shard = *shards_[s];
    if (shard.up)
        return true;
    auto now = std::chrono::steady_clock::now();
    if (shard.breakerOpen) {
        // Open breaker rejects instantly until the cooldown lapses;
        // then exactly one half-open spawn attempt is allowed.
        if (now - shard.breakerOpenedAt < opts_.breakerCooldown)
            return false;
    } else if (now < shard.nextSpawnAllowed) {
        return false; // backoff gate: fail fast, do not sleep
    }
    return spawnLocked(s);
}

void
ProcessShardedServer::handleFailureLocked(std::size_t s)
{
    Shard& shard = *shards_[s];
    if (shard.pid > 0) {
        ::kill(shard.pid, SIGKILL);
        ::waitpid(shard.pid, nullptr, 0);
    }
    shard.fd.reset();
    shard.pid = -1;
    shard.up = false;
    shard.upFlag = false;
    shard.pidFlag = -1;
    if (shard.upMetric != nullptr)
        shard.upMetric->set(0);

    auto now = std::chrono::steady_clock::now();
    shard.consecutiveFailures++;
    shard.recentRestarts.push_back(now);
    while (!shard.recentRestarts.empty() &&
           now - shard.recentRestarts.front() > opts_.breakerWindow)
        shard.recentRestarts.pop_front();
    if (!shard.breakerOpen &&
        shard.recentRestarts.size() >= opts_.breakerThreshold) {
        shard.breakerOpen = true;
        shard.breakerOpenedAt = now;
        shard.degradedFlag = true;
        if (shard.degradedMetric != nullptr)
            shard.degradedMetric->set(1);
    } else if (shard.breakerOpen) {
        // A failed half-open attempt re-arms the cooldown.
        shard.breakerOpenedAt = now;
    }
    // First respawn is immediate (one crash should cost one batch,
    // not a backoff window); repeats back off exponentially.
    if (shard.consecutiveFailures <= 1) {
        shard.nextSpawnAllowed = now;
    } else {
        unsigned shift =
            std::min(shard.consecutiveFailures - 2, 20u);
        auto backoff = opts_.backoffInitial * (1LL << shift);
        if (backoff > opts_.backoffMax)
            backoff = opts_.backoffMax;
        shard.nextSpawnAllowed = now + backoff;
    }
}

bool
ProcessShardedServer::spawnLocked(std::size_t s)
{
    Shard& shard = *shards_[s];
    int fds[2];
    if (!makeSocketPair(fds)) {
        handleFailureLocked(s);
        return false;
    }
    FdGuard parentEnd(fds[0]);
    FdGuard childEnd(fds[1]);

    const std::string& binary = workerBinary();
    std::string cacheArg = std::to_string(opts_.cachePerWorker);
    std::string threadsArg = std::to_string(opts_.threadsPerWorker);
    std::string precisionArg =
        latentPrecisionName(opts_.latentPrecision);
    std::vector<char*> argv{
        const_cast<char*>(binary.c_str()),
        const_cast<char*>(checkpoint_.c_str()),
        const_cast<char*>(cacheArg.c_str()),
        const_cast<char*>(threadsArg.c_str()),
        const_cast<char*>(precisionArg.c_str()), nullptr};

    // Injected faults go to the FIRST spawn of the fault shard only:
    // recovery after the fault must be the clean path. Build the
    // environment pre-fork (fork + malloc don't mix).
    bool inject = !opts_.faultSpec.empty() &&
        s == opts_.faultShard && shard.generation == 0;
    std::string faultVar = "CCSA_FAULT=" + opts_.faultSpec;
    std::vector<char*> envp;
    for (char** e = environ; *e != nullptr; ++e)
        if (std::strncmp(*e, "CCSA_FAULT=", 11) != 0)
            envp.push_back(*e);
    if (inject)
        envp.push_back(faultVar.data());
    envp.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        handleFailureLocked(s);
        return false;
    }
    if (pid == 0) {
        // Child: hand the socket over as fd 3 and become the worker.
        if (childEnd.get() == ipc::kWorkerFd) {
            // Already there — just clear CLOEXEC (dup2 onto itself
            // would not).
            int flags = ::fcntl(ipc::kWorkerFd, F_GETFD);
            ::fcntl(ipc::kWorkerFd, F_SETFD, flags & ~FD_CLOEXEC);
        } else if (::dup2(childEnd.get(), ipc::kWorkerFd) < 0) {
            ::_exit(127);
        }
        ::execve(binary.c_str(), argv.data(), envp.data());
        ::_exit(127); // exec failed; parent sees the socket close
    }

    shard.generation++;
    shard.generationFlag = shard.generation;
    childEnd.reset();
    shard.fd = std::move(parentEnd);
    shard.pid = pid;
    shard.up = true; // provisional until the handshake lands
    // Fresh process, cold cache: the residency mirror restarts.
    shard.residentDigests.clear();
    shard.residentOverflow = false;

    // Handshake: one ping under the (longer) spawn deadline covers
    // exec + checkpoint load in the fresh process.
    if (pingLocked(shard, opts_.spawnDeadline) != Rpc::Ok) {
        handleFailureLocked(s);
        return false;
    }
    shard.consecutiveFailures = 0;
    if (shard.breakerOpen) {
        // Half-open probe succeeded: close the breaker.
        shard.breakerOpen = false;
        shard.degradedFlag = false;
        if (shard.degradedMetric != nullptr)
            shard.degradedMetric->set(0);
    }
    shard.upFlag = true;
    shard.pidFlag = pid;
    if (shard.upMetric != nullptr)
        shard.upMetric->set(1);
    if (shard.generation > 1) {
        shard.restarts++;
        if (shard.restartsMetric != nullptr)
            shard.restartsMetric->inc();
    }
    return true;
}

void
ProcessShardedServer::supervisorLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(supervisorMutex_);
            supervisorCv_.wait_for(lock, opts_.heartbeatInterval,
                                   [&] { return supervisorStop_; });
            if (supervisorStop_)
                return;
        }
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            Shard& shard = *shards_[s];
            // try_lock: a dispatcher mid-RPC owns the socket, and
            // its own per-call deadline already covers a hang there
            // — pinging behind its back would interleave frames.
            std::unique_lock<std::mutex> lock(shard.rpcMutex,
                                              std::try_to_lock);
            if (!lock.owns_lock())
                continue;
            if (shard.up) {
                int wstatus = 0;
                if (::waitpid(shard.pid, &wstatus, WNOHANG) ==
                    shard.pid) {
                    // Spontaneous death (crash between batches):
                    // already reaped, so clear the pid before the
                    // bookkeeping path tries to kill/reap again.
                    shard.pid = -1;
                    handleFailureLocked(s);
                } else {
                    std::chrono::microseconds latency{0};
                    if (pingLocked(shard, opts_.heartbeatDeadline,
                                   &latency) == Rpc::Ok) {
                        if (shard.heartbeatMetric != nullptr)
                            shard.heartbeatMetric->add(
                                static_cast<std::size_t>(
                                    latency.count()),
                                std::chrono::steady_clock::now());
                    } else {
                        handleFailureLocked(s);
                    }
                }
            }
            if (!shard.up)
                ensureWorkerLocked(s); // respects backoff + breaker
        }
    }
}

// ----------------------------------------------------------- stats

ProcessShardedServerStats
ProcessShardedServer::stats() const
{
    ProcessShardedServerStats out;
    out.shards.reserve(shards_.size());
    out.health.reserve(shards_.size());
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    for (const auto& shardPtr : shards_) {
        const Shard& shard = *shardPtr;
        ServerStats row;
        {
            std::lock_guard<std::mutex> lock(shard.statsMutex);
            row.batches = shard.batches;
            row.pairsServed = shard.pairsServed;
            row.batchSizes = shard.batchSizes;
            row.latencyUs = shard.latencyUs;
            row.tenants.reserve(shard.tenantLatencyUs.size());
            for (const auto& [name, hist] : shard.tenantLatencyUs) {
                TenantStats t;
                t.tenant = name;
                t.latencyUs = hist;
                row.tenants.push_back(std::move(t));
            }
        }
        std::sort(row.tenants.begin(), row.tenants.end(),
                  [](const TenantStats& a, const TenantStats& b) {
                      return a.tenant < b.tenant;
                  });
        for (TenantStats& t : row.tenants)
            fillTenantPercentiles(t);
        fillLatencyPercentiles(row);
        row.queueDepth = shard.queue->size();
        row.queueCapacity = shard.queue->capacity();
        queueDepth += row.queueDepth;
        queueCapacity += row.queueCapacity;
        out.shards.push_back(std::move(row));

        WorkerHealth health;
        health.pid = shard.pidFlag.load();
        health.generation = shard.generationFlag.load();
        health.restarts = shard.restarts.load();
        health.up = shard.upFlag.load();
        health.degraded = shard.degradedFlag.load();
        out.health.push_back(health);
    }

    out.aggregate = mergeServerStats(out.shards);
    // Engine/cache counters live inside the worker processes; the
    // parent deliberately reports none rather than stale zeros per
    // shard summed into a fake aggregate (mergeServerStats already
    // summed zeros — make the contract explicit).
    out.aggregate.engine = Engine::Stats{};
    out.aggregate.queueDepth = queueDepth;
    out.aggregate.queueCapacity = queueCapacity;
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        out.aggregate.requestsSubmitted = submitted_;
        out.aggregate.requestsRejectedShed = rejectedShed_;
        out.aggregate.requestsRejectedShutdown = rejectedShutdown_;
        out.aggregate.requestsRejectedQuota = rejectedQuota_;
        out.aggregate.requestsRejectedDeadline = rejectedDeadline_;
        out.aggregate.requestsRejected = rejectedShed_ +
            rejectedShutdown_ + rejectedQuota_ + rejectedDeadline_;
        out.aggregate.requestsCompleted = completed_;
        out.aggregate.requestsFailed = failed_;
        for (const auto& [name, counters] : tenants_) {
            TenantStats* row = nullptr;
            for (TenantStats& t : out.aggregate.tenants)
                if (t.tenant == name) {
                    row = &t;
                    break;
                }
            if (row == nullptr) {
                TenantStats t;
                t.tenant = name;
                out.aggregate.tenants.push_back(std::move(t));
                row = &out.aggregate.tenants.back();
            }
            row->submitted = counters.submitted;
            row->completed = counters.completed;
            row->failed = counters.failed;
            row->rejectedQuota = counters.rejectedQuota;
            row->rejectedDeadline = counters.rejectedDeadline;
        }
    }
    std::sort(out.aggregate.tenants.begin(),
              out.aggregate.tenants.end(),
              [](const TenantStats& a, const TenantStats& b) {
                  return a.tenant < b.tenant;
              });
    return out;
}

void
ProcessShardedServer::sampleMetrics() const
{
    if (opts_.metrics == nullptr)
        return;
    std::size_t depth = 0;
    std::size_t capacity = 0;
    for (const auto& shard : shards_) {
        depth += shard->queue->size();
        capacity += shard->queue->capacity();
        if (shard->upMetric != nullptr)
            shard->upMetric->set(shard->upFlag.load() ? 1 : 0);
        if (shard->degradedMetric != nullptr)
            shard->degradedMetric->set(
                shard->degradedFlag.load() ? 1 : 0);
    }
    publishServerGauges(*opts_.metrics, "ipc", depth, capacity, {});
}

} // namespace ccsa
