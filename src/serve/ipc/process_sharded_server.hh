/**
 * @file
 * ccsa::ProcessShardedServer — crash-isolated sharded serving.
 * ShardedServer scaled execution across N threads, but every shard
 * still shares one address space: a single segfault in any encode
 * path takes the whole service down. This server moves each shard
 * into its own PROCESS (a `ccsa_worker` binary speaking the
 * length-prefixed protocol of serve/ipc/wire.hh over a socketpair),
 * so a worker crash costs one partition for the respawn window, not
 * the service.
 *
 * Transport & routing:
 *  - The model ships once, as a v2 checkpoint the parent writes at
 *    construction; every worker loads it at exec (float32 checkpoint
 *    round-trips are bitwise-exact, so cross-process results stay
 *    bitwise-identical to a local Engine on the same weights).
 *  - Requests route by structural digest exactly as ShardedServer
 *    (shard = digest.lo % numShards on each pair's first tree),
 *    split/join included — but here routing is CORRECTNESS-adjacent,
 *    not just an optimisation: each worker process owns its
 *    partition's encoding cache in its own address space
 *    (partition-per-process), so each shard has its own request
 *    queue + dispatcher instead of one work-stealing queue.
 *  - Each dispatcher serves a coalesced batch in two phases: an
 *    ENCODE RPC (idempotent — latents are a pure function of the
 *    trees — so it is retried on a freshly respawned worker, up to
 *    Options::encodeRetryLimit), then a COMPARE RPC that is NEVER
 *    retried: if the worker dies mid-compare the batch fails fast
 *    with an attributed Status instead of risking double execution.
 *
 * Supervision (the robustness layer):
 *  - Every RPC carries a deadline; an overdue reply means the worker
 *    is hung (e.g. the stall fault): it is SIGKILLed, the batch
 *    completes with Status::DeadlineExceeded, and a respawn is
 *    scheduled.
 *  - A supervisor thread heartbeats idle workers (ping/pong, latency
 *    into ccsa_heartbeat_latency_us), reaps spontaneous exits, and
 *    respawns dead workers under capped exponential backoff (first
 *    respawn immediate, then backoffInitial doubling up to
 *    backoffMax).
 *  - A circuit breaker degrades a flapping shard: breakerThreshold
 *    restarts within breakerWindow open the breaker, and while it is
 *    open the shard answers Unavailable IMMEDIATELY (clients fail
 *    fast; the other N-1 shards keep serving their partitions).
 *    After breakerCooldown one half-open respawn is attempted; a
 *    healthy ping closes the breaker.
 *  - Nothing is ever lost: every accepted request resolves with a
 *    value or an attributed error (crash -> Unavailable, hang ->
 *    DeadlineExceeded, open breaker -> Unavailable), and nothing is
 *    ever double-executed (only the idempotent encode phase
 *    retries).
 *
 * Fault injection: Options::faultSpec (serve/ipc/fault_injector.hh,
 * same grammar as the daemon's --fault-inject flag) is exported as
 * CCSA_FAULT to the FIRST spawn of Options::faultShard only —
 * respawned workers never inherit it, so recovery after the injected
 * fault is the clean path the tests and tools/check_crash_recovery.py
 * assert.
 *
 * Metrics plane: ServerMetrics under {server="ipc"} plus
 * ccsa_worker_restarts_total / ccsa_worker_up / ccsa_shard_degraded
 * per shard and the heartbeat latency histogram.
 *
 * Single-model by design: multi-model registry serving stays
 * in-process (ShardedServer); this server trades that flexibility
 * for fault isolation. Submit with a non-empty model name fails
 * InvalidArgument.
 */

#ifndef CCSA_SERVE_IPC_PROCESS_SHARDED_SERVER_HH
#define CCSA_SERVE_IPC_PROCESS_SHARDED_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <sys/types.h>

#include "base/bounded_queue.hh"
#include "base/fd_util.hh"
#include "base/result.hh"
#include "base/stats.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/coalesce.hh"
#include "serve/engine.hh"
#include "serve/ipc/fault_injector.hh"
#include "serve/ipc/wire.hh"
#include "serve/server_stats.hh"

namespace ccsa
{

/** One shard's supervision snapshot. */
struct WorkerHealth
{
    /** Current worker pid (-1 while down). */
    pid_t pid = -1;
    /** Spawn count for this shard; the first spawn is generation 0
     * (the only one that inherits Options::faultSpec). */
    std::uint64_t generation = 0;
    /** Respawns performed (generation - 1 while up, clamped >= 0). */
    std::uint64_t restarts = 0;
    /** True while a live worker is serving the partition. */
    bool up = false;
    /** True while the circuit breaker has the shard degraded. */
    bool degraded = false;
};

/** Fleet + per-shard + supervision snapshot. */
struct ProcessShardedServerStats
{
    /** Whole-server view (mergeServerStats semantics). */
    ServerStats aggregate;
    /** Per-shard dispatcher rows (batching volume + latency). */
    std::vector<ServerStats> shards;
    /** Per-shard supervision state. */
    std::vector<WorkerHealth> health;
};

/** Sharded serving over crash-isolated worker processes. */
class ProcessShardedServer
{
  public:
    /** Builder-style options; supervision knobs are deliberately
     * test-tunable (small deadlines make fault tests fast). */
    struct Options
    {
        /** Worker processes == digest partitions. */
        std::size_t numShards = 2;
        /** Max requests waiting PER SHARD queue. */
        std::size_t queueCapacity = 1024;
        /** Flush a dispatcher batch at this many pairs. */
        std::size_t maxBatchSize = 256;
        /** Interactive-lane flush budget (serve/coalesce.hh). */
        std::chrono::microseconds maxBatchDelay{500};
        /** Batch-lane flush budget; 0 = 8 x maxBatchDelay. */
        std::chrono::microseconds maxBatchClassDelay{0};
        /** Optional per-tenant admission gate (not owned). */
        AdmissionController* admission = nullptr;
        /** Optional metrics plane (not owned; {server="ipc"}). */
        MetricsRegistry* metrics = nullptr;
        /** Window shape for ccsa_request_latency_us /
         * ccsa_heartbeat_latency_us. */
        WindowedHistogram::Options metricsWindow;
        /** Encoder threads inside each worker process. */
        int threadsPerWorker = 1;
        /** Encoding-cache capacity per worker process. */
        std::size_t cachePerWorker = 4096;
        /** Storage precision of each worker's encoding cache
         * (passed on the ccsa_worker command line); fp16/int8 fit
         * 2-4x more latents into cachePerWorker's bytes. */
        LatentPrecision latentPrecision = LatentPrecision::kFp32;
        /** ccsa_worker binary; "" = $CCSA_WORKER, else the
         * directory of /proc/self/exe + "/ccsa_worker". */
        std::string workerPath;
        /** Where the model checkpoint temp file is written. */
        std::string checkpointDir = "/tmp";
        /** Deadline on every compare/encode RPC; an overdue reply is
         * a HANG (worker killed, batch answers DeadlineExceeded). */
        std::chrono::milliseconds rpcDeadline{5000};
        /** Deadline on the post-spawn handshake ping (covers model
         * load in the fresh process). */
        std::chrono::milliseconds spawnDeadline{20000};
        /** Supervisor pass period (idle-worker heartbeats + reaping
         * + deferred respawns). */
        std::chrono::milliseconds heartbeatInterval{100};
        /** Deadline on an idle heartbeat's pong. */
        std::chrono::milliseconds heartbeatDeadline{2000};
        /** Backoff after the SECOND consecutive spawn failure (the
         * first respawn is immediate); doubles, capped at
         * backoffMax. */
        std::chrono::milliseconds backoffInitial{10};
        std::chrono::milliseconds backoffMax{1000};
        /** Restarts within breakerWindow that open the breaker. */
        std::size_t breakerThreshold = 3;
        std::chrono::milliseconds breakerWindow{10000};
        /** Open-breaker rejection period before one half-open
         * respawn attempt. */
        std::chrono::milliseconds breakerCooldown{1000};
        /** Bounded retries of the idempotent ENCODE phase on a
         * fresh worker after a crash (compare never retries). */
        std::size_t encodeRetryLimit = 1;
        /** Fault injected into faultShard's generation-0 worker
         * (fault_injector.hh grammar); "" = none. */
        std::string faultSpec;
        std::size_t faultShard = 0;
        /** Do not spawn workers / dispatchers until start(). */
        bool startPaused = false;

        Options& withNumShards(std::size_t n)
        {
            numShards = n == 0 ? 1 : n;
            return *this;
        }

        Options& withQueueCapacity(std::size_t n)
        {
            queueCapacity = n;
            return *this;
        }

        Options& withMaxBatchSize(std::size_t n)
        {
            maxBatchSize = n == 0 ? 1 : n;
            return *this;
        }

        Options& withMaxBatchDelay(std::chrono::microseconds d)
        {
            maxBatchDelay = d;
            return *this;
        }

        Options& withAdmission(AdmissionController* controller)
        {
            admission = controller;
            return *this;
        }

        Options& withMetrics(MetricsRegistry* registry)
        {
            metrics = registry;
            return *this;
        }

        Options& withThreadsPerWorker(int n)
        {
            threadsPerWorker = n;
            return *this;
        }

        Options& withCachePerWorker(std::size_t n)
        {
            cachePerWorker = n;
            return *this;
        }

        Options& withLatentPrecision(LatentPrecision p)
        {
            latentPrecision = p;
            return *this;
        }

        Options& withWorkerPath(std::string path)
        {
            workerPath = std::move(path);
            return *this;
        }

        Options& withCheckpointDir(std::string dir)
        {
            checkpointDir = std::move(dir);
            return *this;
        }

        Options& withRpcDeadline(std::chrono::milliseconds d)
        {
            rpcDeadline = d;
            return *this;
        }

        Options& withHeartbeatInterval(std::chrono::milliseconds d)
        {
            heartbeatInterval = d;
            return *this;
        }

        Options& withHeartbeatDeadline(std::chrono::milliseconds d)
        {
            heartbeatDeadline = d;
            return *this;
        }

        Options& withBackoff(std::chrono::milliseconds initial,
                             std::chrono::milliseconds max)
        {
            backoffInitial = initial;
            backoffMax = max;
            return *this;
        }

        Options& withBreaker(std::size_t threshold,
                             std::chrono::milliseconds window,
                             std::chrono::milliseconds cooldown)
        {
            breakerThreshold = threshold;
            breakerWindow = window;
            breakerCooldown = cooldown;
            return *this;
        }

        Options& withEncodeRetryLimit(std::size_t n)
        {
            encodeRetryLimit = n;
            return *this;
        }

        Options& withFault(std::string spec, std::size_t shard = 0)
        {
            faultSpec = std::move(spec);
            faultShard = shard;
            return *this;
        }

        Options& withStartPaused(bool paused)
        {
            startPaused = paused;
            return *this;
        }
    };

    /**
     * Serve an existing predictor across numShards worker processes.
     * Writes the model to a temp v2 checkpoint (removed on
     * destruction) that every spawn loads. FatalError when the
     * checkpoint cannot be written.
     */
    ProcessShardedServer(std::shared_ptr<ComparativePredictor> model,
                         Options opts);

    /** Equivalent to shutdown() (plus checkpoint cleanup). */
    ~ProcessShardedServer();

    ProcessShardedServer(const ProcessShardedServer&) = delete;
    ProcessShardedServer&
    operator=(const ProcessShardedServer&) = delete;

    /** Same submit contracts as ShardedServer (blocking endpoints;
     * results bitwise-identical to a sync Engine on the same
     * weights while the serving shard is healthy). */
    std::future<Result<double>> submitCompare(const Ast& first,
                                              const Ast& second);
    std::future<Result<double>> submitCompare(
        const SubmitOptions& submitOpts, const Ast& first,
        const Ast& second);

    std::future<Result<std::vector<double>>>
    submitCompareMany(std::vector<Engine::PairRequest> pairs);
    std::future<Result<std::vector<double>>>
    submitCompareMany(const SubmitOptions& submitOpts,
                      std::vector<Engine::PairRequest> pairs);

    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(std::vector<const Ast*> candidates);
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(const SubmitOptions& submitOpts,
               std::vector<const Ast*> candidates);

    /** Spawn workers + dispatchers if construction was paused. */
    void start();

    /**
     * Stop accepting, drain and answer everything accepted, then
     * stop the supervisor, shut every worker down (kShutdown, then
     * EOF, then SIGKILL for stragglers) and reap. Idempotent.
     */
    void shutdown();

    bool isShutdown() const;

    /** Aggregate + per-shard + supervision snapshot. */
    ProcessShardedServerStats stats() const;

    /** Publish pull-style gauges ({server="ipc"} queue levels plus
     * per-shard worker_up/degraded); no-op without a registry. */
    void sampleMetrics() const;

    std::size_t numShards() const { return shards_.size(); }
    const Options& options() const { return opts_; }

    /** The checkpoint path workers load (tests reuse it to build a
     * bitwise-identical local Engine). */
    const std::string& checkpointPath() const { return checkpoint_; }

  private:
    /** One queued unit: a per-shard slice (ShardedServer::Request
     * shape, so serve/coalesce.hh drives the dispatcher). */
    struct Request
    {
        std::vector<Engine::PairRequest> pairs;
        std::shared_ptr<const ModelVersion> version;
        std::function<void(Result<std::vector<double>>)> complete;
        Priority priority = Priority::kInteractive;
        std::string tenant;
        std::uint64_t traceId = 0;
        std::chrono::steady_clock::time_point submitted;
        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point dequeued;
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
    };

    /** Fan-in for a request split across shards. */
    struct JoinState
    {
        std::mutex mutex;
        std::vector<double> values;
        Status error;
        std::size_t remaining = 0;
        std::function<void(Result<std::vector<double>>)> complete;
    };

    /** Outcome of one RPC round-trip. */
    enum class Rpc
    {
        Ok,
        /** No (complete) reply within the deadline: worker hung. */
        Timeout,
        /** Socket closed / torn frame / protocol violation: worker
         * crashed (or is treated as crashed). */
        Closed,
    };

    /** One shard: queue + dispatcher thread + supervised process.
     * proc-prefixed fields are guarded by rpcMutex (whoever holds it
     * owns the socket AND the supervision state); the counters below
     * statsMutex are the stats() snapshot. */
    struct Shard
    {
        std::unique_ptr<BoundedQueue<Request>> queue;
        std::thread dispatcher;

        std::mutex rpcMutex;
        FdGuard fd;
        pid_t pid = -1;
        bool up = false;
        std::uint64_t generation = 0;
        std::uint64_t nextFrameId = 1;
        unsigned consecutiveFailures = 0;
        std::chrono::steady_clock::time_point nextSpawnAllowed{};
        bool breakerOpen = false;
        std::chrono::steady_clock::time_point breakerOpenedAt{};
        /** Restart stamps inside the flap window. */
        std::deque<std::chrono::steady_clock::time_point>
            recentRestarts;

        /** EXACT mirror of the worker's resident latents: an LRU
         * evicts nothing until its distinct-insert count exceeds
         * capacity, so while this set stays within cachePerWorker
         * every member is provably resident and serveBatch ships
         * only unknown trees (steady state: a zero-tree encode
         * frame). Cleared on respawn (cold cache); abandoned for the
         * worker's lifetime once the capacity is exceeded
         * (residentOverflow — eviction order is no longer knowable
         * parent-side, so every batch ships all its trees again).
         * rpcMutex guards both. */
        std::unordered_set<AstDigest, AstDigestHash> residentDigests;
        bool residentOverflow = false;

        /** Lock-free mirrors for stats()/gauges. */
        std::atomic<std::uint64_t> restarts{0};
        std::atomic<bool> upFlag{false};
        std::atomic<bool> degradedFlag{false};
        std::atomic<pid_t> pidFlag{-1};
        std::atomic<std::uint64_t> generationFlag{0};

        mutable std::mutex statsMutex;
        std::uint64_t batches = 0;
        std::uint64_t pairsServed = 0;
        Histogram batchSizes;
        Histogram latencyUs;
        std::unordered_map<std::string, Histogram> tenantLatencyUs;

        /** Per-shard registry instruments (null w/o metrics). */
        Counter* restartsMetric = nullptr;
        Gauge* upMetric = nullptr;
        Gauge* degradedMetric = nullptr;
        WindowedHistogram* heartbeatMetric = nullptr;
    };

    struct TenantCounters
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t rejectedQuota = 0;
        std::uint64_t rejectedDeadline = 0;
    };

    bool submitCore(
        const SubmitOptions& submitOpts,
        std::vector<Engine::PairRequest> pairs,
        std::function<void(Result<std::vector<double>>)> complete);

    /** Split validated pairs into (shard, Request) slices; same
     * join machinery as ShardedServer but the target shard index is
     * returned alongside each slice (per-shard queues). */
    std::vector<std::pair<std::size_t, Request>> splitRequest(
        std::vector<Engine::PairRequest> pairs,
        std::function<void(Result<std::vector<double>>)> complete,
        const SubmitOptions& submitOpts,
        std::chrono::steady_clock::time_point submitStart);

    void initMetrics();
    /** Batch-lane flush budget (0 option = 8 x maxBatchDelay). */
    std::chrono::microseconds batchClassDelay() const;
    /** Spawn workers, dispatchers and the supervisor;
     * lifecycleMutex_ held. */
    void startWorkersLocked();
    void dispatcherLoop(std::size_t shard);
    /** Execute one coalesced batch against shard s's worker (both
     * phases + failure handling). Takes rpcMutex. */
    void serveBatch(std::size_t s, CoalescedBatch<Request>& batch);
    /** Record one served batch into shard + registry counters and
     * fan the probabilities out. */
    void completeBatch(std::size_t s, CoalescedBatch<Request>& batch,
                       const std::vector<double>& probs);
    /** Fail every member of a batch with `status`. */
    static void failBatch(CoalescedBatch<Request>& batch,
                          const Status& status);

    /** One ping/pong with per-call deadline; rpcMutex held. */
    Rpc pingLocked(Shard& shard, std::chrono::milliseconds deadline,
                   std::chrono::microseconds* latency = nullptr);
    /** Send a frame and await its reply; rpcMutex held. */
    Rpc rpcLocked(Shard& shard, ipc::MsgType type,
                  const std::vector<std::uint8_t>& payload,
                  std::chrono::milliseconds deadline,
                  ipc::Frame* reply);
    /** Write one request frame without waiting (serveBatch pipelines
     * encode + compare into one worker wakeup); rpcMutex held.
     * @return false when the peer is gone. */
    bool sendRequestLocked(Shard& shard, ipc::MsgType type,
                           const std::vector<std::uint8_t>& payload,
                           std::uint64_t* id);
    /** Write the pipelined request pair in a single send; rpcMutex
     * held. @return false when the peer is gone. */
    bool sendRequestPairLocked(Shard& shard, ipc::MsgType type1,
                               const std::vector<std::uint8_t>& payload1,
                               std::uint64_t* id1, ipc::MsgType type2,
                               const std::vector<std::uint8_t>& payload2,
                               std::uint64_t* id2);
    /** Await the reply to frame `id`, skipping stale replies from
     * abandoned earlier RPCs; rpcMutex held. */
    Rpc awaitReplyLocked(Shard& shard, std::uint64_t id,
                         std::chrono::milliseconds deadline,
                         ipc::Frame* reply);

    /** Ensure a live worker (respecting backoff gate + breaker
     * half-open policy); rpcMutex held. @return true when up. */
    bool ensureWorkerLocked(std::size_t s);
    /** Mark the worker dead: SIGKILL + reap, count the restart,
     * advance backoff, maybe open the breaker; rpcMutex held. */
    void handleFailureLocked(std::size_t s);
    /** fork/exec one worker and handshake; rpcMutex held. */
    bool spawnLocked(std::size_t s);
    /** Resolved worker binary path (cached). */
    const std::string& workerBinary();

    void supervisorLoop();

    Options opts_;
    std::shared_ptr<const ModelVersion> version_;
    std::string checkpoint_;
    std::string workerBinary_;
    std::vector<std::unique_ptr<Shard>> shards_;
    ServerMetrics metrics_;

    mutable std::mutex lifecycleMutex_;
    bool started_ = false;
    bool shutdown_ = false;

    std::thread supervisor_;
    std::mutex supervisorMutex_;
    std::condition_variable supervisorCv_;
    bool supervisorStop_ = false;

    mutable std::mutex submitMutex_;
    std::uint64_t submitted_ = 0;
    std::uint64_t rejectedShed_ = 0;
    std::uint64_t rejectedShutdown_ = 0;
    std::uint64_t rejectedQuota_ = 0;
    std::uint64_t rejectedDeadline_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::unordered_map<std::string, TenantCounters> tenants_;
};

} // namespace ccsa

#endif // CCSA_SERVE_IPC_PROCESS_SHARDED_SERVER_HH
