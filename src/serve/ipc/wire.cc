#include "serve/ipc/wire.hh"

#include <cstring>
#include <unordered_map>

namespace ccsa
{
namespace ipc
{

namespace
{

/** Ceiling on nodes per serialized tree; matches kMaxPayload / 8
 * (kind + parent per node) so a corrupt node count cannot win a
 * race against the payload bound. */
constexpr std::uint32_t kMaxTreeNodes = 8u << 20;

void
putBytes(std::vector<std::uint8_t>& buf, const void* p, std::size_t n)
{
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + n);
}

} // namespace

void
Writer::putU32(std::uint32_t v)
{
    putBytes(buf_, &v, sizeof(v));
}

void
Writer::putU64(std::uint64_t v)
{
    putBytes(buf_, &v, sizeof(v));
}

void
Writer::putI32(std::int32_t v)
{
    putBytes(buf_, &v, sizeof(v));
}

void
Writer::putF32(float v)
{
    putBytes(buf_, &v, sizeof(v));
}

void
Writer::putF64(double v)
{
    putBytes(buf_, &v, sizeof(v));
}

void
Writer::putString(const std::string& s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    putBytes(buf_, s.data(), s.size());
}

Status
Reader::need(std::size_t n)
{
    if (buf_.size() - pos_ < n) {
        return Status::invalidArgument(
            "ipc payload truncated: need " + std::to_string(n) +
            " bytes at offset " + std::to_string(pos_));
    }
    return Status::ok();
}

Status
Reader::takeU8(std::uint8_t* out)
{
    if (Status s = need(1); !s)
        return s;
    *out = buf_[pos_++];
    return Status::ok();
}

Status
Reader::takeU32(std::uint32_t* out)
{
    if (Status s = need(sizeof(*out)); !s)
        return s;
    std::memcpy(out, buf_.data() + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::ok();
}

Status
Reader::takeU64(std::uint64_t* out)
{
    if (Status s = need(sizeof(*out)); !s)
        return s;
    std::memcpy(out, buf_.data() + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::ok();
}

Status
Reader::takeI32(std::int32_t* out)
{
    if (Status s = need(sizeof(*out)); !s)
        return s;
    std::memcpy(out, buf_.data() + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::ok();
}

Status
Reader::takeF32(float* out)
{
    if (Status s = need(sizeof(*out)); !s)
        return s;
    std::memcpy(out, buf_.data() + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::ok();
}

Status
Reader::takeF64(double* out)
{
    if (Status s = need(sizeof(*out)); !s)
        return s;
    std::memcpy(out, buf_.data() + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::ok();
}

Status
Reader::takeString(std::string* out)
{
    std::uint32_t n = 0;
    if (Status s = takeU32(&n); !s)
        return s;
    if (Status s = need(n); !s)
        return s;
    out->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return Status::ok();
}

void
putAst(Writer& w, const Ast& ast)
{
    const int n = ast.size();
    w.putU32(static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
        const AstNode& node = ast.node(i);
        w.putI32(static_cast<std::int32_t>(node.kind));
        w.putI32(node.parent);
    }
}

Status
takeAst(Reader& r, Ast* out)
{
    std::uint32_t n = 0;
    if (Status s = r.takeU32(&n); !s)
        return s;
    if (n == 0 || n > kMaxTreeNodes)
        return Status::invalidArgument("ipc tree node count " +
                                       std::to_string(n) +
                                       " out of range");
    std::int32_t kind = 0, parent = 0;
    if (Status s = r.takeI32(&kind); !s)
        return s;
    if (Status s = r.takeI32(&parent); !s)
        return s;
    if (parent != -1)
        return Status::invalidArgument("ipc tree root has a parent");
    // addNode appends, so serialized order (arena order) guarantees
    // parent < child and the rebuild below is a single pass.
    Ast ast(static_cast<NodeKind>(kind));
    for (std::uint32_t i = 1; i < n; ++i) {
        if (Status s = r.takeI32(&kind); !s)
            return s;
        if (Status s = r.takeI32(&parent); !s)
            return s;
        if (parent < 0 || static_cast<std::uint32_t>(parent) >= i) {
            return Status::invalidArgument(
                "ipc tree node " + std::to_string(i) +
                " has non-preceding parent " + std::to_string(parent));
        }
        ast.addNode(static_cast<NodeKind>(kind), parent);
    }
    *out = std::move(ast);
    return Status::ok();
}

TreeBatch
makeTreeBatch(const std::vector<Engine::PairRequest>& pairs)
{
    TreeBatch batch;
    batch.pairs.reserve(pairs.size());
    std::unordered_map<const Ast*, std::uint32_t> index;
    auto intern = [&](const Ast* tree) -> std::uint32_t {
        auto it = index.find(tree);
        if (it != index.end())
            return it->second;
        std::uint32_t id =
            static_cast<std::uint32_t>(batch.trees.size());
        batch.trees.push_back(tree);
        index.emplace(tree, id);
        return id;
    };
    for (const Engine::PairRequest& pair : pairs) {
        // Sequence the interns explicitly: emplace_back's argument
        // evaluation order is unspecified, and first-appearance tree
        // order is part of the documented TreeBatch contract.
        std::uint32_t first = intern(pair.first);
        std::uint32_t second = intern(pair.second);
        batch.pairs.emplace_back(first, second);
    }
    return batch;
}

std::vector<std::uint8_t>
encodeCompareRequest(const TreeBatch& batch)
{
    Writer w;
    w.putU32(static_cast<std::uint32_t>(batch.trees.size()));
    for (const Ast* tree : batch.trees)
        putAst(w, *tree);
    w.putU32(static_cast<std::uint32_t>(batch.pairs.size()));
    for (const auto& pair : batch.pairs) {
        w.putU32(pair.first);
        w.putU32(pair.second);
    }
    return w.take();
}

Status
decodeCompareRequest(const std::vector<std::uint8_t>& payload,
                     CompareRequest* out)
{
    Reader r(payload);
    std::uint32_t treeCount = 0;
    if (Status s = r.takeU32(&treeCount); !s)
        return s;
    // >= 12 wire bytes per tree (node count + one node): a lying
    // count must fail HERE, before reserve() turns it into a
    // multi-gigabyte allocation.
    if (treeCount > payload.size() / 12)
        return Status::invalidArgument(
            "ipc compare tree count " + std::to_string(treeCount) +
            " exceeds payload");
    out->trees.clear();
    out->trees.reserve(treeCount);
    for (std::uint32_t i = 0; i < treeCount; ++i) {
        Ast tree;
        if (Status s = takeAst(r, &tree); !s)
            return s;
        out->trees.push_back(std::move(tree));
    }
    std::uint32_t pairCount = 0;
    if (Status s = r.takeU32(&pairCount); !s)
        return s;
    if (pairCount > payload.size() / 8) // 8 bytes per index pair
        return Status::invalidArgument(
            "ipc compare pair count " + std::to_string(pairCount) +
            " exceeds payload");
    out->pairs.clear();
    out->pairs.reserve(pairCount);
    for (std::uint32_t i = 0; i < pairCount; ++i) {
        std::uint32_t a = 0, b = 0;
        if (Status s = r.takeU32(&a); !s)
            return s;
        if (Status s = r.takeU32(&b); !s)
            return s;
        if (a >= treeCount || b >= treeCount) {
            return Status::invalidArgument(
                "ipc compare pair references tree out of range");
        }
        out->pairs.emplace_back(a, b);
    }
    if (!r.exhausted())
        return Status::invalidArgument("ipc compare payload has "
                                       "trailing bytes");
    return Status::ok();
}

std::vector<std::uint8_t>
encodeCompareDigestsRequest(
    const std::vector<std::pair<AstDigest, AstDigest>>& pairs)
{
    Writer w;
    w.putU32(static_cast<std::uint32_t>(pairs.size()));
    for (const auto& pair : pairs) {
        w.putU64(pair.first.lo);
        w.putU64(pair.first.hi);
        w.putU64(pair.second.lo);
        w.putU64(pair.second.hi);
    }
    return w.take();
}

Status
decodeCompareDigestsRequest(
    const std::vector<std::uint8_t>& payload,
    std::vector<std::pair<AstDigest, AstDigest>>* out)
{
    Reader r(payload);
    std::uint32_t pairCount = 0;
    if (Status s = r.takeU32(&pairCount); !s)
        return s;
    // 32 payload bytes per pair: a lying count fails the first take
    // after at most one bounded reserve.
    if (pairCount > payload.size() / 32)
        return Status::invalidArgument(
            "ipc compare-digests pair count " +
            std::to_string(pairCount) + " exceeds payload");
    out->clear();
    out->reserve(pairCount);
    for (std::uint32_t i = 0; i < pairCount; ++i) {
        AstDigest a, b;
        if (Status s = r.takeU64(&a.lo); !s)
            return s;
        if (Status s = r.takeU64(&a.hi); !s)
            return s;
        if (Status s = r.takeU64(&b.lo); !s)
            return s;
        if (Status s = r.takeU64(&b.hi); !s)
            return s;
        out->emplace_back(a, b);
    }
    if (!r.exhausted())
        return Status::invalidArgument("ipc compare-digests payload "
                                       "has trailing bytes");
    return Status::ok();
}

std::vector<std::uint8_t>
encodeEncodeRequest(const std::vector<const Ast*>& trees)
{
    Writer w;
    w.putU32(static_cast<std::uint32_t>(trees.size()));
    for (const Ast* tree : trees)
        putAst(w, *tree);
    return w.take();
}

Status
decodeEncodeRequest(const std::vector<std::uint8_t>& payload,
                    std::vector<Ast>* out)
{
    Reader r(payload);
    std::uint32_t treeCount = 0;
    if (Status s = r.takeU32(&treeCount); !s)
        return s;
    if (treeCount > payload.size() / 12) // see decodeCompareRequest
        return Status::invalidArgument(
            "ipc encode tree count " + std::to_string(treeCount) +
            " exceeds payload");
    out->clear();
    out->reserve(treeCount);
    for (std::uint32_t i = 0; i < treeCount; ++i) {
        Ast tree;
        if (Status s = takeAst(r, &tree); !s)
            return s;
        out->push_back(std::move(tree));
    }
    if (!r.exhausted())
        return Status::invalidArgument("ipc encode payload has "
                                       "trailing bytes");
    return Status::ok();
}

namespace
{

void
putStatus(Writer& w, const Status& status)
{
    w.putU8(static_cast<std::uint8_t>(status.code()));
    w.putString(status.message());
}

Status
takeStatus(Reader& r, Status* out)
{
    std::uint8_t code = 0;
    std::string message;
    if (Status s = r.takeU8(&code); !s)
        return s;
    if (Status s = r.takeString(&message); !s)
        return s;
    if (code > static_cast<std::uint8_t>(
                   StatusCode::DeadlineExceeded) ||
        code == static_cast<std::uint8_t>(StatusCode::Ok)) {
        return Status::invalidArgument("ipc reply carries invalid "
                                       "status code " +
                                       std::to_string(code));
    }
    *out = Status::error(static_cast<StatusCode>(code),
                         std::move(message));
    return Status::ok();
}

} // namespace

std::vector<std::uint8_t>
encodeCompareReply(const Result<std::vector<double>>& result)
{
    Writer w;
    if (result.isOk()) {
        w.putU8(1);
        const std::vector<double>& probs = result.value();
        w.putU32(static_cast<std::uint32_t>(probs.size()));
        for (double p : probs)
            w.putF64(p);
    } else {
        w.putU8(0);
        putStatus(w, result.status());
    }
    return w.take();
}

Status
decodeCompareReply(const std::vector<std::uint8_t>& payload,
                   Result<std::vector<double>>* out)
{
    Reader r(payload);
    std::uint8_t ok = 0;
    if (Status s = r.takeU8(&ok); !s)
        return s;
    if (ok == 0) {
        Status inner;
        if (Status s = takeStatus(r, &inner); !s)
            return s;
        *out = inner;
        return Status::ok();
    }
    std::uint32_t count = 0;
    if (Status s = r.takeU32(&count); !s)
        return s;
    if (count > payload.size() / 8) // 8 bytes per f64 probability
        return Status::invalidArgument(
            "ipc compare reply count " + std::to_string(count) +
            " exceeds payload");
    std::vector<double> probs(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (Status s = r.takeF64(&probs[i]); !s)
            return s;
    }
    if (!r.exhausted())
        return Status::invalidArgument("ipc compare reply has "
                                       "trailing bytes");
    *out = std::move(probs);
    return Status::ok();
}

std::vector<std::uint8_t>
encodeEncodeReply(const Result<std::vector<std::vector<float>>>& r)
{
    Writer w;
    if (r.isOk()) {
        const auto& rows = r.value();
        w.putU8(1);
        w.putU32(static_cast<std::uint32_t>(rows.size()));
        const std::uint32_t dim =
            rows.empty()
                ? 0
                : static_cast<std::uint32_t>(rows.front().size());
        w.putU32(dim);
        for (const std::vector<float>& row : rows)
            for (float v : row)
                w.putF32(v);
    } else {
        w.putU8(0);
        putStatus(w, r.status());
    }
    return w.take();
}

Status
decodeEncodeReply(const std::vector<std::uint8_t>& payload,
                  Result<std::vector<std::vector<float>>>* out)
{
    Reader r(payload);
    std::uint8_t ok = 0;
    if (Status s = r.takeU8(&ok); !s)
        return s;
    if (ok == 0) {
        Status inner;
        if (Status s = takeStatus(r, &inner); !s)
            return s;
        *out = inner;
        return Status::ok();
    }
    std::uint32_t rowCount = 0, dim = 0;
    if (Status s = r.takeU32(&rowCount); !s)
        return s;
    if (Status s = r.takeU32(&dim); !s)
        return s;
    // rowCount * dim * 4 payload floats must exist. Checked in
    // stages so the product cannot overflow: dim alone is bounded by
    // the payload first, making dim * 4 a safe divisor for the row
    // bound. A zero dim with nonzero rows is the degenerate lie —
    // it costs no payload bytes per row, so only an explicit reject
    // stops rows(rowCount) from allocating 4 billion empty vectors.
    if (rowCount > 0) {
        if (dim == 0 || dim > payload.size() / sizeof(float))
            return Status::invalidArgument(
                "ipc encode reply dim " + std::to_string(dim) +
                " invalid for nonempty reply");
        if (rowCount > payload.size() / (dim * sizeof(float)))
            return Status::invalidArgument(
                "ipc encode reply row count " +
                std::to_string(rowCount) + " exceeds payload");
    }
    std::vector<std::vector<float>> rows(rowCount);
    for (std::uint32_t i = 0; i < rowCount; ++i) {
        rows[i].resize(dim);
        for (std::uint32_t j = 0; j < dim; ++j) {
            if (Status s = r.takeF32(&rows[i][j]); !s)
                return s;
        }
    }
    if (!r.exhausted())
        return Status::invalidArgument("ipc encode reply has "
                                       "trailing bytes");
    *out = std::move(rows);
    return Status::ok();
}

namespace
{

/** On-the-wire frame header; packed manually (memcpy per field)
 * rather than via a struct so padding never leaks onto the wire. */
constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4;

void
packHeader(std::uint8_t* out, MsgType type, std::uint64_t id,
           std::uint32_t payloadLen)
{
    std::memcpy(out, &kWireMagic, 4);
    out[4] = static_cast<std::uint8_t>(type);
    std::memcpy(out + 5, &id, 8);
    std::memcpy(out + 13, &payloadLen, 4);
}

} // namespace

bool
appendFrame(std::vector<std::uint8_t>& out, MsgType type,
            std::uint64_t id,
            const std::vector<std::uint8_t>& payload)
{
    // Refuse to serialize what readFrame would refuse to accept: an
    // oversized payload would also truncate in the u32 length field
    // and desynchronise every frame after it.
    if (payload.size() > kMaxPayload)
        return false;
    const std::size_t at = out.size();
    out.resize(at + kHeaderSize + payload.size());
    packHeader(out.data() + at, type, id,
               static_cast<std::uint32_t>(payload.size()));
    if (!payload.empty())
        std::memcpy(out.data() + at + kHeaderSize, payload.data(),
                    payload.size());
    return true;
}

bool
writeRaw(int fd, const std::vector<std::uint8_t>& bytes)
{
    return sendFull(fd, bytes.data(), bytes.size()) == IoStatus::Ok;
}

bool
writeFrame(int fd, MsgType type, std::uint64_t id,
           const std::vector<std::uint8_t>& payload,
           long truncateBytes)
{
    std::vector<std::uint8_t> frame;
    if (!appendFrame(frame, type, id, payload))
        return false;
    std::size_t n = frame.size();
    if (truncateBytes >= 0 &&
        static_cast<std::size_t>(truncateBytes) < n)
        n = static_cast<std::size_t>(truncateBytes);
    // sendFull, not writeFull: frames only travel over socketpairs,
    // and the peer may be a SIGKILLed worker — that must surface as
    // a failed write, not a SIGPIPE in the supervisor process.
    return sendFull(fd, frame.data(), n) == IoStatus::Ok;
}

ReadFrame
readFrame(int fd, Frame* out)
{
    std::uint8_t header[kHeaderSize];
    IoStatus io = readFull(fd, header, kHeaderSize);
    if (io == IoStatus::Eof)
        return ReadFrame::Eof;
    if (io != IoStatus::Ok)
        return ReadFrame::Error;

    std::uint32_t magic = 0, payloadLen = 0;
    std::memcpy(&magic, header, 4);
    std::memcpy(&out->id, header + 5, 8);
    std::memcpy(&payloadLen, header + 13, 4);
    if (magic != kWireMagic)
        return ReadFrame::Error;
    const std::uint8_t type = header[4];
    if (type < static_cast<std::uint8_t>(MsgType::kCompare) ||
        type > static_cast<std::uint8_t>(MsgType::kCompareDigests))
        return ReadFrame::Error;
    out->type = static_cast<MsgType>(type);
    if (payloadLen > kMaxPayload)
        return ReadFrame::Error;

    out->payload.resize(payloadLen);
    if (payloadLen > 0 &&
        readFull(fd, out->payload.data(), payloadLen) != IoStatus::Ok)
        return ReadFrame::Error;
    return ReadFrame::Ok;
}

} // namespace ipc
} // namespace ccsa
