/**
 * @file
 * The length-prefixed binary wire protocol between ProcessShardedServer
 * and its ccsa_worker shard processes. One frame per message:
 *
 *   [u32 magic "CSW1"] [u8 type] [u64 id] [u32 payloadLen] [payload]
 *
 * all little-endian (parent and workers always share one machine —
 * this is a socketpair protocol, not a network one). `id` correlates
 * requests with responses so many RPCs can be in flight per worker;
 * heartbeats echo it as the ping nonce.
 *
 * Payload encodings (Writer::putX / Reader::takeX):
 *  - kCompare:        trees deduped by the parent — u32 treeCount,
 *                     each tree as (u32 nodes, per node i32 kind +
 *                     i32 parent); then u32 pairCount of (u32, u32)
 *                     indices into the tree table. The model consumes
 *                     only kinds + shape (PAPER §IV-A), so spellings
 *                     never cross the wire.
 *  - kCompareReply:   u8 ok; ok: u32 count + f64 probs in request
 *                     order; else u8 StatusCode + string message.
 *  - kEncode:         u32 treeCount + trees (as above). IDEMPOTENT:
 *                     re-executing it on a fresh worker returns
 *                     bitwise-identical latents, which is what makes
 *                     retry-after-crash safe for this RPC only.
 *  - kEncodeReply:    u8 ok; ok: u32 rows + u32 dim + rows*dim f32
 *                     (latents ARE flat float rows); else status.
 *  - kPing/kPong:     empty payload; the id is the nonce.
 *  - kShutdown:       empty; the worker drains and exits 0.
 *  - kCompareDigests: u32 pairCount of (u64 lo, u64 hi) x 2 — pairs
 *                     of 128-bit structural digests referencing
 *                     latents the preceding kEncode made resident in
 *                     the worker's cache. Replies kCompareReply. The
 *                     worker REFUSES (ResourceExhausted, before any
 *                     head work) if any latent was evicted, and the
 *                     parent falls back to a self-contained kCompare
 *                     — so the hot path ships each tree exactly once
 *                     per batch while at-most-once execution holds.
 *
 * Framing reuses the checkpoint-v2 discipline from nn/serialize
 * (explicit sizes, magic up front, reject-don't-trust): a corrupt or
 * torn frame surfaces as Status, never as an allocation of
 * attacker-controlled size — payloads are bounded by kMaxPayload and
 * every Reader::take* is bounds-checked.
 */

#ifndef CCSA_SERVE_IPC_WIRE_HH
#define CCSA_SERVE_IPC_WIRE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/ast.hh"
#include "base/fd_util.hh"
#include "base/result.hh"
#include "serve/encoding_cache.hh"
#include "serve/engine.hh"

namespace ccsa
{
namespace ipc
{

/** Frame magic: "CSW1" little-endian. */
constexpr std::uint32_t kWireMagic = 0x31575343u;

/** Hard ceiling on a frame payload (64 MiB): a corrupt length word
 * fails fast instead of asking the allocator for garbage. */
constexpr std::uint32_t kMaxPayload = 64u << 20;

/** Message types. */
enum class MsgType : std::uint8_t
{
    kCompare = 1,
    kCompareReply = 2,
    kEncode = 3,
    kEncodeReply = 4,
    kPing = 5,
    kPong = 6,
    kShutdown = 7,
    kCompareDigests = 8,
};

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::kPing;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> payload;
};

/** Append-only payload builder (little-endian). */
class Writer
{
  public:
    void putU8(std::uint8_t v) { buf_.push_back(v); }
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI32(std::int32_t v);
    void putF32(float v);
    void putF64(double v);
    void putString(const std::string& s);

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked payload reader; every take* fails with
 * InvalidArgument once the payload is exhausted or oversized
 * (corruption never turns into UB or bad_alloc). */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t>& buf)
        : buf_(buf)
    {
    }

    Status takeU8(std::uint8_t* out);
    Status takeU32(std::uint32_t* out);
    Status takeU64(std::uint64_t* out);
    Status takeI32(std::int32_t* out);
    Status takeF32(float* out);
    Status takeF64(double* out);
    Status takeString(std::string* out);

    bool exhausted() const { return pos_ == buf_.size(); }

  private:
    Status need(std::size_t n);

    const std::vector<std::uint8_t>& buf_;
    std::size_t pos_ = 0;
};

/** Serialize one tree (kinds + parents; spellings are not
 * model-visible and stay home). */
void putAst(Writer& w, const Ast& ast);

/** Rebuild a tree serialized by putAst. */
Status takeAst(Reader& r, Ast* out);

/**
 * A compare/encode request body after tree-dedup: distinct trees
 * once, pairs as indices. The parent builds this from a slice's
 * PairRequests; a tournament slice repeating one candidate N times
 * serializes that candidate once.
 */
struct TreeBatch
{
    /** Distinct trees, first-appearance order. */
    std::vector<const Ast*> trees;
    /** (first, second) indices into `trees`; empty for kEncode. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
};

/** Dedup a pair list into a TreeBatch (by pointer identity — the
 * submit path already interned repeated candidates that way). */
TreeBatch makeTreeBatch(const std::vector<Engine::PairRequest>& pairs);

/** Encode a kCompare payload. */
std::vector<std::uint8_t> encodeCompareRequest(const TreeBatch& batch);

/** Decoded worker-side view of a kCompare payload. */
struct CompareRequest
{
    std::vector<Ast> trees;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
};

Status decodeCompareRequest(const std::vector<std::uint8_t>& payload,
                            CompareRequest* out);

/** Encode a kCompareDigests payload: digest pairs referencing
 * latents the encode phase made resident worker-side. */
std::vector<std::uint8_t> encodeCompareDigestsRequest(
    const std::vector<std::pair<AstDigest, AstDigest>>& pairs);

Status decodeCompareDigestsRequest(
    const std::vector<std::uint8_t>& payload,
    std::vector<std::pair<AstDigest, AstDigest>>* out);

/** Encode a kEncode payload (trees only). */
std::vector<std::uint8_t>
encodeEncodeRequest(const std::vector<const Ast*>& trees);

Status decodeEncodeRequest(const std::vector<std::uint8_t>& payload,
                           std::vector<Ast>* out);

/** Encode a kCompareReply payload from a serving Result. */
std::vector<std::uint8_t>
encodeCompareReply(const Result<std::vector<double>>& result);

Status decodeCompareReply(const std::vector<std::uint8_t>& payload,
                          Result<std::vector<double>>* out);

/** Encode a kEncodeReply payload: rows x dim float32 latents. */
std::vector<std::uint8_t>
encodeEncodeReply(const Result<std::vector<std::vector<float>>>& r);

Status
decodeEncodeReply(const std::vector<std::uint8_t>& payload,
                  Result<std::vector<std::vector<float>>>* out);

/**
 * Write one frame. `truncateBytes` < 0 writes the whole frame; >= 0
 * writes only that many bytes of it — the torn-write fault, kept in
 * the one place that knows the frame layout.
 * @return false on I/O failure (peer gone), or when the payload
 * exceeds kMaxPayload — the receiver would reject such a frame
 * anyway, and refusing to send keeps the stream in sync instead of
 * poisoning every frame after it.
 */
bool writeFrame(int fd, MsgType type, std::uint64_t id,
                const std::vector<std::uint8_t>& payload,
                long truncateBytes = -1);

/**
 * Append one serialized frame to `out` without writing it. Lets the
 * supervisor batch the pipelined kEncode + kCompareDigests pair into
 * a single send, so the worker's poll wakes once per batch instead
 * of once per frame.
 * @return false (appending nothing) when the payload exceeds
 * kMaxPayload, same contract as writeFrame.
 */
bool appendFrame(std::vector<std::uint8_t>& out, MsgType type,
                 std::uint64_t id,
                 const std::vector<std::uint8_t>& payload);

/** Write pre-serialized frame bytes (from appendFrame) in one send.
 * @return false on I/O failure (peer gone). */
bool writeRaw(int fd, const std::vector<std::uint8_t>& bytes);

/** Outcome of readFrame. */
enum class ReadFrame
{
    Ok,
    /** Clean EOF between frames (peer closed the socket). */
    Eof,
    /** Torn frame, bad magic, oversized payload, or errno failure. */
    Error,
};

/** Read one frame (blocking). */
ReadFrame readFrame(int fd, Frame* out);

} // namespace ipc
} // namespace ccsa

#endif // CCSA_SERVE_IPC_WIRE_HH
