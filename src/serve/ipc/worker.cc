#include "serve/ipc/worker.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include <unistd.h>

#include "model/predictor.hh"
#include "serve/ipc/wire.hh"
#include "tensor/tensor.hh"

namespace ccsa
{
namespace ipc
{

namespace
{

/** Exit codes for injected terminations; check_crash_recovery.py and
 * the tests key off these to distinguish injected faults from real
 * bugs in the worker. */
constexpr int kCrashExitCode = 42;
constexpr int kTornExitCode = 43;

/**
 * Apply a pre-reply fault. Crash exits before any reply byte (the
 * parent sees the socket close mid-RPC). Stall delays the reply past
 * the parent's deadline. Returns the truncation to apply to the
 * reply frame (-1 = none) for TornWrite.
 */
long
applyPreReplyFault(FaultKind fault, const FaultInjector& faults,
                   std::size_t frameBytes)
{
    switch (fault) {
      case FaultKind::Crash:
        _exit(kCrashExitCode);
      case FaultKind::Stall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(faults.spec().stallMs));
        return -1;
      case FaultKind::TornWrite:
        // Half the frame: always cuts inside the header or payload,
        // never lands on a frame boundary.
        return static_cast<long>(frameBytes / 2);
      default:
        return -1;
    }
}

bool
serveCompare(int fd, Engine& engine, FaultInjector& faults,
             const Frame& frame)
{
    const FaultKind fault = faults.onRequest();

    Result<std::vector<double>> result =
        Status::internal("compare not executed");
    CompareRequest request;
    if (Status s = decodeCompareRequest(frame.payload, &request);
        !s) {
        result = s;
    } else {
        std::vector<Engine::PairRequest> pairs;
        pairs.reserve(request.pairs.size());
        for (const auto& pair : request.pairs)
            pairs.push_back({&request.trees[pair.first],
                             &request.trees[pair.second]});
        result = engine.compareMany(pairs);
    }

    const std::vector<std::uint8_t> payload =
        encodeCompareReply(result);
    const long truncate = applyPreReplyFault(
        fault, faults,
        payload.size() + 17 /* header, see wire.cc */);
    const bool wrote = writeFrame(fd, MsgType::kCompareReply,
                                  frame.id, payload, truncate);
    if (fault == FaultKind::TornWrite)
        _exit(kTornExitCode);
    return wrote;
}

/** The hot-path compare: latents by digest, no trees on the wire.
 * Counts toward the fault trigger exactly like kCompare — from the
 * injector's point of view it IS the batch's compare request. */
bool
serveCompareDigests(int fd, Engine& engine, FaultInjector& faults,
                    const Frame& frame)
{
    const FaultKind fault = faults.onRequest();

    Result<std::vector<double>> result =
        Status::internal("compare not executed");
    std::vector<std::pair<AstDigest, AstDigest>> pairs;
    if (Status s = decodeCompareDigestsRequest(frame.payload, &pairs);
        !s) {
        result = s;
    } else {
        // A ResourceExhausted refusal (latent evicted) travels back
        // as a plain Result: the parent retries self-contained.
        result = engine.compareManyCached(pairs);
    }

    const std::vector<std::uint8_t> payload =
        encodeCompareReply(result);
    const long truncate =
        applyPreReplyFault(fault, faults, payload.size() + 17);
    const bool wrote = writeFrame(fd, MsgType::kCompareReply,
                                  frame.id, payload, truncate);
    if (fault == FaultKind::TornWrite)
        _exit(kTornExitCode);
    return wrote;
}

bool
serveEncode(int fd, Engine& engine, FaultInjector& faults,
            const Frame& frame)
{
    const FaultKind fault = faults.onRequest();

    Result<std::vector<std::vector<float>>> result =
        Status::internal("encode not executed");
    std::vector<Ast> trees;
    if (Status s = decodeEncodeRequest(frame.payload, &trees); !s) {
        result = s;
    } else {
        std::vector<const Ast*> ptrs;
        ptrs.reserve(trees.size());
        for (const Ast& tree : trees)
            ptrs.push_back(&tree);
        Result<std::vector<Tensor>> latents =
            engine.encodeBatch(ptrs);
        if (!latents.isOk()) {
            result = latents.status();
        } else {
            std::vector<std::vector<float>> rows;
            rows.reserve(latents.value().size());
            for (const Tensor& t : latents.value())
                rows.emplace_back(t.data(), t.data() + t.size());
            result = std::move(rows);
        }
    }

    const std::vector<std::uint8_t> payload =
        encodeEncodeReply(result);
    const long truncate =
        applyPreReplyFault(fault, faults, payload.size() + 17);
    const bool wrote = writeFrame(fd, MsgType::kEncodeReply,
                                  frame.id, payload, truncate);
    if (fault == FaultKind::TornWrite)
        _exit(kTornExitCode);
    return wrote;
}

} // namespace

int
runWorkerLoop(int fd, Engine& engine, FaultInjector& faults)
{
    for (;;) {
        Frame frame;
        switch (readFrame(fd, &frame)) {
          case ReadFrame::Eof:
            return 0; // parent closed: orderly teardown
          case ReadFrame::Error:
            return 1;
          case ReadFrame::Ok:
            break;
        }
        switch (frame.type) {
          case MsgType::kPing:
            if (!writeFrame(fd, MsgType::kPong, frame.id, {}))
                return 1;
            break;
          case MsgType::kShutdown:
            return 0;
          case MsgType::kCompare:
            if (!serveCompare(fd, engine, faults, frame))
                return 1;
            break;
          case MsgType::kCompareDigests:
            if (!serveCompareDigests(fd, engine, faults, frame))
                return 1;
            break;
          case MsgType::kEncode:
            if (!serveEncode(fd, engine, faults, frame))
                return 1;
            break;
          default:
            // Replies are parent-bound; receiving one is a protocol
            // violation and the parent will treat exit 1 as a crash.
            return 1;
        }
    }
}

int
workerMain(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: ccsa_worker <checkpoint> "
                     "[cacheCapacity] [threads] "
                     "[latentPrecision fp32|fp16|int8]\n");
        return 2;
    }

    FaultSpec spec;
    if (const char* faultEnv = std::getenv("CCSA_FAULT")) {
        Result<FaultSpec> parsed = parseFaultSpec(faultEnv);
        if (!parsed.isOk()) {
            std::fprintf(stderr, "ccsa_worker: %s\n",
                         parsed.status().toString().c_str());
            return 2;
        }
        spec = parsed.value();
    }

    Result<std::shared_ptr<ComparativePredictor>> model =
        ComparativePredictor::fromCheckpoint(argv[1]);
    if (!model.isOk()) {
        std::fprintf(stderr, "ccsa_worker: cannot load %s: %s\n",
                     argv[1], model.status().toString().c_str());
        return 2;
    }

    Engine::Options opts;
    if (argc > 2)
        opts.withCacheCapacity(static_cast<std::size_t>(
            std::strtoull(argv[2], nullptr, 10)));
    if (argc > 3)
        opts.withThreads(
            static_cast<int>(std::strtol(argv[3], nullptr, 10)));
    if (argc > 4) {
        LatentPrecision precision = LatentPrecision::kFp32;
        if (!parseLatentPrecision(argv[4], &precision)) {
            std::fprintf(stderr,
                         "ccsa_worker: unknown latent precision "
                         "'%s' (want fp32|fp16|int8)\n",
                         argv[4]);
            return 2;
        }
        opts.withLatentPrecision(precision);
    }

    Engine engine(model.take(), opts);

    FaultInjector faults(spec);
    installGlobalFaultInjector(&faults);
    const int rc = runWorkerLoop(kWorkerFd, engine, faults);
    installGlobalFaultInjector(nullptr);
    return rc;
}

} // namespace ipc
} // namespace ccsa
