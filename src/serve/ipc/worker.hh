/**
 * @file
 * The shard-worker side of the IPC serving protocol. A worker is a
 * separate PROCESS (spawned by ProcessShardedServer as the
 * `ccsa_worker` binary) that loads its model from a v2 checkpoint,
 * owns its partition's encoding cache in its own address space, and
 * serves kCompare / kEncode / kPing frames over an inherited
 * socketpair end (always fd 3) until EOF or kShutdown. A crash —
 * real or injected — takes down only this partition; the parent's
 * Supervisor observes the socket close and respawns.
 *
 * The request loop is deliberately single-threaded: the parent
 * pipelines at the shard level (one in-flight batch per shard,
 * matching ShardedServer's one-worker-per-shard execution), so
 * in-process parallelism lives inside Engine's encode pool, not in
 * concurrent frame handling. That keeps the fault-injection points
 * (crash/stall/torn-write relative to "the Nth request") exact.
 */

#ifndef CCSA_SERVE_IPC_WORKER_HH
#define CCSA_SERVE_IPC_WORKER_HH

#include <string>

#include "serve/engine.hh"
#include "serve/ipc/fault_injector.hh"

namespace ccsa
{
namespace ipc
{

/** The fd number the parent dup2()s the worker's socketpair end to
 * before exec — argv stays readable in `ps` and fd passing needs no
 * extra protocol. */
constexpr int kWorkerFd = 3;

/**
 * Serve frames from `fd` against `engine` until the peer closes,
 * a kShutdown frame arrives, or an injected fault terminates the
 * process. Exposed separately from workerMain so tests can run a
 * worker loop in-process against one end of a socketpair.
 *
 * @return process exit code: 0 clean shutdown / EOF, 1 protocol or
 *         I/O error. (Injected crash faults _exit() directly.)
 */
int runWorkerLoop(int fd, Engine& engine, FaultInjector& faults);

/**
 * Full worker entry point:
 *   ccsa_worker <checkpoint> [cacheCapacity] [threads]
 *               [latentPrecision fp32|fp16|int8]
 * Loads the predictor from the v2 checkpoint, arms the fault
 * injector from $CCSA_FAULT (if set), and runs the loop on
 * kWorkerFd. Called by worker_main.cc; kept in the library so the
 * arg-parsing and startup path is unit-testable.
 */
int workerMain(int argc, char** argv);

} // namespace ipc
} // namespace ccsa

#endif // CCSA_SERVE_IPC_WORKER_HH
