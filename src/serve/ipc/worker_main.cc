/**
 * @file
 * Entry point of the `ccsa_worker` shard-process binary. Everything
 * interesting lives in serve/ipc/worker.cc (library code, so it is
 * testable in-process); this translation unit is excluded from the
 * ccsa library glob because it defines main().
 */

#include "serve/ipc/worker.hh"

int
main(int argc, char** argv)
{
    return ccsa::ipc::workerMain(argc, argv);
}
