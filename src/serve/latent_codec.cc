#include "serve/latent_codec.hh"

#include <cmath>
#include <cstring>

#include "serve/latent_f16_dispatch.hh"

namespace ccsa
{

const char*
latentPrecisionName(LatentPrecision p)
{
    switch (p) {
    case LatentPrecision::kFp32:
        return "fp32";
    case LatentPrecision::kFp16:
        return "fp16";
    case LatentPrecision::kInt8:
        return "int8";
    }
    return "fp32";
}

bool
parseLatentPrecision(const std::string& name, LatentPrecision* out)
{
    if (name == "fp32") {
        *out = LatentPrecision::kFp32;
        return true;
    }
    if (name == "fp16") {
        *out = LatentPrecision::kFp16;
        return true;
    }
    if (name == "int8") {
        *out = LatentPrecision::kInt8;
        return true;
    }
    return false;
}

std::uint16_t
f32ToF16(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::uint32_t absBits = bits & 0x7FFFFFFFu;

    if (absBits >= 0x7F800000u) {
        // Inf / NaN: keep the class, force a quiet-NaN mantissa bit
        // so a signalling payload can't be silently dropped to inf.
        if (absBits > 0x7F800000u)
            return static_cast<std::uint16_t>(sign | 0x7E00u);
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    if (absBits >= 0x47800000u) // >= 65536: overflows half
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    if (absBits >= 0x38800000u) {
        // Normal half: rebias exponent (127 -> 15), keep 10 mantissa
        // bits with round-to-nearest-even on the 13 dropped bits.
        std::uint32_t mant = absBits + 0xC8000000u; // rebias in place
        const std::uint32_t round = (mant >> 13) & 1u ?
            0x0FFFu + 1u : 0x0FFFu;
        return static_cast<std::uint16_t>(
            sign | ((mant + round) >> 13));
    }
    if (absBits >= 0x33000000u) {
        // Subnormal half: mant16 = m24 >> (126 - e), i.e. the 24-bit
        // significand (implicit 1 restored) shifted so the result is
        // in half-subnormal units of 2^-24. dropped ranges 14 (just
        // below the min normal) to 24 (the underflow boundary), so
        // the shifts below stay well-defined on u32.
        const std::uint32_t dropped = 126u - (absBits >> 23);
        std::uint32_t mant = (absBits & 0x007FFFFFu) | 0x00800000u;
        // round-to-nearest-even at the dropped-bit boundary; a carry
        // into bit 10 lands on the min normal half, which is exactly
        // the right encoding (exponent field becomes 1).
        const std::uint32_t halfUlp = 1u << (dropped - 1);
        const std::uint32_t lsb = 1u << dropped;
        mant += (mant & lsb) ? halfUlp : halfUlp - 1u;
        return static_cast<std::uint16_t>(sign | (mant >> dropped));
    }
    return static_cast<std::uint16_t>(sign); // underflow to +/-0
}

float
f16ToF32(std::uint16_t h)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u)
        << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    const std::uint32_t mant = h & 0x3FFu;
    std::uint32_t bits;
    if (exp == 0x1Fu) { // inf / NaN
        bits = sign | 0x7F800000u | (mant << 13);
    } else if (exp == 0) {
        if (mant == 0) {
            bits = sign; // signed zero
        } else {
            // Subnormal half -> normal float: renormalise.
            std::uint32_t m = mant;
            std::uint32_t e = 127u - 15u + 1u;
            while ((m & 0x400u) == 0) {
                m <<= 1;
                --e;
            }
            bits = sign | (e << 23) | ((m & 0x3FFu) << 13);
        }
    } else {
        bits = sign | ((exp + 127u - 15u) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

StoredLatent
encodeLatent(const Tensor& t, LatentPrecision precision)
{
    StoredLatent s;
    s.precision = precision;
    s.rows = t.rows();
    s.cols = t.cols();
    const std::size_t count = t.size();

    switch (precision) {
    case LatentPrecision::kFp32: {
        s.payload.resize(count * sizeof(float));
        if (count > 0)
            std::memcpy(s.payload.data(), t.data(),
                        s.payload.size());
        break;
    }
    case LatentPrecision::kFp16: {
        s.payload.resize(count * sizeof(std::uint16_t));
        auto* halves =
            reinterpret_cast<std::uint16_t*>(s.payload.data());
        kernels::activeF16Kernels().encodeRows(t.data(), halves,
                                               count);
        break;
    }
    case LatentPrecision::kInt8: {
        const std::size_t rows = static_cast<std::size_t>(s.rows);
        const std::size_t cols = static_cast<std::size_t>(s.cols);
        s.payload.resize(rows * sizeof(float) + count);
        auto* scales = reinterpret_cast<float*>(s.payload.data());
        auto* codes = reinterpret_cast<std::int8_t*>(
            s.payload.data() + rows * sizeof(float));
        for (std::size_t r = 0; r < rows; ++r) {
            const float* row = t.data() + r * cols;
            float maxAbs = 0.0f;
            for (std::size_t c = 0; c < cols; ++c)
                maxAbs = std::max(maxAbs, std::fabs(row[c]));
            // scale maps [-maxAbs, maxAbs] onto [-127, 127]; an
            // all-zero (or empty) row stores scale 0 and decodes to
            // exact zeros.
            const float scale =
                maxAbs > 0.0f ? maxAbs / 127.0f : 0.0f;
            const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
            scales[r] = scale;
            for (std::size_t c = 0; c < cols; ++c) {
                float q = std::nearbyint(row[c] * inv);
                q = std::min(127.0f, std::max(-127.0f, q));
                codes[r * cols + c] = static_cast<std::int8_t>(q);
            }
        }
        break;
    }
    }
    return s;
}

Tensor
decodeLatent(const StoredLatent& s)
{
    Tensor t(s.rows, s.cols);
    const std::size_t count = t.size();
    switch (s.precision) {
    case LatentPrecision::kFp32: {
        if (count > 0)
            std::memcpy(t.data(), s.payload.data(),
                        count * sizeof(float));
        break;
    }
    case LatentPrecision::kFp16: {
        const auto* halves =
            reinterpret_cast<const std::uint16_t*>(s.payload.data());
        kernels::activeF16Kernels().decodeRows(halves, t.data(),
                                               count);
        break;
    }
    case LatentPrecision::kInt8: {
        const std::size_t rows = static_cast<std::size_t>(s.rows);
        const std::size_t cols = static_cast<std::size_t>(s.cols);
        const auto* scales =
            reinterpret_cast<const float*>(s.payload.data());
        const auto* codes = reinterpret_cast<const std::int8_t*>(
            s.payload.data() + rows * sizeof(float));
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < cols; ++c)
                t.data()[r * cols + c] =
                    static_cast<float>(codes[r * cols + c]) *
                    scales[r];
        break;
    }
    }
    return t;
}

} // namespace ccsa
