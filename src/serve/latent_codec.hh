/**
 * @file
 * Reduced-precision storage for cached tree latents.
 *
 * The EncodingCache holds one h-vector (1 x hiddenDim fp32 Tensor)
 * per (modelVersion, treeDigest). BENCH_serve.json showed cache
 * residency — how many latents fit — is what drove the sharded
 * throughput win, so the cache can optionally store entries at
 * reduced precision and dequantize on hit:
 *
 *  - kFp32: bit-exact passthrough, 4 bytes/element (default).
 *  - kFp16: IEEE binary16, round-to-nearest-even, 2 bytes/element.
 *    Unit-normal latents roundtrip within ~1e-3 relative.
 *  - kInt8: symmetric per-row affine, 1 byte/element + 4 bytes/row
 *    scale (scale = maxAbs/127, values clamped to [-127, 127]).
 *
 * Bulk fp16 conversion goes through the runtime-dispatched kernel
 * table in latent_f16_dispatch.hh (F16C when the CPU has it,
 * portable bit-twiddling otherwise or under CCSA_F16_KERNEL=portable);
 * both families agree bitwise on every finite value, so a quantized
 * cache behaves identically under either path and on non-x86 builds.
 * Quantization is deterministic: the
 * same Tensor always encodes to the same bytes, and the Engine
 * serves decode(encode(x)) on a miss — the exact values a later hit
 * will decode from the stored bytes — so hit and miss results are
 * bitwise-identical regardless of cache state.
 */

#ifndef CCSA_SERVE_LATENT_CODEC_HH
#define CCSA_SERVE_LATENT_CODEC_HH

#include "tensor/tensor.hh"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccsa
{

enum class LatentPrecision : std::uint8_t
{
    kFp32 = 0,
    kFp16 = 1,
    kInt8 = 2,
};

/** "fp32" / "fp16" / "int8" — the CLI/env spelling. */
const char* latentPrecisionName(LatentPrecision p);

/** Inverse of latentPrecisionName; @return false on unknown names
 * (leaves *out untouched). */
bool parseLatentPrecision(const std::string& name,
                          LatentPrecision* out);

/** A latent in cache-resident form. rows/cols preserve the Tensor
 * shape; payload layout depends on precision (see encodeLatent). */
struct StoredLatent
{
    LatentPrecision precision = LatentPrecision::kFp32;
    int rows = 0;
    int cols = 0;
    /** kFp32: rows*cols floats, bit-exact.
     *  kFp16: rows*cols uint16 halves.
     *  kInt8: rows scales (float) then rows*cols int8 codes. */
    std::vector<std::uint8_t> payload;

    /** Bytes the cache charges against capacity metrics. */
    std::size_t payloadBytes() const { return payload.size(); }
};

/** fp32 -> binary16 bits, round-to-nearest-even, overflow to inf. */
std::uint16_t f32ToF16(float f);

/** binary16 bits -> fp32 (exact; every half is representable). */
float f16ToF32(std::uint16_t h);

/** Quantize t into cache-resident form at the given precision. */
StoredLatent encodeLatent(const Tensor& t, LatentPrecision precision);

/** Reconstruct an fp32 Tensor from stored form. For kFp32 this is
 * bit-exact; for kFp16/kInt8 it lands on the quantization grid. */
Tensor decodeLatent(const StoredLatent& s);

} // namespace ccsa

#endif // CCSA_SERVE_LATENT_CODEC_HH
