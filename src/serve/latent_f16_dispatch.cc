#include "serve/latent_f16_dispatch.hh"

#include <cstdlib>
#include <cstring>

#include "serve/latent_codec.hh"

namespace ccsa
{
namespace kernels
{

namespace
{

/** Portable rows = the scalar conversions the codec always used. */
void
portableDecodeRows(const std::uint16_t* src, float* dst,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = f16ToF32(src[i]);
}

void
portableEncodeRows(const float* src, std::uint16_t* dst,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = f32ToF16(src[i]);
}

const F16Kernels kPortable{portableDecodeRows, portableEncodeRows,
                           "portable"};

bool
forcePortableFromEnv()
{
    const char* env = std::getenv("CCSA_F16_KERNEL");
    if (env == nullptr)
        return false;
    return std::strcmp(env, "portable") == 0;
}

} // namespace

const F16Kernels&
portableF16Kernels()
{
    return kPortable;
}

// Defined in latent_f16_f16c.cc (its own translation unit so only
// that file is compiled with -mavx -mf16c). Returns nullptr when the
// build has no F16C codegen or the CPU lacks the feature.
const F16Kernels* f16cKernelsOrNull();

bool
f16cAvailable()
{
    return f16cKernelsOrNull() != nullptr;
}

const F16Kernels&
f16cKernels()
{
    const F16Kernels* hw = f16cKernelsOrNull();
    return hw != nullptr ? *hw : kPortable;
}

const F16Kernels&
activeF16Kernels()
{
    // One decision per process, like activeKernels(): the bytes a
    // quantizing cache stores and later decodes must come from one
    // family for hit/miss determinism.
    static const F16Kernels& active = [] {
        if (forcePortableFromEnv())
            return kPortable;
        const F16Kernels* hw = f16cKernelsOrNull();
        return hw != nullptr ? *hw : kPortable;
    }();
    return active;
}

const char*
activeF16KernelName()
{
    return activeF16Kernels().name;
}

} // namespace kernels
} // namespace ccsa
