/**
 * @file
 * Runtime-dispatched bulk fp16 codec kernels for the latent store.
 *
 * Mirrors the matmul dispatch table (tensor/matmul_dispatch.hh): one
 * portable bit-twiddling family that runs anywhere and is the
 * correctness oracle, and an F16C family (latent_f16_f16c.cc, the
 * only TU built with -mavx -mf16c) selected once per process when
 * __builtin_cpu_supports("f16c") says the hardware can. The env
 * override CCSA_F16_KERNEL=portable forces the oracle, giving CI a
 * leg that proves the fallback stays green on vectorized hardware.
 *
 * Both families implement IEEE 754 binary16 with round-to-nearest-
 * even and are bitwise-identical on every finite value, signed zero
 * and infinity. The one documented divergence is NaN *payloads*:
 * hardware cvtph2ps quiets signalling NaNs and cvtps2ph preserves
 * truncated payloads where the portable code canonicalises every NaN
 * to 0x7E00|sign. NaN class is always preserved; latents are finite
 * by construction (bounded activations), so stored bytes never hit
 * the divergent codes in practice. The exhaustive codec test pins
 * exactly this contract.
 */

#ifndef CCSA_SERVE_LATENT_F16_DISPATCH_HH
#define CCSA_SERVE_LATENT_F16_DISPATCH_HH

#include <cstddef>
#include <cstdint>

namespace ccsa
{
namespace kernels
{

/** dst[i] = decode(src[i]) for n half codes. */
using F16DecodeRowsFn = void (*)(const std::uint16_t* src, float* dst,
                                 std::size_t n);

/** dst[i] = encode(src[i]) (RNE) for n floats. */
using F16EncodeRowsFn = void (*)(const float* src, std::uint16_t* dst,
                                 std::size_t n);

/** One fp16 codec family, selected as a unit. */
struct F16Kernels
{
    F16DecodeRowsFn decodeRows;
    F16EncodeRowsFn encodeRows;
    const char* name;
};

/** The portable bit-twiddling family (always available; the oracle). */
const F16Kernels& portableF16Kernels();

/** @return whether the F16C family is compiled in AND the CPU has it. */
bool f16cAvailable();

/**
 * The F16C family itself, independent of the env override — aliases
 * the portable family when f16cAvailable() is false. Tests and
 * benchmarks use this to exercise the hardware path even on runs
 * where CCSA_F16_KERNEL pins the active family to portable
 * (mirroring kernels::simdKernels() on the matmul side).
 */
const F16Kernels& f16cKernels();

/**
 * The family every latent encode/decode in this process uses,
 * resolved once: portable when CCSA_F16_KERNEL=portable or the
 * hardware lacks F16C, the F16C family otherwise. One family per
 * process keeps cache hit/miss bytes self-consistent.
 */
const F16Kernels& activeF16Kernels();

/** Name of the active family ("portable" or "f16c"). */
const char* activeF16KernelName();

} // namespace kernels
} // namespace ccsa

#endif // CCSA_SERVE_LATENT_F16_DISPATCH_HH
