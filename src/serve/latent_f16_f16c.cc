/**
 * @file
 * F16C fp16 codec family. This is the ONLY translation unit compiled
 * with -mavx -mf16c (see the set_source_files_properties block in
 * CMakeLists.txt), mirroring how matmul_avx2.cc isolates AVX2
 * codegen: arch flags here cannot leak vector instructions into
 * generic code, so the binary stays runnable on CPUs without F16C —
 * f16cKernelsOrNull() checks __builtin_cpu_supports before anything
 * in this file executes a VCVTPH2PS/VCVTPS2PH.
 *
 * The scalar tails use the same hardware instruction (single-lane
 * _mm_cvtph_ps/_mm_cvtps_ph) as the 8-wide body, so results do not
 * depend on how n divides by 8.
 */

#include "serve/latent_f16_dispatch.hh"

#if defined(__F16C__) && defined(__AVX__) && \
    (defined(__x86_64__) || defined(__i386__))
#define CCSA_HAVE_F16C_KERNELS 1
#include <immintrin.h>
#else
#define CCSA_HAVE_F16C_KERNELS 0
#endif

namespace ccsa
{
namespace kernels
{

#if CCSA_HAVE_F16C_KERNELS

namespace
{

void
f16cDecodeRows(const std::uint16_t* src, float* dst, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i h = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + i));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
    for (; i < n; ++i) {
        __m128i h = _mm_cvtsi32_si128(static_cast<int>(src[i]));
        dst[i] = _mm_cvtss_f32(_mm_cvtph_ps(h));
    }
}

void
f16cEncodeRows(const float* src, std::uint16_t* dst, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 f = _mm256_loadu_ps(src + i);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(dst + i),
            _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT));
    }
    for (; i < n; ++i) {
        __m128i h =
            _mm_cvtps_ph(_mm_set_ss(src[i]), _MM_FROUND_TO_NEAREST_INT);
        dst[i] = static_cast<std::uint16_t>(_mm_cvtsi128_si32(h));
    }
}

const F16Kernels kF16c{f16cDecodeRows, f16cEncodeRows, "f16c"};

} // namespace

const F16Kernels*
f16cKernelsOrNull()
{
    return __builtin_cpu_supports("f16c") ? &kF16c : nullptr;
}

#else // !CCSA_HAVE_F16C_KERNELS

const F16Kernels*
f16cKernelsOrNull()
{
    return nullptr;
}

#endif // CCSA_HAVE_F16C_KERNELS

} // namespace kernels
} // namespace ccsa
