#include "serve/metrics/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace ccsa
{

namespace
{

/** Escape a label value per the Prometheus text format: backslash,
 * double quote, and newline. */
std::string
escapeLabelValue(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Render a double the way Prometheus expects: integral values as
 * integers, everything else with round-trip-ish precision. */
std::string
formatNumber(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v < 1e15 && v > -1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Insert an extra label (le/quantile) into a rendered label block:
 * "" + (le, 1) -> {le="1"}; {a="x"} + (le, 1) -> {a="x",le="1"}. */
std::string
withExtraLabel(const std::string& rendered, const std::string& key,
               const std::string& value)
{
    std::string extra = key + "=\"" + escapeLabelValue(value) + "\"";
    if (rendered.empty())
        return "{" + extra + "}";
    std::string out = rendered;
    out.insert(out.size() - 1, "," + extra);
    return out;
}

/** One-line HELP text (the format is line-oriented). */
std::string
helpLine(const std::string& help)
{
    std::string out = help;
    std::replace(out.begin(), out.end(), '\n', ' ');
    return out;
}

} // namespace

std::string
renderMetricLabels(const MetricLabels& labels)
{
    if (labels.empty())
        return "";
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = "{";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i].first.empty())
            fatal("metrics: empty label name on a metric");
        if (i > 0)
            out += ",";
        out += sorted[i].first + "=\"" +
               escapeLabelValue(sorted[i].second) + "\"";
    }
    out += "}";
    return out;
}

void
Counter::increaseTo(std::uint64_t target)
{
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < target &&
           !value_.compare_exchange_weak(cur, target,
                                         std::memory_order_relaxed)) {
        // cur reloaded by the failed CAS; loop until it catches up.
    }
}

WindowedHistogram::WindowedHistogram()
    : WindowedHistogram(Options())
{
}

WindowedHistogram::WindowedHistogram(
    Options opts, std::chrono::steady_clock::time_point epoch)
    : opts_([&] {
          Options o = opts;
          if (o.bucketWidth.count() <= 0)
              fatal("WindowedHistogram: bucketWidth must be > 0");
          if (o.numBuckets == 0)
              fatal("WindowedHistogram: numBuckets must be > 0");
          return o;
      }()),
      epoch_(epoch),
      ring_(opts_.numBuckets)
{
}

std::uint64_t
WindowedHistogram::seqFor(
    std::chrono::steady_clock::time_point now) const
{
    if (now <= epoch_)
        return 0;
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  now - epoch_)
                  .count();
    return static_cast<std::uint64_t>(us) /
           static_cast<std::uint64_t>(opts_.bucketWidth.count());
}

void
WindowedHistogram::rotateTo(std::uint64_t seq) const
{
    if (seq <= curSeq_)
        return; // time never runs backwards in the ring
    const std::uint64_t n = ring_.size();
    // Clear every bucket whose span was skipped. A jump of >= n
    // buckets retires the whole ring; otherwise only the buckets
    // between the old head and the new head are stale.
    std::uint64_t firstStale;
    if (seq - curSeq_ >= n)
        firstStale = seq + 1 >= n ? seq + 1 - n : 0;
    else
        firstStale = curSeq_ + 1;
    for (std::uint64_t s = firstStale; s <= seq; ++s) {
        Slot& slot = ring_[s % n];
        slot.seq = s;
        slot.hist = Histogram();
    }
    curSeq_ = seq;
}

void
WindowedHistogram::add(std::size_t value,
                       std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rotateTo(seqFor(now));
    ring_[curSeq_ % ring_.size()].hist.add(value);
    lifetime_.add(value);
}

Histogram
WindowedHistogram::window(
    std::chrono::steady_clock::time_point now) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    rotateTo(seqFor(now));
    // After rotation every slot's seq lies in
    // [curSeq_ - n + 1, curSeq_], i.e. every slot is live.
    Histogram merged;
    for (const Slot& slot : ring_)
        merged.merge(slot.hist);
    return merged;
}

Histogram
WindowedHistogram::lifetime() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lifetime_;
}

MetricsRegistry::MetricsRegistry()
    : MetricsRegistry(Clock([] {
          return std::chrono::steady_clock::now();
      }))
{
}

MetricsRegistry::MetricsRegistry(Clock clock)
    : clock_(std::move(clock)), epoch_(clock_())
{
}

const char*
MetricsRegistry::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::WindowedHistogram: return "histogram";
    }
    return "unknown";
}

MetricsRegistry::Family&
MetricsRegistry::family(const std::string& name, Kind kind,
                        const std::string& help)
{
    if (name.empty())
        fatal("metrics: empty metric family name");
    auto it = families_.find(name);
    if (it == families_.end()) {
        Family fam;
        fam.kind = kind;
        fam.help = help;
        it = families_.emplace(name, std::move(fam)).first;
    } else if (it->second.kind != kind) {
        fatal("metrics: family '", name, "' registered as ",
              kindName(it->second.kind), ", requested as ",
              kindName(kind));
    }
    return it->second;
}

Counter&
MetricsRegistry::counter(const std::string& name,
                         const MetricLabels& labels,
                         const std::string& help)
{
    std::string key = renderMetricLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    Family& fam = family(name, Kind::Counter, help);
    Instrument& inst = fam.instruments[key];
    if (!inst.counter)
        inst.counter = std::make_unique<Counter>();
    return *inst.counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name,
                       const MetricLabels& labels,
                       const std::string& help)
{
    std::string key = renderMetricLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    Family& fam = family(name, Kind::Gauge, help);
    Instrument& inst = fam.instruments[key];
    if (!inst.gauge)
        inst.gauge = std::make_unique<Gauge>();
    return *inst.gauge;
}

WindowedHistogram&
MetricsRegistry::windowedHistogram(const std::string& name,
                                   const MetricLabels& labels,
                                   WindowedHistogram::Options opts,
                                   const std::string& help)
{
    std::string key = renderMetricLabels(labels);
    std::lock_guard<std::mutex> lock(mutex_);
    Family& fam = family(name, Kind::WindowedHistogram, help);
    if (fam.instruments.empty())
        fam.histogramOptions = opts;
    Instrument& inst = fam.instruments[key];
    if (!inst.histogram) {
        // The family's first creation fixes the window shape; every
        // label set of one family rotates on the same schedule.
        inst.histogram = std::make_unique<ccsa::WindowedHistogram>(
            fam.histogramOptions, epoch_);
    }
    return *inst.histogram;
}

void
MetricsRegistry::expose(std::ostream& out) const
{
    const auto now = clock_();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, fam] : families_) {
        if (!fam.help.empty())
            out << "# HELP " << name << " " << helpLine(fam.help)
                << "\n";
        out << "# TYPE " << name << " " << kindName(fam.kind)
            << "\n";
        if (fam.kind == Kind::WindowedHistogram) {
            // Lifetime cumulative histogram: monotone across
            // scrapes, full bucket schedule every time so the line
            // set is stable.
            for (const auto& [labels, inst] : fam.instruments) {
                Histogram life = inst.histogram->lifetime();
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i < Histogram::kBuckets;
                     ++i) {
                    cum += life.bucket(i);
                    std::string le =
                        i + 1 == Histogram::kBuckets
                            ? "+Inf"
                            : std::to_string(
                                  Histogram::bucketUpperBound(i));
                    out << name << "_bucket"
                        << withExtraLabel(labels, "le", le) << " "
                        << cum << "\n";
                }
                out << name << "_sum" << labels << " "
                    << life.sum() << "\n";
                out << name << "_count" << labels << " "
                    << life.count() << "\n";
            }
            // Live-window quantiles as a separate summary family
            // (NOT monotone — the whole point is that it forgets).
            const std::string wname = name + "_window";
            out << "# TYPE " << wname << " summary\n";
            for (const auto& [labels, inst] : fam.instruments) {
                Histogram win = inst.histogram->window(now);
                for (double q : {0.5, 0.9, 0.99}) {
                    out << wname
                        << withExtraLabel(labels, "quantile",
                                          formatNumber(q))
                        << " " << win.quantileUpperBound(q) << "\n";
                }
                out << wname << "_sum" << labels << " "
                    << win.sum() << "\n";
                out << wname << "_count" << labels << " "
                    << win.count() << "\n";
            }
            continue;
        }
        for (const auto& [labels, inst] : fam.instruments) {
            out << name << labels << " ";
            if (fam.kind == Kind::Counter)
                out << inst.counter->value();
            else
                out << formatNumber(inst.gauge->value());
            out << "\n";
        }
    }
}

std::string
MetricsRegistry::expose() const
{
    std::ostringstream os;
    expose(os);
    return os.str();
}

Status
MetricsRegistry::exposeToFile(const std::string& path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return Status::ioError("metrics: cannot open " + tmp);
        expose(out);
        if (!out)
            return Status::ioError("metrics: write failed: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return Status::ioError("metrics: rename to " + path +
                               " failed");
    return Status::ok();
}

std::vector<std::string>
MetricsRegistry::familyNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(families_.size());
    for (const auto& [name, fam] : families_)
        names.push_back(name);
    return names;
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace ccsa
