/**
 * @file
 * ccsa::MetricsRegistry — the process-wide metrics plane for the
 * serving stack: named, labeled instruments (Counter, Gauge,
 * WindowedHistogram) with Prometheus-text-format exposition.
 *
 * Why windowed: ServerStats quantiles are lifetime aggregates — a
 * p99 computed over the whole process uptime cannot show that the
 * *last ten seconds* regressed. WindowedHistogram keeps a ring of N
 * rotating power-of-two Histogram buckets (base/stats.hh), so
 * "p99 over the last 60s" is exact over the live buckets, old
 * samples age out deterministically, and — because every add() and
 * window() takes an explicit time point — the whole thing is
 * testable with a fake clock, no sleeps.
 *
 * Instruments are created on first use and live as long as the
 * registry; the references handed out are stable, so hot paths may
 * cache them and update lock-free (Counter/Gauge are atomics;
 * WindowedHistogram takes a short internal lock). Label sets are
 * sorted by key, so {a=1,b=2} and {b=2,a=1} name one instrument.
 *
 * Exposition (expose()) renders the classic Prometheus text format:
 *
 *   # HELP name help text
 *   # TYPE name counter|gauge|histogram|summary
 *   name{label="value",...} 123
 *
 * A WindowedHistogram exports TWO families: `<name>` as a
 * cumulative lifetime histogram (`_bucket{le=...}`/`_sum`/`_count`,
 * monotone across scrapes) and `<name>_window` as a summary
 * (p50/p99 quantiles + `_sum`/`_count` of the live window only —
 * NOT monotone, by design). tools/check_metrics.py validates both
 * contracts against serving_daemon --metrics-out in CI.
 */

#ifndef CCSA_SERVE_METRICS_METRICS_HH
#define CCSA_SERVE_METRICS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/result.hh"
#include "base/stats.hh"

namespace ccsa
{

/** Label set of one instrument: (key, value) pairs. Order does not
 * matter — the registry sorts by key before keying/rendering. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/**
 * Monotonically increasing event count. Lock-free; safe to update
 * from any thread.
 */
class Counter
{
  public:
    /** Add `delta` events. */
    void inc(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /**
     * Raise the counter to `target` if it is currently below it
     * (no-op otherwise). This is how sampler probes mirror an
     * internal lifetime total (cache hits, admission counts) into
     * the registry without double counting: repeatedly publishing
     * the same snapshot is idempotent, and the counter stays
     * monotone even if probes race.
     */
    void increaseTo(std::uint64_t target);

    /** @return the current count. */
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A value that can go up and down (queue depth, resident bytes,
 * burn rate). Lock-free; last writer wins. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Time-windowed latency/size distribution: a ring of N rotating
 * power-of-two Histogram buckets, each covering one fixed span of
 * time, plus a lifetime Histogram that never resets.
 *
 * Bucket b holds the samples whose timestamp fell in
 * [epoch + b*width, epoch + (b+1)*width); window(now) merges the
 * ring's live buckets, so it covers between (N-1) and N bucket
 * widths of history depending on how full the current bucket is.
 * A clock jump of >= N buckets retires the entire ring (the window
 * is empty until new samples arrive). Time never moves backwards:
 * a sample stamped earlier than the newest observed bucket lands in
 * that newest bucket.
 *
 * All time points are explicit parameters: serving code passes the
 * steady_clock reading it already took for latency accounting, and
 * tests drive a fake clock for deterministic rotation.
 */
class WindowedHistogram
{
  public:
    struct Options
    {
        /** Time span of one ring bucket. */
        std::chrono::microseconds bucketWidth{
            std::chrono::seconds(10)};
        /** Ring length; window covers numBuckets * bucketWidth. */
        std::size_t numBuckets = 6;

        Options& withBucketWidth(std::chrono::microseconds w)
        {
            bucketWidth = w;
            return *this;
        }
        Options& withNumBuckets(std::size_t n)
        {
            numBuckets = n;
            return *this;
        }
    };

    /** Default window shape (6 x 10s), epoch = now. */
    WindowedHistogram();
    explicit WindowedHistogram(
        Options opts,
        std::chrono::steady_clock::time_point epoch =
            std::chrono::steady_clock::now());

    WindowedHistogram(const WindowedHistogram&) = delete;
    WindowedHistogram& operator=(const WindowedHistogram&) = delete;

    /** Record one sample observed at `now`. */
    void add(std::size_t value,
             std::chrono::steady_clock::time_point now);

    /**
     * @return the merged distribution of the live window as of
     * `now` (empty Histogram — quantileUpperBound 0 — when every
     * bucket has aged out). Rotates the ring first, so a spike
     * older than the window is gone even if nothing was added
     * since.
     */
    Histogram window(std::chrono::steady_clock::time_point now) const;

    /** @return the lifetime distribution (never resets). */
    Histogram lifetime() const;

    /** @return total time span the ring can cover. */
    std::chrono::microseconds windowSpan() const
    {
        return opts_.bucketWidth *
               static_cast<std::int64_t>(opts_.numBuckets);
    }

    const Options& options() const { return opts_; }

  private:
    struct Slot
    {
        std::uint64_t seq = 0;
        Histogram hist;
    };

    /** Advance the ring so curSeq_ covers `now`, clearing buckets
     * whose time span was skipped. Caller holds mutex_. */
    void rotateTo(std::uint64_t seq) const;

    std::uint64_t seqFor(
        std::chrono::steady_clock::time_point now) const;

    const Options opts_;
    const std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    mutable std::vector<Slot> ring_;
    mutable std::uint64_t curSeq_ = 0;
    Histogram lifetime_;
};

/**
 * Process-wide registry of named, labeled instruments. Thread-safe;
 * instrument lookup takes a registry lock, so hot paths should
 * fetch their instruments once and cache the references (they stay
 * valid for the registry's lifetime).
 *
 * One metric *family* (name) holds one instrument *kind* and any
 * number of label sets; asking for the same name with a different
 * kind is a caller bug (fatal). WindowedHistogram options are fixed
 * by the family's first creation; later lookups reuse them.
 */
class MetricsRegistry
{
  public:
    /** Injectable time source, used when exposition needs "now" to
     * rotate windowed instruments. Defaults to steady_clock. */
    using Clock = std::function<std::chrono::steady_clock::time_point()>;

    MetricsRegistry();
    explicit MetricsRegistry(Clock clock);

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** @return the instrument for (name, labels), creating it on
     * first use. `help` is recorded on family creation. */
    Counter& counter(const std::string& name,
                     const MetricLabels& labels = {},
                     const std::string& help = "");
    Gauge& gauge(const std::string& name,
                 const MetricLabels& labels = {},
                 const std::string& help = "");
    WindowedHistogram& windowedHistogram(
        const std::string& name, const MetricLabels& labels = {},
        WindowedHistogram::Options opts = WindowedHistogram::Options(),
        const std::string& help = "");

    /** @return the registry's current time (its injected clock). */
    std::chrono::steady_clock::time_point now() const
    {
        return clock_();
    }

    /** Render every instrument in Prometheus text format, families
     * in name order, label sets in lexicographic order. */
    void expose(std::ostream& out) const;
    std::string expose() const;

    /** Atomically-ish dump expose() to `path` (write temp file,
     * rename over), so a concurrent reader never sees a torn
     * scrape. */
    Status exposeToFile(const std::string& path) const;

    /** Families currently registered, in exposition order. */
    std::vector<std::string> familyNames() const;

    /** The default process-wide registry (servers accept any
     * registry pointer; this one is for convenience). */
    static MetricsRegistry& global();

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        WindowedHistogram,
    };

    struct Instrument
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<ccsa::WindowedHistogram> histogram;
    };

    struct Family
    {
        Kind kind = Kind::Counter;
        std::string help;
        ccsa::WindowedHistogram::Options histogramOptions;
        /** Keyed by the rendered label string ("{a=\"x\"}"), which
         * is also what exposition prints. */
        std::map<std::string, Instrument> instruments;
    };

    Family& family(const std::string& name, Kind kind,
                   const std::string& help);

    static const char* kindName(Kind kind);

    Clock clock_;
    const std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::map<std::string, Family> families_;
};

/** @return `labels` sorted by key and rendered as a Prometheus
 * label block: `{a="x",b="y"}`, "" when empty. Values are escaped
 * (backslash, quote, newline). Exposed for tests. */
std::string renderMetricLabels(const MetricLabels& labels);

} // namespace ccsa

#endif // CCSA_SERVE_METRICS_METRICS_HH
