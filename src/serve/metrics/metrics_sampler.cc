#include "serve/metrics/metrics_sampler.hh"

#include "base/logging.hh"

namespace ccsa
{

MetricsSampler::MetricsSampler(MetricsRegistry& registry)
    : MetricsSampler(registry, Options())
{
}

MetricsSampler::MetricsSampler(MetricsRegistry& registry,
                               Options opts)
    : registry_(registry), opts_(opts)
{
    if (opts_.period.count() <= 0)
        fatal("MetricsSampler: period must be > 0");
}

MetricsSampler::~MetricsSampler()
{
    stop();
}

void
MetricsSampler::addProbe(std::function<void()> probe)
{
    std::lock_guard<std::mutex> lock(mutex_);
    probes_.push_back(std::move(probe));
}

void
MetricsSampler::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_)
        return;
    stopRequested_ = false;
    running_ = true;
    thread_ = std::thread([this] { loop(); });
}

void
MetricsSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
}

void
MetricsSampler::sampleOnce()
{
    std::vector<std::function<void()>> probes;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        probes = probes_;
    }
    // Probes run outside the sampler lock: they take subsystem
    // locks of their own (server stats, cache partitions) and must
    // not serialize against addProbe callers.
    for (const auto& probe : probes)
        probe();
    if (!opts_.expositionPath.empty()) {
        Status st = registry_.exposeToFile(opts_.expositionPath);
        if (!st.isOk())
            warn("MetricsSampler: " + st.message());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    sweeps_++;
}

std::uint64_t
MetricsSampler::sweeps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sweeps_;
}

void
MetricsSampler::loop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (cv_.wait_for(lock, opts_.period,
                             [this] { return stopRequested_; })) {
                return;
            }
        }
        sampleOnce();
    }
}

} // namespace ccsa
