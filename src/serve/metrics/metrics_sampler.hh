/**
 * @file
 * ccsa::MetricsSampler — the background scrape thread of the
 * metrics plane. Counters and latency histograms are pushed inline
 * by the serving hot path, but *level* metrics (queue depth, cache
 * residents/bytes per namespace, live model versions, admission
 * bucket fill, SLO burn rate) are snapshots of someone else's
 * state: they have to be pulled. Probes are std::function<void()>
 * closures (AsyncServer::sampleMetrics, ShardedServer's, an
 * AdmissionController::publishMetrics bind, SloTracker
 * publishGauges) that the sampler runs every period; after each
 * sweep it optionally dumps the registry's exposition to a file, so
 * an external scraper — or tools/check_metrics.py in CI — always
 * reads a complete, freshly rotated view.
 *
 * sampleOnce() runs one synchronous sweep without the thread, which
 * is what tests and the serving_daemon demo use for deterministic
 * scrapes.
 */

#ifndef CCSA_SERVE_METRICS_METRICS_SAMPLER_HH
#define CCSA_SERVE_METRICS_METRICS_SAMPLER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics/metrics.hh"

namespace ccsa
{

/** Periodic gauge-probe runner + exposition dumper. */
class MetricsSampler
{
  public:
    struct Options
    {
        /** Sweep period. */
        std::chrono::milliseconds period{1000};
        /** When non-empty, expose() is dumped here (atomically,
         * via rename) after every sweep. */
        std::string expositionPath;

        Options& withPeriod(std::chrono::milliseconds p)
        {
            period = p;
            return *this;
        }
        Options& withExpositionPath(std::string path)
        {
            expositionPath = std::move(path);
            return *this;
        }
    };

    explicit MetricsSampler(MetricsRegistry& registry);
    MetricsSampler(MetricsRegistry& registry, Options opts);

    /** Stops the thread (stop()). */
    ~MetricsSampler();

    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    /** Register a probe run on every sweep. Probes added after
     * start() take effect from the next sweep. */
    void addProbe(std::function<void()> probe);

    /** Start the background thread (idempotent). */
    void start();

    /** Stop and join the background thread (idempotent; safe if
     * never started). */
    void stop();

    /** Run one sweep synchronously on the calling thread: every
     * probe, then the exposition dump if configured. */
    void sampleOnce();

    /** Completed sweeps (thread + sampleOnce). */
    std::uint64_t sweeps() const;

  private:
    void loop();

    MetricsRegistry& registry_;
    const Options opts_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::function<void()>> probes_;
    std::thread thread_;
    bool running_ = false;
    bool stopRequested_ = false;
    std::uint64_t sweeps_ = 0;
};

} // namespace ccsa

#endif // CCSA_SERVE_METRICS_METRICS_SAMPLER_HH
