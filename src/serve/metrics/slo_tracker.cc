#include "serve/metrics/slo_tracker.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ccsa
{

namespace
{

const char* kGoodHelp =
    "Requests that met their (model, tenant) latency objective.";
const char* kBadHelp =
    "Requests that missed their (model, tenant) latency objective.";
const char* kBurnHelp =
    "Error-budget burn rate over the live SLO window "
    "(1 = burning exactly at budget; 0 = clean or empty window).";

} // namespace

SloTracker::SloTracker(MetricsRegistry& registry)
    : registry_(registry)
{
}

void
SloTracker::setObjective(const std::string& model,
                         const std::string& tenant, Objective obj)
{
    if (obj.latencyThresholdUs == 0)
        fatal("SloTracker: latencyThresholdUs must be > 0");
    obj.targetGoodFraction =
        std::min(std::max(obj.targetGoodFraction, 0.0),
                 1.0 - 1e-9);

    MetricLabels labels{{"model", model}, {"tenant", tenant}};
    State state;
    state.obj = obj;
    const auto epoch = registry_.now();
    state.goodWindow = std::make_unique<WindowedHistogram>(
        obj.window, epoch);
    state.badWindow = std::make_unique<WindowedHistogram>(
        obj.window, epoch);
    state.goodTotal =
        &registry_.counter("ccsa_slo_good_total", labels, kGoodHelp);
    state.badTotal =
        &registry_.counter("ccsa_slo_bad_total", labels, kBadHelp);
    state.burn =
        &registry_.gauge("ccsa_slo_burn_rate", labels, kBurnHelp);
    state.burn->set(0.0);

    std::lock_guard<std::mutex> lock(mutex_);
    objectives_[Key(model, tenant)] = std::move(state);
}

bool
SloTracker::hasObjective(const std::string& model,
                         const std::string& tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return objectives_.count(Key(model, tenant)) > 0;
}

void
SloTracker::record(const std::string& model,
                   const std::string& tenant, std::size_t latencyUs,
                   std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = objectives_.find(Key(model, tenant));
    if (it == objectives_.end())
        return;
    State& state = it->second;
    if (latencyUs <= state.obj.latencyThresholdUs) {
        state.goodWindow->add(0, now);
        state.goodTotal->inc();
    } else {
        state.badWindow->add(0, now);
        state.badTotal->inc();
    }
}

void
SloTracker::record(const std::string& model,
                   const std::string& tenant, std::size_t latencyUs)
{
    record(model, tenant, latencyUs, registry_.now());
}

SloTracker::WindowCounts
SloTracker::windowCounts(
    const std::string& model, const std::string& tenant,
    std::chrono::steady_clock::time_point now) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = objectives_.find(Key(model, tenant));
    if (it == objectives_.end())
        return WindowCounts();
    WindowCounts counts;
    counts.good = it->second.goodWindow->window(now).count();
    counts.bad = it->second.badWindow->window(now).count();
    return counts;
}

double
SloTracker::burnRateLocked(
    const State& state,
    std::chrono::steady_clock::time_point now) const
{
    const std::uint64_t good =
        state.goodWindow->window(now).count();
    const std::uint64_t bad = state.badWindow->window(now).count();
    const std::uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    const double badFraction =
        static_cast<double>(bad) / static_cast<double>(total);
    const double budget = 1.0 - state.obj.targetGoodFraction;
    return badFraction / budget;
}

double
SloTracker::burnRate(const std::string& model,
                     const std::string& tenant,
                     std::chrono::steady_clock::time_point now) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = objectives_.find(Key(model, tenant));
    if (it == objectives_.end())
        return 0.0;
    return burnRateLocked(it->second, now);
}

double
SloTracker::burnRate(const std::string& model,
                     const std::string& tenant) const
{
    return burnRate(model, tenant, registry_.now());
}

void
SloTracker::publishGauges(std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, state] : objectives_)
        state.burn->set(burnRateLocked(state, now));
}

void
SloTracker::publishGauges()
{
    publishGauges(registry_.now());
}

} // namespace ccsa
