/**
 * @file
 * ccsa::SloTracker — per-model/per-tenant latency objectives on top
 * of the metrics plane. An Objective says "requests for (model,
 * tenant) should finish within latencyThresholdUs, at least
 * targetGoodFraction of the time, judged over a rolling window".
 * Every recorded request is classified good (latency <= threshold)
 * or bad, feeding:
 *
 *   ccsa_slo_good_total{model,tenant}   lifetime counter
 *   ccsa_slo_bad_total{model,tenant}    lifetime counter
 *   ccsa_slo_burn_rate{model,tenant}    gauge (via publishGauges)
 *
 * Burn rate is the SRE error-budget burn: the window's bad
 * fraction divided by the budget (1 - target). 1.0 means the
 * budget burns exactly as fast as it refills; > 1 means the SLO
 * will be violated if the window's behavior continues; 0 means a
 * clean (or empty) window. Because the window forgets, burn rate
 * *recovers* after an incident ages out — which is precisely the
 * promotion/rollback signal the ROADMAP's canary loop needs, where
 * a lifetime error ratio would stay poisoned by history.
 *
 * Objectives are registered up front (setObjective); records for an
 * unregistered (model, tenant) are ignored, so servers can call
 * record() unconditionally for every completed request.
 */

#ifndef CCSA_SERVE_METRICS_SLO_TRACKER_HH
#define CCSA_SERVE_METRICS_SLO_TRACKER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/metrics/metrics.hh"

namespace ccsa
{

/** Windowed latency-objective accounting per (model, tenant). */
class SloTracker
{
  public:
    struct Objective
    {
        /** A request is good iff its latency <= this, us. */
        std::size_t latencyThresholdUs = 0;
        /** Fraction of requests that must be good (e.g. 0.99 means
         * a 1% error budget). Clamped to [0, 1). */
        double targetGoodFraction = 0.99;
        /** Shape of the judgment window (defaults: 6 x 10s). */
        WindowedHistogram::Options window;

        Objective& withLatencyThresholdUs(std::size_t us)
        {
            latencyThresholdUs = us;
            return *this;
        }
        Objective& withTargetGoodFraction(double f)
        {
            targetGoodFraction = f;
            return *this;
        }
        Objective& withWindow(WindowedHistogram::Options w)
        {
            window = w;
            return *this;
        }
    };

    /** Good/bad split of the live window. */
    struct WindowCounts
    {
        std::uint64_t good = 0;
        std::uint64_t bad = 0;
    };

    /** @param registry where counters/gauges are published; must
     * outlive the tracker. */
    explicit SloTracker(MetricsRegistry& registry);

    SloTracker(const SloTracker&) = delete;
    SloTracker& operator=(const SloTracker&) = delete;

    /** Register (or replace) the objective for (model, tenant).
     * Replacing resets the window. */
    void setObjective(const std::string& model,
                      const std::string& tenant, Objective obj);

    /** @return true iff (model, tenant) has an objective. */
    bool hasObjective(const std::string& model,
                      const std::string& tenant) const;

    /** Classify one completed request observed at `now`; no-op for
     * an unregistered (model, tenant). */
    void record(const std::string& model, const std::string& tenant,
                std::size_t latencyUs,
                std::chrono::steady_clock::time_point now);

    /** Convenience: record at the registry clock's now(). */
    void record(const std::string& model, const std::string& tenant,
                std::size_t latencyUs);

    /** @return the live window's good/bad counts (zeros for an
     * unregistered pair or an aged-out window). */
    WindowCounts windowCounts(
        const std::string& model, const std::string& tenant,
        std::chrono::steady_clock::time_point now) const;

    /**
     * @return the error-budget burn rate of the live window:
     * (bad / (good + bad)) / (1 - targetGoodFraction). 0 for an
     * empty window or an unregistered pair.
     */
    double burnRate(const std::string& model,
                    const std::string& tenant,
                    std::chrono::steady_clock::time_point now) const;
    double burnRate(const std::string& model,
                    const std::string& tenant) const;

    /** Refresh every ccsa_slo_burn_rate gauge as of `now` — wire
     * this (at the registry clock) as a MetricsSampler probe. */
    void publishGauges(std::chrono::steady_clock::time_point now);
    void publishGauges();

  private:
    struct State
    {
        Objective obj;
        /** Windowed good/bad *event counts*: each record adds one
         * zero-valued sample, so window(now).count() is the number
         * of events in the live window and rotation/aging comes
         * for free from WindowedHistogram. */
        std::unique_ptr<WindowedHistogram> goodWindow;
        std::unique_ptr<WindowedHistogram> badWindow;
        Counter* goodTotal = nullptr;
        Counter* badTotal = nullptr;
        Gauge* burn = nullptr;
    };

    using Key = std::pair<std::string, std::string>;

    double burnRateLocked(
        const State& state,
        std::chrono::steady_clock::time_point now) const;

    MetricsRegistry& registry_;

    mutable std::mutex mutex_;
    std::map<Key, State> objectives_;
};

} // namespace ccsa

#endif // CCSA_SERVE_METRICS_SLO_TRACKER_HH
