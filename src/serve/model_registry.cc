#include "serve/model_registry.hh"

#include <algorithm>

namespace ccsa
{

std::shared_ptr<const ModelVersion>
ModelRegistry::publish(const std::string& name,
                       std::shared_ptr<ComparativePredictor> model)
{
    return publishImpl(name, std::move(model), /*minSequence=*/0);
}

std::shared_ptr<const ModelVersion>
ModelRegistry::publishImpl(const std::string& name,
                           std::shared_ptr<ComparativePredictor> model,
                           std::uint64_t minSequence)
{
    if (name.empty())
        fatal("ModelRegistry: cannot publish under an empty name");
    if (!model)
        fatal("ModelRegistry: cannot publish a null model");
    auto version = std::make_shared<ModelVersion>();
    version->name = name;
    version->id = allocateModelNamespace();
    version->model = std::move(model);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    std::uint64_t next =
        it == models_.end() ? 1 : it->second->sequence + 1;
    version->sequence = std::max(next, minSequence);
    // The swap: readers resolving from here on see the new version;
    // in-flight batches keep their old shared_ptr until they finish.
    models_[name] = version;
    if (defaultName_.empty())
        defaultName_ = name;
    return version;
}

Result<std::shared_ptr<const ModelVersion>>
ModelRegistry::load(const std::string& path)
{
    std::optional<nn::CheckpointManifest> manifest;
    try {
        manifest = nn::readCheckpointManifest(path);
    } catch (const FatalError& e) {
        return Status::ioError(e.what());
    }
    if (!manifest)
        return Status::invalidArgument(
            "ModelRegistry::load: " + path +
            " is a v1 checkpoint with no embedded name/config; use "
            "the (name, path, EncoderConfig) overload");
    return load(manifest->modelName, path);
}

Result<std::shared_ptr<const ModelVersion>>
ModelRegistry::load(const std::string& name, const std::string& path)
{
    Result<std::shared_ptr<ComparativePredictor>> model =
        ComparativePredictor::fromCheckpoint(path);
    if (!model.isOk())
        return model.status();
    // Seed the per-name sequence with the checkpoint's own version:
    // a registry that restarts and redeploys a sequence-5 checkpoint
    // must not stamp its next save as version 1.
    std::uint64_t floor = 0;
    try {
        auto manifest = nn::readCheckpointManifest(path);
        if (manifest)
            floor = manifest->version;
    } catch (const FatalError&) {
        // fromCheckpoint already read it once; treat a race on the
        // file as "no floor" rather than failing the deploy.
    }
    return publishImpl(name, model.take(), floor);
}

Result<std::shared_ptr<const ModelVersion>>
ModelRegistry::load(const std::string& name, const std::string& path,
                    const EncoderConfig& cfg)
{
    auto model =
        std::make_shared<ComparativePredictor>(cfg, /*seed=*/1);
    Status loaded = model->load(path);
    if (!loaded.isOk())
        return loaded;
    return publish(name, std::move(model));
}

std::shared_ptr<const ModelVersion>
ModelRegistry::resolve(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string& key = name.empty() ? defaultName_ : name;
    if (key.empty())
        return nullptr;
    auto it = models_.find(key);
    return it == models_.end() ? nullptr : it->second;
}

Status
ModelRegistry::save(const std::string& name,
                    const std::string& path) const
{
    std::shared_ptr<const ModelVersion> version = resolve(name);
    if (!version)
        return Status::invalidArgument(
            "ModelRegistry::save: unknown model '" + name + "'");
    return version->model->save(path, version->name,
                                version->sequence);
}

Status
ModelRegistry::setDefault(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (models_.find(name) == models_.end())
        return Status::invalidArgument(
            "ModelRegistry::setDefault: unknown model '" + name +
            "'");
    defaultName_ = name;
    return Status::ok();
}

std::string
ModelRegistry::defaultName() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return defaultName_;
}

bool
ModelRegistry::remove(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (models_.erase(name) == 0)
        return false;
    if (defaultName_ == name) {
        defaultName_.clear();
        // Keep "" resolvable while models remain: fall back to the
        // lexicographically first name (deterministic).
        for (const auto& [key, version] : models_)
            if (defaultName_.empty() || key < defaultName_)
                defaultName_ = key;
    }
    return true;
}

bool
ModelRegistry::contains(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.find(name) != models_.end();
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::vector<std::string> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(models_.size());
        for (const auto& [name, version] : models_)
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.size();
}

} // namespace ccsa
