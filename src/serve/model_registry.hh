/**
 * @file
 * ccsa::ModelRegistry — multi-model serving with hot-swap. The
 * paper's deployment story is continuous learning: models are
 * retrained per problem family and redeployed without stopping the
 * ranking service. The registry is the seam that makes that real:
 * it maps a model NAME to an atomically-swappable, immutable
 * ModelVersion, and every serving layer (Engine, AsyncServer,
 * ShardedServer) resolves names through it.
 *
 * Hot-swap is RCU-style: publish()/load() build the new version off
 * to the side, then swap the name's shared_ptr under the registry
 * mutex. Readers never block writers and vice versa — a resolve()
 * taken before the swap keeps serving the OLD version's snapshot
 * (requests admitted before a swap complete on the version they were
 * admitted under), and the old version retires automatically when
 * the last in-flight batch drops its reference. Because every
 * version carries a process-unique cache-namespace id, the swapped
 * version's latents start cold while the retired version's entries
 * simply age out of the shared encoding cache; no invalidation storm,
 * no cross-version reads.
 */

#ifndef CCSA_SERVE_MODEL_REGISTRY_HH
#define CCSA_SERVE_MODEL_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.hh"
#include "model/predictor.hh"
#include "serve/encoding_cache.hh"

namespace ccsa
{

/**
 * One immutable published version of a model: the deployable unit a
 * serving batch holds for its whole lifetime. Weights must not be
 * mutated once published — republish instead (that is what makes the
 * cache namespace sound).
 */
struct ModelVersion
{
    /** Registry name ("model" for registry-less engines). */
    std::string name;
    /** Process-unique cache-namespace id (allocateModelNamespace). */
    std::uint64_t id = 0;
    /** Per-name publish sequence, monotonically increasing from 1 —
     * the "version" a v2 checkpoint manifest records. */
    std::uint64_t sequence = 0;
    std::shared_ptr<ComparativePredictor> model;
};

/** Name -> hot-swappable ModelVersion map; thread-safe. */
class ModelRegistry
{
  public:
    ModelRegistry() = default;

    ModelRegistry(const ModelRegistry&) = delete;
    ModelRegistry& operator=(const ModelRegistry&) = delete;

    /**
     * Publish a model under a name, hot-swapping any existing
     * version: in-flight batches finish on their snapshot; new
     * resolves see this version. The first published name becomes
     * the registry default. @return the published version.
     */
    std::shared_ptr<const ModelVersion>
    publish(const std::string& name,
            std::shared_ptr<ComparativePredictor> model);

    /**
     * Load a self-describing v2 checkpoint and publish it under the
     * manifest's embedded model name. The model architecture comes
     * from the manifest — this is the zero-config deployment path.
     */
    Result<std::shared_ptr<const ModelVersion>>
    load(const std::string& path);

    /** Load a v2 checkpoint but publish under an explicit name. */
    Result<std::shared_ptr<const ModelVersion>>
    load(const std::string& name, const std::string& path);

    /**
     * Load a checkpoint whose architecture the caller supplies —
     * the only way to deploy a LEGACY v1 file (no manifest). Also
     * accepts v2 files (the manifest config must then match cfg).
     */
    Result<std::shared_ptr<const ModelVersion>>
    load(const std::string& name, const std::string& path,
         const EncoderConfig& cfg);

    /**
     * Resolve a name to its current version. The empty name resolves
     * the default model. @return nullptr when the name (or, for "",
     * the whole registry) is unknown/empty.
     */
    std::shared_ptr<const ModelVersion>
    resolve(const std::string& name) const;

    /**
     * Save a registered model as a self-describing v2 checkpoint;
     * the manifest records the name and the current publish
     * sequence.
     */
    Status save(const std::string& name,
                const std::string& path) const;

    /** Route the empty request name to a different model. */
    Status setDefault(const std::string& name);

    /** @return the default model's name ("" while empty). */
    std::string defaultName() const;

    /** Drop a name. Snapshots held by in-flight batches survive.
     * @return false when the name was not registered. */
    bool remove(const std::string& name);

    bool contains(const std::string& name) const;

    /** Registered names, sorted (stable iteration for stats). */
    std::vector<std::string> names() const;

    std::size_t size() const;

  private:
    /** publish() with a sequence floor: the load() paths pass the
     * checkpoint manifest's version so per-name sequences stay
     * monotonically increasing ACROSS process restarts, not just
     * within one registry's lifetime. */
    std::shared_ptr<const ModelVersion>
    publishImpl(const std::string& name,
                std::shared_ptr<ComparativePredictor> model,
                std::uint64_t minSequence);

    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const ModelVersion>> models_;
    std::string defaultName_;
};

} // namespace ccsa

#endif // CCSA_SERVE_MODEL_REGISTRY_HH
