#include "serve/server_stats.hh"

namespace ccsa
{

ServerStats
mergeServerStats(const std::vector<ServerStats>& shards)
{
    ServerStats out;
    for (const ServerStats& s : shards) {
        out.queueDepth += s.queueDepth;
        out.queueCapacity += s.queueCapacity;
        out.requestsSubmitted += s.requestsSubmitted;
        out.requestsRejected += s.requestsRejected;
        out.requestsCompleted += s.requestsCompleted;
        out.requestsFailed += s.requestsFailed;
        out.batches += s.batches;
        out.pairsServed += s.pairsServed;
        out.batchSizes.merge(s.batchSizes);
        out.latencyUs.merge(s.latencyUs);
        out.engine.cacheHits += s.engine.cacheHits;
        out.engine.cacheMisses += s.engine.cacheMisses;
        out.engine.cacheEvictions += s.engine.cacheEvictions;
        out.engine.cacheSize += s.engine.cacheSize;
        out.engine.pairsServed += s.engine.pairsServed;
        out.engine.treesEncoded += s.engine.treesEncoded;
    }
    fillLatencyPercentiles(out);
    return out;
}

void
fillLatencyPercentiles(ServerStats& stats)
{
    if (stats.latencyUs.count() == 0)
        return;
    stats.latencyP50Ms = static_cast<double>(
                             stats.latencyUs.quantileUpperBound(0.5)) /
        1000.0;
    stats.latencyP99Ms = static_cast<double>(
                             stats.latencyUs.quantileUpperBound(0.99)) /
        1000.0;
    stats.latencyMeanMs = stats.latencyUs.meanValue() / 1000.0;
    stats.latencyMaxMs =
        static_cast<double>(stats.latencyUs.max()) / 1000.0;
}

} // namespace ccsa
