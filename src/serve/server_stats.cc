#include "serve/server_stats.hh"

#include <algorithm>
#include <map>

namespace ccsa
{

ServerStats
mergeServerStats(const std::vector<ServerStats>& shards)
{
    ServerStats out;
    std::map<std::string, TenantStats> tenants;
    for (const ServerStats& s : shards) {
        out.queueDepth += s.queueDepth;
        out.queueCapacity += s.queueCapacity;
        out.requestsSubmitted += s.requestsSubmitted;
        out.requestsRejected += s.requestsRejected;
        out.requestsRejectedShed += s.requestsRejectedShed;
        out.requestsRejectedShutdown += s.requestsRejectedShutdown;
        out.requestsRejectedQuota += s.requestsRejectedQuota;
        out.requestsCompleted += s.requestsCompleted;
        out.requestsFailed += s.requestsFailed;
        out.batches += s.batches;
        out.pairsServed += s.pairsServed;
        out.batchSizes.merge(s.batchSizes);
        out.latencyUs.merge(s.latencyUs);
        out.engine.cacheHits += s.engine.cacheHits;
        out.engine.cacheMisses += s.engine.cacheMisses;
        out.engine.cacheEvictions += s.engine.cacheEvictions;
        out.engine.cacheSize += s.engine.cacheSize;
        out.engine.pairsServed += s.engine.pairsServed;
        out.engine.treesEncoded += s.engine.treesEncoded;
        for (const TenantStats& t : s.tenants) {
            TenantStats& row = tenants[t.tenant];
            row.tenant = t.tenant;
            row.submitted += t.submitted;
            row.completed += t.completed;
            row.failed += t.failed;
            row.rejectedQuota += t.rejectedQuota;
            row.latencyUs.merge(t.latencyUs);
        }
    }
    fillLatencyPercentiles(out);
    out.tenants.reserve(tenants.size());
    for (auto& [name, row] : tenants) {
        fillTenantPercentiles(row);
        out.tenants.push_back(std::move(row));
    }
    return out;
}

void
fillLatencyPercentiles(ServerStats& stats)
{
    if (stats.latencyUs.count() == 0)
        return;
    stats.latencyP50Ms = static_cast<double>(
                             stats.latencyUs.quantileUpperBound(0.5)) /
        1000.0;
    stats.latencyP99Ms = static_cast<double>(
                             stats.latencyUs.quantileUpperBound(0.99)) /
        1000.0;
    stats.latencyMeanMs = stats.latencyUs.meanValue() / 1000.0;
    stats.latencyMaxMs =
        static_cast<double>(stats.latencyUs.max()) / 1000.0;
}

void
fillTenantPercentiles(TenantStats& row)
{
    if (row.latencyUs.count() == 0)
        return;
    row.latencyP50Ms = static_cast<double>(
                           row.latencyUs.quantileUpperBound(0.5)) /
        1000.0;
    row.latencyP99Ms = static_cast<double>(
                           row.latencyUs.quantileUpperBound(0.99)) /
        1000.0;
}

} // namespace ccsa
