#include "serve/server_stats.hh"

#include <algorithm>
#include <map>

namespace ccsa
{

ServerStats
mergeServerStats(const std::vector<ServerStats>& shards)
{
    ServerStats out;
    std::map<std::string, TenantStats> tenants;
    for (const ServerStats& s : shards) {
        out.queueDepth += s.queueDepth;
        out.queueCapacity += s.queueCapacity;
        out.requestsSubmitted += s.requestsSubmitted;
        out.requestsRejected += s.requestsRejected;
        out.requestsRejectedShed += s.requestsRejectedShed;
        out.requestsRejectedShutdown += s.requestsRejectedShutdown;
        out.requestsRejectedQuota += s.requestsRejectedQuota;
        out.requestsRejectedDeadline += s.requestsRejectedDeadline;
        out.requestsCompleted += s.requestsCompleted;
        out.requestsFailed += s.requestsFailed;
        out.batches += s.batches;
        out.pairsServed += s.pairsServed;
        out.batchSizes.merge(s.batchSizes);
        out.latencyUs.merge(s.latencyUs);
        out.engine.cacheHits += s.engine.cacheHits;
        out.engine.cacheMisses += s.engine.cacheMisses;
        out.engine.cacheEvictions += s.engine.cacheEvictions;
        out.engine.cacheSize += s.engine.cacheSize;
        out.engine.pairsServed += s.engine.pairsServed;
        out.engine.treesEncoded += s.engine.treesEncoded;
        for (const TenantStats& t : s.tenants) {
            TenantStats& row = tenants[t.tenant];
            row.tenant = t.tenant;
            row.submitted += t.submitted;
            row.completed += t.completed;
            row.failed += t.failed;
            row.rejectedQuota += t.rejectedQuota;
            row.rejectedDeadline += t.rejectedDeadline;
            row.latencyUs.merge(t.latencyUs);
        }
    }
    fillLatencyPercentiles(out);
    out.tenants.reserve(tenants.size());
    for (auto& [name, row] : tenants) {
        fillTenantPercentiles(row);
        out.tenants.push_back(std::move(row));
    }
    return out;
}

void
fillLatencyPercentiles(ServerStats& stats)
{
    if (stats.latencyUs.count() == 0)
        return;
    stats.latencyP50Ms = static_cast<double>(
                             stats.latencyUs.quantileUpperBound(0.5)) /
        1000.0;
    stats.latencyP99Ms = static_cast<double>(
                             stats.latencyUs.quantileUpperBound(0.99)) /
        1000.0;
    stats.latencyMeanMs = stats.latencyUs.meanValue() / 1000.0;
    stats.latencyMaxMs =
        static_cast<double>(stats.latencyUs.max()) / 1000.0;
}

void
fillTenantPercentiles(TenantStats& row)
{
    if (row.latencyUs.count() == 0)
        return;
    row.latencyP50Ms = static_cast<double>(
                           row.latencyUs.quantileUpperBound(0.5)) /
        1000.0;
    row.latencyP99Ms = static_cast<double>(
                           row.latencyUs.quantileUpperBound(0.99)) /
        1000.0;
}

void
ServerMetrics::init(MetricsRegistry& registry,
                    const std::string& server)
{
    const std::string reqHelp =
        "Requests by submission outcome (submitted = accepted into "
        "the queue; completed/failed = future fulfilled; "
        "rejected_* = refused at the door).";
    auto requests = [&](const char* outcome) {
        return &registry.counter(
            "ccsa_requests_total",
            {{"server", server}, {"outcome", outcome}}, reqHelp);
    };
    submitted = requests("submitted");
    completed = requests("completed");
    failed = requests("failed");
    rejectedShed = requests("rejected_shed");
    rejectedShutdown = requests("rejected_shutdown");
    rejectedQuota = requests("rejected_quota");
    rejectedDeadline = requests("deadline");
    batches = &registry.counter(
        "ccsa_batches_total", {{"server", server}},
        "Coalesced engine batches executed.");
    batchPairs = &registry.counter(
        "ccsa_batch_pairs_total", {{"server", server}},
        "Pairs scored across all coalesced batches.");
}

WindowedHistogram&
serverLatencyHistogram(MetricsRegistry& registry,
                       const std::string& server,
                       const std::string& model,
                       const std::string& tenant, Priority priority,
                       const WindowedHistogram::Options& windowOpts)
{
    return registry.windowedHistogram(
        "ccsa_request_latency_us",
        {{"server", server},
         {"model", model},
         {"tenant", tenant},
         {"priority", priorityName(priority)}},
        windowOpts,
        "End-to-end request latency (enqueue -> answer), us. The "
        "_window summary covers only the configured rolling "
        "window; the histogram is lifetime.");
}

void
publishServerGauges(MetricsRegistry& registry,
                    const std::string& server,
                    std::size_t queueDepth,
                    std::size_t queueCapacity,
                    const std::vector<ModelCacheStats>& models)
{
    MetricLabels serverLabel{{"server", server}};
    registry
        .gauge("ccsa_queue_depth", serverLabel,
               "Requests currently waiting for a batcher.")
        .set(static_cast<double>(queueDepth));
    registry
        .gauge("ccsa_queue_capacity", serverLabel,
               "Configured request-queue capacity.")
        .set(static_cast<double>(queueCapacity));
    registry
        .gauge("ccsa_models_live", serverLabel,
               "Models currently resolvable through the server's "
               "engine.")
        .set(static_cast<double>(models.size()));
    for (const ModelCacheStats& row : models) {
        MetricLabels labels{{"server", server},
                            {"model", row.name}};
        registry
            .counter("ccsa_cache_hits_total", labels,
                     "Encoding-cache hits per model namespace.")
            .increaseTo(row.cache.hits);
        registry
            .counter("ccsa_cache_misses_total", labels,
                     "Encoding-cache misses per model namespace.")
            .increaseTo(row.cache.misses);
        registry
            .counter("ccsa_cache_evictions_total", labels,
                     "Encoding-cache evictions attributed to the "
                     "victim's model namespace.")
            .increaseTo(row.cache.evictions);
        registry
            .gauge("ccsa_cache_residents", labels,
                   "Resident encoding-cache entries per model "
                   "namespace.")
            .set(static_cast<double>(row.cache.residents));
        registry
            .gauge("ccsa_cache_resident_bytes", labels,
                   "Payload bytes of resident latents per model "
                   "namespace.")
            .set(static_cast<double>(row.cache.residentBytes));
    }
}

} // namespace ccsa
