/**
 * @file
 * ServerStats — a point-in-time snapshot of an AsyncServer's
 * observable state: queue pressure, request volume, dynamic-batching
 * effectiveness (batch count + batch-size histogram), end-to-end
 * request latency percentiles, and the wrapped Engine's counters
 * (including the encoding cache's hit/miss/eviction counts, so cache
 * efficacy is observable rather than inferred from benchmarks).
 */

#ifndef CCSA_SERVE_SERVER_STATS_HH
#define CCSA_SERVE_SERVER_STATS_HH

#include <cstddef>
#include <cstdint>

#include "base/stats.hh"
#include "serve/engine.hh"

namespace ccsa
{

/** Snapshot of AsyncServer counters; see AsyncServer::stats(). */
struct ServerStats
{
    // ------------------------------------------------ queue pressure
    /** Requests currently waiting for the batcher. */
    std::size_t queueDepth = 0;
    /** Configured request-queue capacity (backpressure bound). */
    std::size_t queueCapacity = 0;

    // ------------------------------------------------ request volume
    /** Requests accepted into the queue. */
    std::uint64_t requestsSubmitted = 0;
    /** Requests refused: queue full (trySubmit) or server shut down. */
    std::uint64_t requestsRejected = 0;
    /** Requests whose future was fulfilled with a value. */
    std::uint64_t requestsCompleted = 0;
    /** Requests whose future was fulfilled with an error Status. */
    std::uint64_t requestsFailed = 0;

    // ---------------------------------------------- dynamic batching
    /** compareMany ticks executed by the batcher. */
    std::uint64_t batches = 0;
    /** Total pairs scored across all batches. */
    std::uint64_t pairsServed = 0;
    /** Distribution of pairs-per-batch (coalescing effectiveness). */
    Histogram batchSizes;

    // ------------------------------- end-to-end latency (submit done)
    /** Completed-request latency percentiles in milliseconds, over a
     * sliding window of recent requests; 0 until a request finishes. */
    double latencyP50Ms = 0.0;
    double latencyP99Ms = 0.0;
    double latencyMeanMs = 0.0;
    double latencyMaxMs = 0.0;

    // ----------------------------------------------- wrapped engine
    /** Engine counters: encoding-cache hits / misses / evictions /
     * size plus pairsServed and treesEncoded. */
    Engine::Stats engine;
};

} // namespace ccsa

#endif // CCSA_SERVE_SERVER_STATS_HH
