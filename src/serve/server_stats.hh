/**
 * @file
 * ServerStats — a point-in-time snapshot of an AsyncServer's
 * observable state: queue pressure, request volume, dynamic-batching
 * effectiveness (batch count + batch-size histogram), end-to-end
 * request latency percentiles, and the wrapped Engine's counters
 * (including the encoding cache's hit/miss/eviction counts, so cache
 * efficacy is observable rather than inferred from benchmarks).
 */

#ifndef CCSA_SERVE_SERVER_STATS_HH
#define CCSA_SERVE_SERVER_STATS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/engine.hh"
#include "serve/metrics/metrics.hh"

namespace ccsa
{

/** Clamp a request duration to the non-negative microsecond sample
 * ServerStats::latencyUs records — shared by every server flavour so
 * their latency populations stay comparable. */
inline std::size_t
latencySampleUs(std::chrono::steady_clock::duration d)
{
    auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(d)
            .count();
    return us < 0 ? 0 : static_cast<std::size_t>(us);
}

/** One tenant's serving counters (see ServerStats::tenants). */
struct TenantStats
{
    /** Tenant name; "" is the default tenant legacy callers use. */
    std::string tenant;
    /** Requests this tenant had accepted into the queue. */
    std::uint64_t submitted = 0;
    /** Requests answered with a value. */
    std::uint64_t completed = 0;
    /** Requests answered with an error Status. */
    std::uint64_t failed = 0;
    /** Requests refused at the door by the AdmissionController
     * (token bucket dry) — the noisy-neighbor signal. */
    std::uint64_t rejectedQuota = 0;
    /** Requests answered DeadlineExceeded (counted submitted, like
     * ServerStats::requestsRejectedDeadline). */
    std::uint64_t rejectedDeadline = 0;
    /** End-to-end latency distribution (us) of this tenant's served
     * units; merges losslessly across shards like
     * ServerStats::latencyUs. */
    Histogram latencyUs;
    /** Derived from latencyUs (fillLatencyPercentiles semantics). */
    double latencyP50Ms = 0.0;
    double latencyP99Ms = 0.0;
};

/** Snapshot of AsyncServer counters; see AsyncServer::stats(). */
struct ServerStats
{
    // ------------------------------------------------ queue pressure
    /** Requests currently waiting for the batcher. */
    std::size_t queueDepth = 0;
    /** Configured request-queue capacity (backpressure bound). */
    std::size_t queueCapacity = 0;

    // ------------------------------------------------ request volume
    /** Requests accepted into the queue. */
    std::uint64_t requestsSubmitted = 0;
    /** Requests refused, for any reason: always the sum of the four
     * attributed counters below (kept so pre-admission dashboards
     * keep reading one number). */
    std::uint64_t requestsRejected = 0;
    /** ...because the queue was at capacity (trySubmit load-shed). */
    std::uint64_t requestsRejectedShed = 0;
    /** ...because the server was shut down. */
    std::uint64_t requestsRejectedShutdown = 0;
    /** ...because the tenant's admission quota was exhausted. */
    std::uint64_t requestsRejectedQuota = 0;
    /** ...because the request's SubmitOptions deadline expired
     * before (or while) it was served: it completed with
     * DeadlineExceeded and, unlike the three rejections above, WAS
     * counted submitted — so requestsSubmitted = requestsCompleted +
     * requestsFailed + requestsRejectedDeadline once drained. */
    std::uint64_t requestsRejectedDeadline = 0;
    /** Requests whose future was fulfilled with a value. */
    std::uint64_t requestsCompleted = 0;
    /** Requests whose future was fulfilled with an error Status. */
    std::uint64_t requestsFailed = 0;

    // ---------------------------------------------- dynamic batching
    /** compareMany ticks executed by the batcher. */
    std::uint64_t batches = 0;
    /** Total pairs scored across all batches. */
    std::uint64_t pairsServed = 0;
    /** Distribution of pairs-per-batch (coalescing effectiveness). */
    Histogram batchSizes;

    // ------------------------------- end-to-end latency (submit done)
    /** Latency percentiles in milliseconds; 0 until a request
     * finishes. Always derived from the latencyUs histogram below
     * (fillLatencyPercentiles) — single batcher, per-shard row, and
     * merged aggregate alike — so the fields mean the same thing
     * wherever they appear; resolution is one power-of-two bucket.
     * Aggregators must merge histograms, never these fields
     * (quantiles of quantiles would be wrong — see
     * mergeServerStats). */
    double latencyP50Ms = 0.0;
    double latencyP99Ms = 0.0;
    double latencyMeanMs = 0.0;
    double latencyMaxMs = 0.0;
    /** Latency distribution in MICROseconds of every unit the
     * batcher served: one sample per request on a single-batcher
     * server, one sample per per-shard SLICE on a sharded one (a
     * split request contributes a sample per slice, each measuring
     * submit -> slice completion; the caller-observed latency is the
     * max of its slices, so count() can exceed requestsCompleted and
     * split-request samples bound the caller latency from below).
     * Unlike the percentile fields above, histograms merge
     * losslessly across batchers/shards, so this is the field an
     * aggregator combines. */
    Histogram latencyUs;

    // ----------------------------------------------- wrapped engine
    /** Engine counters: encoding-cache hits / misses / evictions /
     * size plus pairsServed and treesEncoded. */
    Engine::Stats engine;

    // ------------------------------------------------- per model
    /** One row per CURRENTLY resolvable model: that version's cache
     * namespace counters (hits/misses/evictions/residents). Filled
     * by the server's stats() from the engine's view of its cache;
     * retired hot-swapped versions are not listed. mergeServerStats
     * leaves this empty — per-shard rows would all describe the same
     * shared cache, so the aggregator sets it once instead of
     * summing duplicates. */
    std::vector<ModelCacheStats> models;

    // ------------------------------------------------- per tenant
    /** One row per tenant that ever submitted (or was quota-rejected)
     * — sorted by tenant name so snapshots diff cleanly. Empty until
     * the first request when no AdmissionController is attached and
     * every caller uses the default tenant "". mergeServerStats
     * merges rows by name (counters sum, latency histograms merge,
     * percentiles recomputed from the merged histogram). */
    std::vector<TenantStats> tenants;
};

/**
 * Combine per-batcher (per-shard) snapshots into one fleet view.
 * Counters and engine volumes sum; batchSizes and latencyUs merge
 * bucket-wise; the latency percentiles of the result are recomputed
 * from the MERGED latencyUs histogram. Averaging the shards'
 * p50/p99 fields would be statistically wrong — a shard serving 1%
 * of traffic would pull the "p99" as hard as one serving 99% — so
 * the merged histogram, which preserves every shard's sample mass,
 * is the only field consulted (tests/test_stats.cc pins the
 * difference).
 *
 * Engine cache counters are summed too; when every snapshot reports
 * the SAME shared cache (ShardedServer), the caller must overwrite
 * `.engine`'s cache fields afterwards instead of trusting the sum.
 */
ServerStats mergeServerStats(const std::vector<ServerStats>& shards);

/** Derive the ms latency-percentile fields of a snapshot from its
 * own latencyUs histogram (no-op while the histogram is empty).
 * Shared by mergeServerStats and per-shard reporting so both derive
 * percentiles identically. */
void fillLatencyPercentiles(ServerStats& stats);

/** Same derivation for one tenant row's p50/p99 from its own
 * latencyUs histogram (no-op while empty). */
void fillTenantPercentiles(TenantStats& row);

/**
 * Registry-owned inline instruments shared by both server flavours
 * (AsyncServer and ShardedServer label them {server="async"} /
 * {server="sharded"}). Fetched once at server construction so the
 * hot path updates atomics without a registry lookup. Two servers
 * of the same flavour sharing one registry share these counters —
 * the metrics plane is process-wide by design.
 */
struct ServerMetrics
{
    Counter* submitted = nullptr;
    Counter* completed = nullptr;
    Counter* failed = nullptr;
    Counter* rejectedShed = nullptr;
    Counter* rejectedShutdown = nullptr;
    Counter* rejectedQuota = nullptr;
    /** ccsa_requests_total{outcome="deadline"}. */
    Counter* rejectedDeadline = nullptr;
    Counter* batches = nullptr;
    Counter* batchPairs = nullptr;

    bool enabled() const { return submitted != nullptr; }

    /** Fetch every instrument from `registry` under the
     * {server=`server`} label (+ outcome labels on the request
     * counters). */
    void init(MetricsRegistry& registry, const std::string& server);
};

/**
 * @return the windowed end-to-end latency instrument for one
 * (server, model, tenant, priority) — the family is
 * ccsa_request_latency_us; its window shape is fixed by the first
 * lookup in a process (MetricsRegistry family semantics).
 */
WindowedHistogram&
serverLatencyHistogram(MetricsRegistry& registry,
                       const std::string& server,
                       const std::string& model,
                       const std::string& tenant, Priority priority,
                       const WindowedHistogram::Options& windowOpts);

/**
 * Publish the pull-style level metrics of one server: queue depth /
 * capacity gauges, live-model count, and per-model cache
 * hit/miss/eviction counters (monotone, via Counter::increaseTo)
 * plus resident-entries / resident-bytes gauges. Both servers'
 * sampleMetrics() forward here; wire sampleMetrics as a
 * MetricsSampler probe.
 */
void publishServerGauges(MetricsRegistry& registry,
                         const std::string& server,
                         std::size_t queueDepth,
                         std::size_t queueCapacity,
                         const std::vector<ModelCacheStats>& models);

} // namespace ccsa

#endif // CCSA_SERVE_SERVER_STATS_HH
