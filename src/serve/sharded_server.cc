#include "serve/sharded_server.hh"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/coalesce.hh"
#include "serve/metrics/slo_tracker.hh"

namespace ccsa
{

namespace
{

ShardedServer::Options
normalized(ShardedServer::Options opts)
{
    if (opts.numShards == 0)
        opts.numShards = 1;
    if (opts.maxBatchSize == 0)
        opts.maxBatchSize = 1;
    if (opts.maxBatchDelay.count() < 0)
        opts.maxBatchDelay = std::chrono::microseconds(0);
    return opts;
}

} // namespace

ShardedServer::ShardedServer(Engine::Options engineOpts)
    : ShardedServer(std::move(engineOpts), Options())
{
}

ShardedServer::ShardedServer(Engine::Options engineOpts, Options opts)
    : ShardedServer(std::make_shared<ComparativePredictor>(
                        engineOpts.encoder, engineOpts.seed),
                    engineOpts, opts)
{
}

ShardedServer::ShardedServer(
    std::shared_ptr<ComparativePredictor> model,
    Engine::Options engineOpts, Options opts)
    : opts_(normalized(opts)),
      cache_(ShardedEncodingCache::makeShared(
          opts_.numShards, engineOpts.cacheCapacity,
          engineOpts.latentPrecision)),
      queue_(opts_.queueCapacity)
{
    engineOpts.threads = opts_.threadsPerShard;
    // Wrap the model ONCE: every worker engine shares this version
    // and therefore its cache namespace — a latent encoded by any
    // worker serves all of them.
    auto version = std::make_shared<ModelVersion>();
    version->name = "model";
    version->id = cache_->namespaceFor(model);
    version->sequence = 1;
    version->model = std::move(model);
    workers_.reserve(opts_.numShards);
    for (std::size_t s = 0; s < opts_.numShards; ++s) {
        auto worker = std::make_unique<Worker>();
        worker->engine =
            std::make_unique<Engine>(version, engineOpts, cache_);
        workers_.push_back(std::move(worker));
    }
    initMetrics();
    if (!opts_.startPaused)
        start();
}

ShardedServer::ShardedServer(std::shared_ptr<ModelRegistry> registry,
                             Engine::Options engineOpts, Options opts)
    : opts_(normalized(opts)),
      cache_(ShardedEncodingCache::makeShared(
          opts_.numShards, engineOpts.cacheCapacity,
          engineOpts.latentPrecision)),
      queue_(opts_.queueCapacity)
{
    engineOpts.threads = opts_.threadsPerShard;
    workers_.reserve(opts_.numShards);
    for (std::size_t s = 0; s < opts_.numShards; ++s) {
        auto worker = std::make_unique<Worker>();
        worker->engine =
            std::make_unique<Engine>(registry, engineOpts, cache_);
        workers_.push_back(std::move(worker));
    }
    initMetrics();
    if (!opts_.startPaused)
        start();
}

void
ShardedServer::initMetrics()
{
    if (opts_.metrics != nullptr)
        metrics_.init(*opts_.metrics, "sharded");
}

ShardedServer::~ShardedServer()
{
    shutdown();
}

std::chrono::microseconds
ShardedServer::batchClassDelay() const
{
    if (opts_.maxBatchClassDelay.count() > 0)
        return opts_.maxBatchClassDelay;
    return opts_.maxBatchDelay * 8;
}

void
ShardedServer::startWorkersLocked()
{
    for (std::size_t s = 0; s < workers_.size(); ++s)
        workers_[s]->thread =
            std::thread([this, s] { workerLoop(s); });
    started_ = true;
}

void
ShardedServer::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (shutdown_ || started_)
        return;
    startWorkersLocked();
}

void
ShardedServer::shutdown()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (shutdown_)
        return;
    // No new requests; already-queued ones stay poppable.
    queue_.close();
    // A paused server still owes answers for everything it
    // accepted: run the workers now so the closed queue drains.
    if (!started_)
        startWorkersLocked();
    for (auto& worker : workers_)
        worker->thread.join();
    shutdown_ = true;
}

bool
ShardedServer::isShutdown() const
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    return shutdown_;
}

Engine&
ShardedServer::shardEngine(std::size_t s)
{
    if (s >= workers_.size())
        fatal("ShardedServer: shard index out of range");
    return *workers_[s]->engine;
}

std::vector<ShardedServer::Request>
ShardedServer::splitRequest(
    std::vector<Engine::PairRequest> pairs,
    std::shared_ptr<const ModelVersion> version,
    std::function<void(Result<std::vector<double>>)> complete,
    const SubmitOptions& submitOpts,
    std::chrono::steady_clock::time_point submitStart)
{
    auto now = std::chrono::steady_clock::now();
    auto stamp = [&](Request& request) {
        request.priority = submitOpts.priority;
        request.tenant = submitOpts.tenant;
        if (opts_.trace != nullptr)
            request.traceId = opts_.trace->nextChain();
        request.submitted = submitStart;
        request.enqueued = now;
        if (submitOpts.deadline.count() > 0)
            request.deadline = submitStart + submitOpts.deadline;
    };
    std::vector<Request> requests;

    // Group pair indices by the cache partition owning each first
    // tree. Routing is purely an optimisation (slices land where
    // their first latents live, and a big request spreads across
    // workers); correctness never depends on it. The engine will
    // re-digest these trees for its cache lookup, but a digest is
    // one O(nodes) walk against the O(nodes * dim^2) encode it
    // routes, and running it here keeps routing on the producer's
    // thread instead of adding work to the worker critical path.
    std::vector<std::vector<std::size_t>> groups(workers_.size());
    if (workers_.size() > 1 && pairs.size() > 1) {
        // Memoise by tree identity: tournament requests repeat each
        // candidate as .first many times, and one digest walk per
        // DISTINCT tree is enough to route them all.
        std::unordered_map<const Ast*, std::size_t> shardOfTree;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            auto [it, inserted] =
                shardOfTree.emplace(pairs[i].first, 0);
            if (inserted)
                it->second =
                    cache_->shardOf(digestAst(*pairs[i].first));
            groups[it->second].push_back(i);
        }
    }
    std::size_t nonEmpty = 0;
    for (const auto& g : groups)
        nonEmpty += g.empty() ? 0 : 1;

    if (nonEmpty <= 1) {
        // Whole request fits one worker: no join needed.
        Request request;
        request.pairs = std::move(pairs);
        request.version = std::move(version);
        request.complete = std::move(complete);
        stamp(request);
        requests.push_back(std::move(request));
        return requests;
    }

    auto join = std::make_shared<JoinState>();
    join->values.resize(pairs.size(), 0.0);
    join->remaining = nonEmpty;
    join->complete = std::move(complete);

    for (const std::vector<std::size_t>& slots : groups) {
        if (slots.empty())
            continue;
        Request request;
        request.pairs.reserve(slots.size());
        for (std::size_t i : slots)
            request.pairs.push_back(pairs[i]);
        request.version = version;
        stamp(request);
        request.complete =
            [join, slots](Result<std::vector<double>> r) {
                bool done = false;
                {
                    std::lock_guard<std::mutex> lock(join->mutex);
                    if (r.isOk()) {
                        for (std::size_t k = 0; k < slots.size();
                             ++k)
                            join->values[slots[k]] = r.value()[k];
                    } else if (join->error.isOk()) {
                        join->error = r.status();
                    }
                    done = --join->remaining == 0;
                }
                // Last slice completes the caller. No lock held:
                // nobody else can touch the join once remaining
                // hit zero.
                if (done) {
                    if (join->error.isOk())
                        join->complete(std::move(join->values));
                    else
                        join->complete(join->error);
                }
            };
        requests.push_back(std::move(request));
    }
    return requests;
}

bool
ShardedServer::submitCore(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs,
    std::function<void(Result<std::vector<double>>)> complete,
    bool blocking)
{
    auto submitStart = std::chrono::steady_clock::now();

    // Request-level counters update BEFORE the caller's promise
    // resolves, so a returned future never observes lagging stats.
    // A request refused at the door (queue closed) is counted as
    // rejected ONLY — matching AsyncServer, where completed/failed/
    // rejected are disjoint outcomes — so the Closed paths below
    // raise this tag before resolving the slices.
    auto rejectedTag = std::make_shared<std::atomic<bool>>(false);
    auto counted =
        [this, rejectedTag, tenant = submitOpts.tenant,
         complete = std::move(complete)](
            Result<std::vector<double>> r) {
            if (!rejectedTag->load()) {
                // Deadline expiries are attributed rejections, not
                // failures: the request was accepted but its answer
                // came due before an engine ran it.
                bool deadline = !r.isOk() &&
                    r.status().code() ==
                        StatusCode::DeadlineExceeded;
                if (metrics_.enabled())
                    (r.isOk()          ? metrics_.completed
                         : deadline    ? metrics_.rejectedDeadline
                                       : metrics_.failed)
                        ->inc();
                std::lock_guard<std::mutex> lock(submitMutex_);
                if (r.isOk()) {
                    completed_++;
                    tenants_[tenant].completed++;
                } else if (deadline) {
                    rejectedDeadline_++;
                    tenants_[tenant].rejectedDeadline++;
                } else {
                    failed_++;
                    tenants_[tenant].failed++;
                }
            }
            complete(std::move(r));
        };

    // Per-request validation: a malformed request fails only its
    // own future and never reaches a shared batch.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (pairs[i].first == nullptr || pairs[i].second == nullptr) {
            counted(Status::invalidArgument(
                "submit: null tree in pair " + std::to_string(i)));
            return true;
        }
    }
    if (pairs.empty()) {
        counted(std::vector<double>{});
        return true;
    }

    // Admission: charge the tenant's bucket BEFORE splitting or
    // queueing, so a flooding tenant is turned away at the door.
    if (opts_.admission != nullptr) {
        Status admitted =
            opts_.admission->admit(submitOpts.tenant, pairs.size());
        if (!admitted.isOk()) {
            if (metrics_.enabled())
                metrics_.rejectedQuota->inc();
            {
                std::lock_guard<std::mutex> lock(submitMutex_);
                rejectedQuota_++;
                tenants_[submitOpts.tenant].rejectedQuota++;
            }
            rejectedTag->store(true);
            counted(admitted);
            return true;
        }
    }

    // Admission-time model resolution: the whole request (however
    // many shard slices it splits into) runs on this one snapshot,
    // so a hot swap can never straddle a request.
    Result<std::shared_ptr<const ModelVersion>> version =
        workers_[0]->engine->resolveModel(submitOpts.model);
    if (!version.isOk()) {
        counted(version.status());
        return true;
    }

    std::vector<Request> requests =
        splitRequest(std::move(pairs), version.take(),
                     std::move(counted), submitOpts, submitStart);

    if (!blocking) {
        // All-or-nothing: either every slice is admitted or none.
        switch (queue_.tryPushAll(requests)) {
          case QueuePush::Ok: {
              if (metrics_.enabled())
                  metrics_.submitted->inc();
              std::lock_guard<std::mutex> lock(submitMutex_);
              submitted_++;
              tenants_[submitOpts.tenant].submitted++;
              return true;
          }
          case QueuePush::Full: {
              if (metrics_.enabled())
                  metrics_.rejectedShed->inc();
              std::lock_guard<std::mutex> lock(submitMutex_);
              rejectedShed_++;
              return false; // caller keeps no future and may retry
          }
          case QueuePush::Closed: {
              if (metrics_.enabled())
                  metrics_.rejectedShutdown->inc();
              {
                  std::lock_guard<std::mutex> lock(submitMutex_);
                  rejectedShutdown_++;
              }
              rejectedTag->store(true);
              // Resolve EVERY slice: a split request's join only
              // completes (and the caller's promise only resolves)
              // once all of its slices have reported in.
              for (Request& request : requests)
                  request.complete(Status::unavailable(
                      "ShardedServer: submit after shutdown"));
              return true;
          }
        }
        return true; // unreachable
    }

    bool anyClosed = false;
    for (Request& request : requests) {
        if (queue_.push(std::move(request)) == QueuePush::Closed) {
            // Push leaves the request untouched on rejection. A
            // rejected slice resolves Unavailable through its own
            // completion, so a join still fans in correctly even
            // when shutdown lands mid-split.
            if (!anyClosed) {
                if (metrics_.enabled())
                    metrics_.rejectedShutdown->inc();
                std::lock_guard<std::mutex> lock(submitMutex_);
                rejectedShutdown_++;
            }
            anyClosed = true;
            rejectedTag->store(true);
            request.complete(Status::unavailable(
                "ShardedServer: submit after shutdown"));
        }
    }
    if (!anyClosed) {
        if (metrics_.enabled())
            metrics_.submitted->inc();
        std::lock_guard<std::mutex> lock(submitMutex_);
        submitted_++;
        tenants_[submitOpts.tenant].submitted++;
    }
    return true;
}

std::future<Result<double>>
ShardedServer::submitCompare(const Ast& first, const Ast& second)
{
    return submitCompare(SubmitOptions(), first, second);
}

std::future<Result<double>>
ShardedServer::submitCompare(const std::string& model,
                             const Ast& first, const Ast& second)
{
    return submitCompare(SubmitOptions().withModel(model), first,
                         second);
}

std::future<Result<double>>
ShardedServer::submitCompare(const SubmitOptions& submitOpts,
                             const Ast& first, const Ast& second)
{
    auto promise = std::make_shared<std::promise<Result<double>>>();
    std::future<Result<double>> future = promise->get_future();
    submitCore(submitOpts, {Engine::PairRequest{&first, &second}},
               [promise](Result<std::vector<double>> r) {
                   if (r.isOk())
                       promise->set_value(r.value()[0]);
                   else
                       promise->set_value(r.status());
               },
               /*blocking=*/true);
    return future;
}

std::future<Result<std::vector<double>>>
ShardedServer::submitCompareMany(
    std::vector<Engine::PairRequest> pairs)
{
    return submitCompareMany(SubmitOptions(), std::move(pairs));
}

std::future<Result<std::vector<double>>>
ShardedServer::submitCompareMany(
    const std::string& model, std::vector<Engine::PairRequest> pairs)
{
    return submitCompareMany(SubmitOptions().withModel(model),
                             std::move(pairs));
}

std::future<Result<std::vector<double>>>
ShardedServer::submitCompareMany(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<double>>>>();
    std::future<Result<std::vector<double>>> future =
        promise->get_future();
    submitCore(submitOpts, std::move(pairs),
               [promise](Result<std::vector<double>> r) {
                   promise->set_value(std::move(r));
               },
               /*blocking=*/true);
    return future;
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
ShardedServer::submitRank(std::vector<const Ast*> candidates)
{
    return submitRank(SubmitOptions(), std::move(candidates));
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
ShardedServer::submitRank(const std::string& model,
                          std::vector<const Ast*> candidates)
{
    return submitRank(SubmitOptions().withModel(model),
                      std::move(candidates));
}

std::future<Result<std::vector<Engine::RankedCandidate>>>
ShardedServer::submitRank(const SubmitOptions& submitOpts,
                          std::vector<const Ast*> candidates)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<Engine::RankedCandidate>>>>();
    std::future<Result<std::vector<Engine::RankedCandidate>>> future =
        promise->get_future();
    if (candidates.size() < 2) {
        promise->set_value(Status::invalidArgument(
            "submitRank: need at least two candidates"));
        if (metrics_.enabled())
            metrics_.failed->inc();
        std::lock_guard<std::mutex> lock(submitMutex_);
        failed_++;
        return future;
    }
    std::size_t n = candidates.size();
    submitCore(submitOpts, Engine::tournamentPairs(candidates),
               [promise, n](Result<std::vector<double>> r) {
                   if (r.isOk())
                       promise->set_value(Engine::aggregateTournament(
                           n, r.value()));
                   else
                       promise->set_value(r.status());
               },
               /*blocking=*/true);
    return future;
}

std::optional<std::future<Result<double>>>
ShardedServer::trySubmitCompare(const Ast& first, const Ast& second)
{
    return trySubmitCompare(SubmitOptions(), first, second);
}

std::optional<std::future<Result<double>>>
ShardedServer::trySubmitCompare(const std::string& model,
                                const Ast& first, const Ast& second)
{
    return trySubmitCompare(SubmitOptions().withModel(model), first,
                            second);
}

std::optional<std::future<Result<double>>>
ShardedServer::trySubmitCompare(const SubmitOptions& submitOpts,
                                const Ast& first, const Ast& second)
{
    auto promise = std::make_shared<std::promise<Result<double>>>();
    std::future<Result<double>> future = promise->get_future();
    bool accepted =
        submitCore(submitOpts,
                   {Engine::PairRequest{&first, &second}},
                   [promise](Result<std::vector<double>> r) {
                       if (r.isOk())
                           promise->set_value(r.value()[0]);
                       else
                           promise->set_value(r.status());
                   },
                   /*blocking=*/false);
    if (!accepted)
        return std::nullopt;
    return future;
}

std::optional<std::future<Result<std::vector<double>>>>
ShardedServer::trySubmitCompareMany(
    std::vector<Engine::PairRequest> pairs)
{
    return trySubmitCompareMany(SubmitOptions(), std::move(pairs));
}

std::optional<std::future<Result<std::vector<double>>>>
ShardedServer::trySubmitCompareMany(
    const std::string& model, std::vector<Engine::PairRequest> pairs)
{
    return trySubmitCompareMany(SubmitOptions().withModel(model),
                                std::move(pairs));
}

std::optional<std::future<Result<std::vector<double>>>>
ShardedServer::trySubmitCompareMany(
    const SubmitOptions& submitOpts,
    std::vector<Engine::PairRequest> pairs)
{
    auto promise = std::make_shared<
        std::promise<Result<std::vector<double>>>>();
    std::future<Result<std::vector<double>>> future =
        promise->get_future();
    bool accepted =
        submitCore(submitOpts, std::move(pairs),
                   [promise](Result<std::vector<double>> r) {
                       promise->set_value(std::move(r));
                   },
                   /*blocking=*/false);
    if (!accepted)
        return std::nullopt;
    return future;
}

void
ShardedServer::workerLoop(std::size_t shard)
{
    Worker& worker = *workers_[shard];
    Coalescer<Request> coalescer(queue_, opts_.maxBatchSize,
                                 opts_.maxBatchDelay,
                                 batchClassDelay());
    for (;;) {
        // The same two-lane pop-and-coalesce state machine as
        // AsyncServer's batcher (serve/coalesce.hh); nullopt means
        // the queue is closed, fully drained, and this worker holds
        // nothing over — clean exit.
        std::optional<CoalescedBatch<Request>> batch =
            coalescer.next();
        if (!batch)
            return;

        // Expired members answer DeadlineExceeded instead of riding
        // the engine call (serve/coalesce.hh expireDeadlines); the
        // submitCore completion wrapper attributes the rejection, so
        // no extra counting happens here.
        expireDeadlines(*batch, std::chrono::steady_clock::now(),
                        "ShardedServer", [](const Request&) {});
        if (batch->requests.empty())
            continue;

        // One engine call per model version in this worker's tick.
        // Other workers run their own ticks concurrently; the shared
        // cache dedups latents per version across all of them.
        ModelBatches grouped = groupBatchByModel(*batch);
        std::vector<Result<std::vector<double>>> results;
        std::vector<Engine::PhaseTiming> timings(
            grouped.groups.size());
        results.reserve(grouped.groups.size());
        for (std::size_t g = 0; g < grouped.groups.size(); ++g)
            results.push_back(worker.engine->compareMany(
                *grouped.groups[g].version, grouped.groups[g].pairs,
                &timings[g]));

        auto completedAt = std::chrono::steady_clock::now();
        if (metrics_.enabled()) {
            metrics_.batches->inc();
            metrics_.batchPairs->inc(batch->pairCount);
        }
        {
            std::lock_guard<std::mutex> lock(worker.mutex);
            worker.batches++;
            worker.pairsServed += batch->pairCount;
            worker.batchSizes.add(batch->pairCount);
            for (const Request& r : batch->requests) {
                std::size_t us =
                    latencySampleUs(completedAt - r.enqueued);
                worker.latencyUs.add(us);
                worker.tenantLatencyUs[r.tenant].add(us);
            }
        }
        // Registry instruments synchronise themselves — feed them
        // outside worker.mutex. One sample per SLICE, like
        // ServerStats::latencyUs (split requests bound the caller
        // latency from below).
        for (const Request& r : batch->requests) {
            std::size_t us =
                latencySampleUs(completedAt - r.enqueued);
            if (metrics_.enabled())
                serverLatencyHistogram(*opts_.metrics, "sharded",
                                       r.version->name, r.tenant,
                                       r.priority,
                                       opts_.metricsWindow)
                    .add(us, completedAt);
            if (opts_.slo != nullptr)
                opts_.slo->record(r.version->name, r.tenant, us,
                                  completedAt);
        }

        // Fan slices (or their group's failure) back out in
        // submission order.
        for (std::size_t i = 0; i < batch->requests.size(); ++i) {
            Request& r = batch->requests[i];
            const Result<std::vector<double>>& probs =
                results[grouped.groupOf[i]];
            if (probs.isOk()) {
                recordTrace(r, timings[grouped.groupOf[i]],
                            static_cast<std::uint32_t>(shard));
                auto begin = probs.value().begin() +
                    static_cast<std::ptrdiff_t>(grouped.offsetOf[i]);
                r.complete(std::vector<double>(
                    begin,
                    begin + static_cast<std::ptrdiff_t>(
                                r.pairs.size())));
            } else {
                r.complete(probs.status());
            }
        }
    }
}

void
ShardedServer::recordTrace(const Request& request,
                           const Engine::PhaseTiming& timing,
                           std::uint32_t lane)
{
    if (opts_.trace == nullptr || request.traceId == 0)
        return;
    TraceRecorder& trace = *opts_.trace;
    auto pairs = static_cast<std::uint32_t>(request.pairs.size());
    trace.record(request.traceId, TracePhase::Admission,
                 request.submitted, request.enqueued, lane,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Queue,
                 request.enqueued, request.dequeued, lane,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Coalesce,
                 request.dequeued, timing.encodeStart, lane,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Encode,
                 timing.encodeStart, timing.encodeEnd, lane,
                 request.tenant, pairs);
    trace.record(request.traceId, TracePhase::Score,
                 timing.encodeEnd, timing.scoreEnd, lane,
                 request.tenant, pairs);
}

void
ShardedServer::sampleMetrics() const
{
    if (opts_.metrics == nullptr)
        return;
    // Any worker's engine sees the same registry and shared cache,
    // so one engine's per-model rows describe the whole server.
    publishServerGauges(*opts_.metrics, "sharded", queue_.size(),
                        queue_.capacity(),
                        workers_[0]->engine->perModelCacheStats());
}

ShardedServerStats
ShardedServer::stats() const
{
    ShardedServerStats out;
    out.shards.reserve(workers_.size());
    for (std::size_t s = 0; s < workers_.size(); ++s) {
        const Worker& worker = *workers_[s];
        ServerStats row;
        {
            std::lock_guard<std::mutex> lock(worker.mutex);
            row.batches = worker.batches;
            row.pairsServed = worker.pairsServed;
            row.batchSizes = worker.batchSizes;
            row.latencyUs = worker.latencyUs;
            // Per-shard tenant rows carry slice latency only;
            // request-level tenant counters are global (below).
            row.tenants.reserve(worker.tenantLatencyUs.size());
            for (const auto& [name, hist] : worker.tenantLatencyUs) {
                TenantStats t;
                t.tenant = name;
                t.latencyUs = hist;
                row.tenants.push_back(std::move(t));
            }
        }
        std::sort(row.tenants.begin(), row.tenants.end(),
                  [](const TenantStats& a, const TenantStats& b) {
                      return a.tenant < b.tenant;
                  });
        for (TenantStats& t : row.tenants)
            fillTenantPercentiles(t);
        fillLatencyPercentiles(row);
        // Engine volume is per shard engine; cache counters are the
        // shard's PARTITION of the shared cache, so the per-shard
        // rows partition the aggregate exactly.
        Engine::Stats engine = worker.engine->stats();
        EncodingCache::Stats part = cache_->shardStats(s);
        row.engine.treesEncoded = engine.treesEncoded;
        row.engine.pairsServed = engine.pairsServed;
        row.engine.cacheHits = part.hits;
        row.engine.cacheMisses = part.misses;
        row.engine.cacheEvictions = part.evictions;
        row.engine.cacheSize = cache_->shardSize(s);
        out.shards.push_back(std::move(row));
    }

    // Merged histograms drive the aggregate latency percentiles;
    // per-shard cache partitions sum to the shared cache's totals.
    out.aggregate = mergeServerStats(out.shards);
    out.aggregate.queueDepth = queue_.size();
    out.aggregate.queueCapacity = queue_.capacity();
    // Per-model rows describe the ONE shared cache; any worker's
    // engine sees the same namespaces, so fill them once rather than
    // summing N identical copies.
    out.aggregate.models = workers_[0]->engine->perModelCacheStats();
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        out.aggregate.requestsSubmitted = submitted_;
        out.aggregate.requestsRejectedShed = rejectedShed_;
        out.aggregate.requestsRejectedShutdown = rejectedShutdown_;
        out.aggregate.requestsRejectedQuota = rejectedQuota_;
        out.aggregate.requestsRejectedDeadline = rejectedDeadline_;
        out.aggregate.requestsRejected = rejectedShed_ +
            rejectedShutdown_ + rejectedQuota_ + rejectedDeadline_;
        out.aggregate.requestsCompleted = completed_;
        out.aggregate.requestsFailed = failed_;
        // Graft the global per-tenant request counters onto the
        // merged (latency-only) tenant rows; a tenant rejected
        // before it ever reached a worker still gets a row.
        for (const auto& [name, counters] : tenants_) {
            TenantStats* row = nullptr;
            for (TenantStats& t : out.aggregate.tenants)
                if (t.tenant == name) {
                    row = &t;
                    break;
                }
            if (row == nullptr) {
                TenantStats t;
                t.tenant = name;
                out.aggregate.tenants.push_back(std::move(t));
                row = &out.aggregate.tenants.back();
            }
            row->submitted = counters.submitted;
            row->completed = counters.completed;
            row->failed = counters.failed;
            row->rejectedQuota = counters.rejectedQuota;
            row->rejectedDeadline = counters.rejectedDeadline;
        }
    }
    std::sort(out.aggregate.tenants.begin(),
              out.aggregate.tenants.end(),
              [](const TenantStats& a, const TenantStats& b) {
                  return a.tenant < b.tenant;
              });
    return out;
}

} // namespace ccsa
