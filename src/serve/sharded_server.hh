/**
 * @file
 * ccsa::ShardedServer — N batcher workers over a partitioned
 * encoding cache. AsyncServer (PR 2) scaled request *admission*
 * (many producers, one queue) but kept a single batcher: one thread
 * executes every coalesced batch, one mutex-guarded LRU holds every
 * latent, and one engine's serial sections (digesting, cache walk,
 * classifier head, promise fan-out) bound throughput. ShardedServer
 * scales the execution side:
 *
 *  - N worker threads consume the SAME BoundedQueue (work-stealing
 *    load balance: an idle worker takes whatever is next), each
 *    running the AsyncServer coalescing loop against its own Engine,
 *    so up to N batches are in flight at once.
 *  - All N engines share one ShardedEncodingCache: the key space is
 *    partitioned by AST structural digest (digest % numShards), each
 *    partition is an independently-locked LRU, so a tree's latent
 *    lives on exactly one shard no matter which worker encoded it,
 *    workers only contend when their trees hash to the same
 *    partition, and aggregate cache capacity scales with the shard
 *    count at a fixed per-shard memory budget.
 *  - Cross-shard requests are split and joined: a multi-pair request
 *    is broken into per-shard sub-requests (grouped by the owning
 *    partition of each pair's first tree) that different workers
 *    execute concurrently, and a join fans the slices back into one
 *    result in request order. submitRank rides the same machinery —
 *    Engine::tournamentPairs to split, Engine::aggregateTournament
 *    to join — so a big tournament parallelises across shards.
 *
 * Determinism contract: identical to AsyncServer's. Every pair's
 * probability is produced by Engine::compareMany, whose per-pair
 * output is independent of batch composition, worker assignment, and
 * shard count, so results are bitwise-identical to a synchronous
 * Engine on the same weights at 1, 2, 4, or 8 shards
 * (tests/test_sharded_server.cc pins this under a multi-producer
 * stress schedule).
 *
 * Stats: per-shard ServerStats plus an aggregate whose latency
 * percentiles are derived from the MERGED per-shard latency
 * histograms (mergeServerStats) — never by averaging per-shard
 * percentiles, which is statistically wrong.
 *
 * Multi-model serving: construct over a ModelRegistry and submit
 * with model names. Names resolve to immutable ModelVersion
 * snapshots AT ADMISSION (a request admitted before a hot swap
 * completes on the version it was admitted under); each worker tick
 * executes one engine call per (model version, pairs) group of its
 * coalesced batch; and the shared cache keys latents by
 * (version id, digest), so models and hot-swapped versions occupy
 * isolated namespaces while all N workers still share each
 * version's latents. Per model, results stay bitwise-identical to a
 * dedicated single-model Engine at any shard count.
 *
 * Failure semantics, lifetime, and shutdown-drain match AsyncServer:
 * per-request Status, trees outlive their futures, shutdown()
 * answers everything accepted before joining the workers.
 */

#ifndef CCSA_SERVE_SHARDED_SERVER_HH
#define CCSA_SERVE_SHARDED_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/bounded_queue.hh"
#include "base/result.hh"
#include "base/stats.hh"
#include "serve/admission/admission_controller.hh"
#include "serve/engine.hh"
#include "serve/server_stats.hh"
#include "serve/trace/trace_recorder.hh"

namespace ccsa
{

class SloTracker;

/** Fleet-plus-per-shard snapshot; see ShardedServer::stats(). */
struct ShardedServerStats
{
    /** Whole-server view. Queue and request counters are global;
     * batching/latency/engine fields are the per-shard rows merged
     * (latency percentiles from the merged histogram). */
    ServerStats aggregate;
    /** One row per shard: that worker's batching volume and latency
     * distribution, its engine's encode volume, and its cache
     * PARTITION's hit/miss/eviction/size counters (request-level
     * and queue fields stay zero — those are global). */
    std::vector<ServerStats> shards;
};

/** N-worker sharded serving front over one request queue. */
class ShardedServer
{
  public:
    /** Builder-style serving options. */
    struct Options
    {
        /** Worker threads == engines == cache partitions. */
        std::size_t numShards = 4;
        /** Max requests waiting in the shared queue. */
        std::size_t queueCapacity = 1024;
        /** Flush a worker's batch once it holds this many pairs. */
        std::size_t maxBatchSize = 256;
        /** Flush once the oldest INTERACTIVE member waited this
         * long. */
        std::chrono::microseconds maxBatchDelay{500};
        /** Flush budget of the BATCH priority lane (see
         * serve/coalesce.hh and AsyncServer::Options). 0 = "8 x
         * maxBatchDelay"; clamped up to maxBatchDelay. */
        std::chrono::microseconds maxBatchClassDelay{0};
        /** Optional per-tenant admission gate shared by every submit
         * endpoint (not owned; must outlive the server). */
        AdmissionController* admission = nullptr;
        /** Optional span sink (not owned; must outlive the server).
         * A split request records one chain PER SHARD SLICE, with
         * the executing worker's index as the lane/tid. */
        TraceRecorder* trace = nullptr;
        /** Encoder threads inside EACH shard engine. The default of
         * 1 (inline) is right when numShards already covers the
         * cores; raise it for few shards + huge batches. */
        int threadsPerShard = 1;
        /** Do not start the workers until start(). */
        bool startPaused = false;
        /** Optional process-wide metrics plane (not owned; must
         * outlive the server). Counters update inline under
         * {server="sharded"}; pull-style gauges publish on
         * sampleMetrics(). */
        MetricsRegistry* metrics = nullptr;
        /** Optional SLO accountant fed one event per SHARD SLICE a
         * worker completes (not owned; must outlive the server).
         * Slice latency bounds the caller-observed latency from
         * below — see ServerStats::latencyUs. */
        SloTracker* slo = nullptr;
        /** Window shape for ccsa_request_latency_us. The FIRST
         * server (of either flavour) to record into the family fixes
         * its shape process-wide (MetricsRegistry family
         * semantics). */
        WindowedHistogram::Options metricsWindow;

        Options& withNumShards(std::size_t n)
        {
            numShards = n == 0 ? 1 : n;
            return *this;
        }

        Options& withQueueCapacity(std::size_t n)
        {
            queueCapacity = n;
            return *this;
        }

        Options& withMaxBatchSize(std::size_t n)
        {
            maxBatchSize = n == 0 ? 1 : n;
            return *this;
        }

        Options& withMaxBatchDelay(std::chrono::microseconds d)
        {
            maxBatchDelay = d;
            return *this;
        }

        Options& withMaxBatchClassDelay(std::chrono::microseconds d)
        {
            maxBatchClassDelay = d;
            return *this;
        }

        Options& withAdmission(AdmissionController* controller)
        {
            admission = controller;
            return *this;
        }

        Options& withTrace(TraceRecorder* recorder)
        {
            trace = recorder;
            return *this;
        }

        Options& withThreadsPerShard(int n)
        {
            threadsPerShard = n;
            return *this;
        }

        Options& withStartPaused(bool paused)
        {
            startPaused = paused;
            return *this;
        }

        Options& withMetrics(MetricsRegistry* registry)
        {
            metrics = registry;
            return *this;
        }

        Options& withSlo(SloTracker* tracker)
        {
            slo = tracker;
            return *this;
        }

        Options& withMetricsWindow(WindowedHistogram::Options w)
        {
            metricsWindow = w;
            return *this;
        }
    };

    /** Build a fresh model from engineOpts and serve it sharded. */
    explicit ShardedServer(Engine::Options engineOpts);
    ShardedServer(Engine::Options engineOpts, Options opts);

    /**
     * Serve an existing (typically trained) predictor: every shard
     * engine shares the SAME model object (wrapped once in one
     * ModelVersion, so they also share its cache namespace) and all
     * shards answer with identical weights. engineOpts supplies the
     * per-shard serving knobs (cacheCapacity is PER PARTITION;
     * threads is overridden by opts.threadsPerShard).
     */
    ShardedServer(std::shared_ptr<ComparativePredictor> model,
                  Engine::Options engineOpts, Options opts);

    /**
     * Multi-model serving: every shard engine resolves model names
     * through the same registry, over one shared namespace-aware
     * cache. Submit with the model-name overloads; hot-swap by
     * publishing to the registry while traffic flows.
     */
    ShardedServer(std::shared_ptr<ModelRegistry> registry,
                  Engine::Options engineOpts, Options opts);

    /** Equivalent to shutdown(). */
    ~ShardedServer();

    ShardedServer(const ShardedServer&) = delete;
    ShardedServer& operator=(const ShardedServer&) = delete;

    /** Submit one comparison; same contract as AsyncServer. The
     * model-name overloads serve a named registry model. */
    std::future<Result<double>> submitCompare(const Ast& first,
                                              const Ast& second);
    std::future<Result<double>> submitCompare(
        const std::string& model, const Ast& first,
        const Ast& second);
    std::future<Result<double>> submitCompare(
        const SubmitOptions& submitOpts, const Ast& first,
        const Ast& second);

    /**
     * Submit a pair batch; resolves to one probability per pair in
     * request order. Multi-pair requests are split into per-shard
     * sub-requests executed by different workers and joined back in
     * order — the result is bitwise-identical to
     * Engine::compareMany on the whole batch.
     */
    std::future<Result<std::vector<double>>>
    submitCompareMany(std::vector<Engine::PairRequest> pairs);
    std::future<Result<std::vector<double>>>
    submitCompareMany(const std::string& model,
                      std::vector<Engine::PairRequest> pairs);
    std::future<Result<std::vector<double>>>
    submitCompareMany(const SubmitOptions& submitOpts,
                      std::vector<Engine::PairRequest> pairs);

    /**
     * Submit a ranking tournament: tournamentPairs splits it across
     * shards, aggregateTournament joins it, so the ranking is
     * bitwise-identical to Engine::rank.
     */
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(std::vector<const Ast*> candidates);
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(const std::string& model,
               std::vector<const Ast*> candidates);
    std::future<Result<std::vector<Engine::RankedCandidate>>>
    submitRank(const SubmitOptions& submitOpts,
               std::vector<const Ast*> candidates);

    /**
     * Non-blocking submitCompare: nullopt when the queue lacks room
     * (nothing was enqueued). A shut-down server still returns a
     * future carrying Unavailable.
     */
    std::optional<std::future<Result<double>>>
    trySubmitCompare(const Ast& first, const Ast& second);
    std::optional<std::future<Result<double>>>
    trySubmitCompare(const std::string& model, const Ast& first,
                     const Ast& second);
    std::optional<std::future<Result<double>>>
    trySubmitCompare(const SubmitOptions& submitOpts,
                     const Ast& first, const Ast& second);

    /**
     * Non-blocking submitCompareMany. Admission is all-or-nothing:
     * either every per-shard piece of the request fits in the queue
     * or none is enqueued and nullopt is returned — a load-shed
     * request never leaves half of itself behind.
     */
    std::optional<std::future<Result<std::vector<double>>>>
    trySubmitCompareMany(std::vector<Engine::PairRequest> pairs);
    std::optional<std::future<Result<std::vector<double>>>>
    trySubmitCompareMany(const std::string& model,
                         std::vector<Engine::PairRequest> pairs);
    std::optional<std::future<Result<std::vector<double>>>>
    trySubmitCompareMany(const SubmitOptions& submitOpts,
                         std::vector<Engine::PairRequest> pairs);

    /** Start the workers if construction was startPaused. */
    void start();

    /**
     * Stop accepting requests, drain and answer everything already
     * accepted (starting the workers if they never ran), then join
     * all N workers. Idempotent.
     */
    void shutdown();

    /** @return true once shutdown() has completed. */
    bool isShutdown() const;

    /** Aggregate + per-shard counters snapshot. */
    ShardedServerStats stats() const;

    /** Publish the pull-style gauges (queue depth/capacity, live
     * models, per-namespace cache levels) to the attached registry;
     * no-op without one. Wire as a MetricsSampler probe. */
    void sampleMetrics() const;

    std::size_t numShards() const { return workers_.size(); }
    const Options& options() const { return opts_; }

    /** Shard s's engine (shares the model and the cache). */
    Engine& shardEngine(std::size_t s);

    /** The shared partitioned cache. */
    ShardedEncodingCache& cache() { return *cache_; }
    const ShardedEncodingCache& cache() const { return *cache_; }

  private:
    /** One queued unit: a per-shard slice of a client request,
     * pinned to the ModelVersion resolved at admission. */
    struct Request
    {
        std::vector<Engine::PairRequest> pairs;
        std::shared_ptr<const ModelVersion> version;
        std::function<void(Result<std::vector<double>>)> complete;
        /** Scheduling lane (serve/coalesce.hh two-lane flush). */
        Priority priority = Priority::kInteractive;
        /** Admission tenant ("" = default tenant). */
        std::string tenant;
        /** TraceRecorder chain id, PER SLICE; 0 = untraced. */
        std::uint64_t traceId = 0;
        /** submitCore entry — the admission trace span's start. */
        std::chrono::steady_clock::time_point submitted;
        std::chrono::steady_clock::time_point enqueued;
        /** Stamped by the Coalescer when popped (queue-span end). */
        std::chrono::steady_clock::time_point dequeued;
        /** Absolute submit-side deadline (max() = none); a worker
         * answers an expired slice with DeadlineExceeded instead of
         * encoding it. A split request's join propagates the first
         * slice's error, so however many slices expire the CLIENT
         * request resolves (and is counted) once. */
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
    };

    /** Fan-in for a request split across shards. */
    struct JoinState
    {
        std::mutex mutex;
        std::vector<double> values;
        Status error; // Ok until the first failing slice
        std::size_t remaining = 0;
        std::function<void(Result<std::vector<double>>)> complete;
    };

    /** A worker: one thread, one engine, its own counters. */
    struct Worker
    {
        std::unique_ptr<Engine> engine;
        std::thread thread;
        mutable std::mutex mutex;
        std::uint64_t batches = 0;
        std::uint64_t pairsServed = 0;
        Histogram batchSizes;
        Histogram latencyUs;
        /** Per-tenant latency of the SLICES this worker served;
         * merged across workers into the aggregate's tenant rows. */
        std::unordered_map<std::string, Histogram> tenantLatencyUs;
    };

    /** Submit-side per-tenant counters (latency lives per worker). */
    struct TenantCounters
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t rejectedQuota = 0;
        std::uint64_t rejectedDeadline = 0;
    };

    bool submitCore(
        const SubmitOptions& submitOpts,
        std::vector<Engine::PairRequest> pairs,
        std::function<void(Result<std::vector<double>>)> complete,
        bool blocking);

    /** Split validated pairs into per-shard Requests wired to one
     * completion (directly, or through a JoinState when the request
     * crosses shards); every slice pins `version` and carries the
     * submit's tenant/priority (each slice gets its own trace
     * chain — a split request is N concurrent pipeline walks). */
    std::vector<Request> splitRequest(
        std::vector<Engine::PairRequest> pairs,
        std::shared_ptr<const ModelVersion> version,
        std::function<void(Result<std::vector<double>>)> complete,
        const SubmitOptions& submitOpts,
        std::chrono::steady_clock::time_point submitStart);

    /** Fetch the inline registry instruments; no-op without an
     * attached registry. */
    void initMetrics();

    void workerLoop(std::size_t shard);
    /** Emit one slice's five-span chain (no-op when untraced). */
    void recordTrace(const Request& request,
                     const Engine::PhaseTiming& timing,
                     std::uint32_t lane);
    /** The batch lane's flush budget after defaulting (0 -> 8x
     * maxBatchDelay). */
    std::chrono::microseconds batchClassDelay() const;

    /** Spawn all worker threads; caller holds lifecycleMutex_. */
    void startWorkersLocked();

    Options opts_;
    std::shared_ptr<ShardedEncodingCache> cache_;
    BoundedQueue<Request> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Registry-owned inline instruments ({server="sharded"});
     * null members when no registry is attached. */
    ServerMetrics metrics_;

    /** Guards the worker-thread lifecycle (start/shutdown). */
    mutable std::mutex lifecycleMutex_;
    bool started_ = false;
    bool shutdown_ = false;

    /** Guards the request-level counters below. */
    mutable std::mutex submitMutex_;
    std::uint64_t submitted_ = 0;
    std::uint64_t rejectedShed_ = 0;
    std::uint64_t rejectedShutdown_ = 0;
    std::uint64_t rejectedQuota_ = 0;
    std::uint64_t rejectedDeadline_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::unordered_map<std::string, TenantCounters> tenants_;
};

} // namespace ccsa

#endif // CCSA_SERVE_SHARDED_SERVER_HH
