#include "serve/trace/trace_recorder.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "base/logging.hh"
#include "serve/metrics/metrics.hh"

namespace ccsa
{

namespace
{

/** Minimal JSON string escaping for tenant names (quotes,
 * backslashes, and control characters; tenants are operator-chosen
 * identifiers, not arbitrary text). */
std::string
escapeJson(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char*
tracePhaseName(TracePhase phase)
{
    switch (phase) {
      case TracePhase::Admission: return "admission";
      case TracePhase::Queue: return "queue";
      case TracePhase::Coalesce: return "coalesce";
      case TracePhase::Encode: return "encode";
      case TracePhase::Score: return "score";
    }
    return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t maxSpans)
    : maxSpans_(maxSpans == 0 ? 1 : maxSpans),
      epoch_(std::chrono::steady_clock::now())
{
    spans_.reserve(maxSpans_);
}

std::uint64_t
TraceRecorder::nextChain()
{
    return nextChain_.fetch_add(1, std::memory_order_relaxed);
}

void
TraceRecorder::record(std::uint64_t chain, TracePhase phase,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end,
                      std::uint32_t lane, const std::string& tenant,
                      std::uint32_t pairs)
{
    // Clamp outside the lock: a span can never start before the
    // recorder existed, and never end before it starts.
    if (start < epoch_)
        start = epoch_;
    if (end < start)
        end = start;
    auto us = [this](std::chrono::steady_clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - epoch_)
                .count());
    };
    Span span;
    span.chain = chain;
    span.phase = phase;
    span.startUs = us(start);
    span.durUs = us(end) - span.startUs;
    span.lane = lane;
    span.pairs = pairs;
    span.tenant = tenant;

    bool firstDrop = false;
    Counter* droppedCounter = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (spans_.size() >= maxSpans_) {
            dropped_++;
            droppedCounter = droppedCounter_;
            firstDrop = !warnedDrop_;
            warnedDrop_ = true;
        } else {
            spans_.push_back(std::move(span));
            return;
        }
    }
    // Drop bookkeeping that takes other locks (the counter is
    // registry-owned, warn() writes to stderr) happens outside ours.
    if (droppedCounter != nullptr)
        droppedCounter->inc();
    if (firstDrop) {
        warn("TraceRecorder: span buffer full (" +
             std::to_string(maxSpans_) +
             " spans) — dropping further spans; this warning is "
             "emitted once per fill (see "
             "ccsa_trace_spans_dropped_total for the running "
             "count)");
    }
}

std::size_t
TraceRecorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

std::uint64_t
TraceRecorder::droppedSpans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::vector<TraceRecorder::Span>
TraceRecorder::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

void
TraceRecorder::attachMetrics(MetricsRegistry* registry)
{
    Counter* counter =
        registry == nullptr
            ? nullptr
            : &registry->counter(
                  "ccsa_trace_spans_dropped_total", {},
                  "Trace spans discarded because the recorder's "
                  "bounded buffer was full.");
    std::lock_guard<std::mutex> lock(mutex_);
    droppedCounter_ = counter;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    dropped_ = 0;
    warnedDrop_ = false;
}

void
TraceRecorder::writeJson(std::ostream& out) const
{
    std::vector<Span> snapshot = spans();
    out << "{\n  \"displayTimeUnit\": \"ms\",\n"
        << "  \"traceEvents\": [\n";
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const Span& s = snapshot[i];
        out << "    {\"name\": \"" << tracePhaseName(s.phase)
            << "\", \"cat\": \"serve\", \"ph\": \"X\", \"ts\": "
            << s.startUs << ", \"dur\": " << s.durUs
            << ", \"pid\": 0, \"tid\": " << s.lane
            << ", \"args\": {\"req\": " << s.chain
            << ", \"tenant\": \"" << escapeJson(s.tenant)
            << "\", \"pairs\": " << s.pairs << "}}"
            << (i + 1 == snapshot.size() ? "\n" : ",\n");
    }
    out << "  ]\n}\n";
}

Status
TraceRecorder::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return Status::ioError("TraceRecorder: cannot write " + path);
    writeJson(out);
    out.flush();
    if (!out)
        return Status::ioError("TraceRecorder: write failed: " + path);
    return Status::ok();
}

} // namespace ccsa
