/**
 * @file
 * ccsa::TraceRecorder — per-request span recording for the serving
 * layer, exported as chrome://tracing JSON (the "trace event
 * format" Chrome, Perfetto, and speedscope all open). Attach one to
 * an AsyncServer or ShardedServer and every request it executes
 * leaves a five-span chain:
 *
 *   admission -> queue -> coalesce -> encode -> score
 *
 * admission covers submit-side validation + quota charging, queue
 * the time spent waiting in the BoundedQueue, coalesce the wait
 * inside a batcher tick for the batch to flush (including any
 * batch-lane holdover), and encode/score the request's share of the
 * engine call that answered it (shared by every member of its
 * per-model group — the whole group encodes and scores together, so
 * the group window IS each member's window).
 *
 * Recording is cheap enough for the serving hot path: spans are
 * POD-sized appends into preallocated storage under a mutex held
 * for a few stores, timestamps are computed OUTSIDE the lock, and
 * once the bounded buffer fills further spans are counted as
 * dropped rather than growing without bound under load. One
 * recorder may be shared by several servers; chain ids come from an
 * atomic counter so they never collide.
 *
 * tools/check_trace.py validates an exported file (parses, monotone
 * non-overlapping chain timestamps, full admission->score chain per
 * request) and CI runs it against the serving_daemon demo's export.
 */

#ifndef CCSA_SERVE_TRACE_TRACE_RECORDER_HH
#define CCSA_SERVE_TRACE_TRACE_RECORDER_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "base/result.hh"

namespace ccsa
{

class Counter;
class MetricsRegistry;

/** The serving pipeline stage a trace span covers. */
enum class TracePhase
{
    Admission,
    Queue,
    Coalesce,
    Encode,
    Score,
};

/** Number of phases in a complete request chain. */
constexpr std::size_t kTracePhases = 5;

/** @return the span name a TracePhase exports under. */
const char* tracePhaseName(TracePhase phase);

/** Bounded, shareable span sink with chrome-trace export. */
class TraceRecorder
{
  public:
    /** One recorded span (timestamps relative to the recorder's
     * construction, in microseconds — chrome-trace's native unit). */
    struct Span
    {
        std::uint64_t chain = 0;
        TracePhase phase = TracePhase::Admission;
        /** Start offset from the recorder epoch, us. */
        std::uint64_t startUs = 0;
        /** Duration, us (end clamped to >= start). */
        std::uint64_t durUs = 0;
        /** Executor lane: batcher/worker index for execution
         * phases, 0 for submit-side phases. */
        std::uint32_t lane = 0;
        /** Pairs the request carries (span weight). */
        std::uint32_t pairs = 0;
        /** Admission tenant ("" = default tenant). */
        std::string tenant;
    };

    /** @param maxSpans buffer capacity; once full, further spans
     * are dropped (and counted) instead of allocating. */
    explicit TraceRecorder(std::size_t maxSpans = 1u << 16);

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /** Allocate a fresh chain (request) id; never 0, so 0 can mean
     * "untraced" in request structs. */
    std::uint64_t nextChain();

    /** Record one span of `chain`. `end` is clamped to >= `start`
     * and both are clamped to the recorder epoch. */
    void record(std::uint64_t chain, TracePhase phase,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::uint32_t lane, const std::string& tenant,
                std::uint32_t pairs);

    /**
     * Surface span drops through the metrics plane: eagerly creates
     * the ccsa_trace_spans_dropped_total counter (so the family is
     * visible at 0 before anything drops) and increments it per
     * dropped span from then on. A buffer-full transition also emits
     * ONE warn() — once per fill, not per span, so a saturated
     * recorder cannot flood the log; clear() re-arms it. The
     * registry must outlive the recorder; pass nullptr to detach.
     */
    void attachMetrics(MetricsRegistry* registry);

    /** Spans currently buffered. */
    std::size_t spanCount() const;

    /** Spans discarded because the buffer was full. */
    std::uint64_t droppedSpans() const;

    /** Copy of the buffered spans (tests / custom exporters). */
    std::vector<Span> spans() const;

    /** Drop all buffered spans (dropped count resets too). */
    void clear();

    /**
     * Export the buffered spans as chrome://tracing JSON ("X"
     * complete events, one per span; chain id, tenant, and pair
     * count ride in args.req / args.tenant / args.pairs; the lane
     * maps to tid so one Perfetto row holds one executor). Open via
     * chrome://tracing or https://ui.perfetto.dev.
     */
    Status writeJson(const std::string& path) const;
    void writeJson(std::ostream& out) const;

  private:
    const std::size_t maxSpans_;
    const std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> nextChain_{1};

    mutable std::mutex mutex_;
    std::vector<Span> spans_;
    std::uint64_t dropped_ = 0;
    /** Registry-owned drop counter (null until attachMetrics). */
    Counter* droppedCounter_ = nullptr;
    /** Re-armed by clear(): has this fill already warned? */
    bool warnedDrop_ = false;
};

} // namespace ccsa

#endif // CCSA_SERVE_TRACE_TRACE_RECORDER_HH
