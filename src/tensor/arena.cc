#include "tensor/arena.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ccsa
{

TensorArena::TensorArena(std::size_t chunk_floats)
    : chunkFloats_(std::max<std::size_t>(chunk_floats, 1))
{
}

TensorArena::Chunk
TensorArena::makeChunk(std::size_t floats)
{
    Chunk c;
    c.data = std::make_unique<float[]>(floats);
    c.capacity = floats;
    ++chunkAllocs_;
    return c;
}

float*
TensorArena::allocate(std::size_t n)
{
    if (chunks_.empty())
        chunks_.push_back(makeChunk(std::max(chunkFloats_, n)));

    while (used_ + n > chunks_[active_].capacity) {
        if (active_ + 1 < chunks_.size() &&
            n <= chunks_[active_ + 1].capacity) {
            ++active_;
            used_ = 0;
            continue;
        }
        // No successor chunk fits: append one big enough. Capacity
        // skipped at the tail of the previous chunk is forfeit until
        // the next reset() coalesces everything anyway.
        chunks_.push_back(makeChunk(std::max(chunkFloats_, n)));
        active_ = chunks_.size() - 1;
        used_ = 0;
    }

    float* p = chunks_[active_].data.get() + used_;
    used_ += n;
    usedFloats_ += n;
    highWater_ = std::max(highWater_, usedFloats_);
    return p;
}

void
TensorArena::reset()
{
    // Coalesce: one chunk covering the high-water mark means the next
    // batch of the same shape never calls the allocator. Growing pays
    // exactly one chunk alloc here, steady state pays zero.
    if (chunks_.size() > 1 ||
        (!chunks_.empty() && chunks_[0].capacity < highWater_)) {
        const std::size_t want =
            std::max(chunkFloats_, highWater_);
        chunks_.clear();
        chunks_.push_back(makeChunk(want));
    }
    active_ = 0;
    used_ = 0;
    usedFloats_ = 0;
}

namespace
{

/** Thread-local inference state. The arena outlives scopes on
 *  purpose: its high-water chunk is what makes re-entry warm. */
thread_local bool tls_scope_active = false;
thread_local int tls_backward_depth = 0;

TensorArena&
threadArena()
{
    thread_local TensorArena arena;
    return arena;
}

} // namespace

InferenceScope::InferenceScope()
{
    if (tls_scope_active)
        fatal("InferenceScope: scopes do not nest; the outer scope "
              "already covers this thread");
    if (tls_backward_depth > 0)
        fatal("InferenceScope: cannot enter an inference scope while "
              "backward() is running on this thread");
    tls_scope_active = true;
}

InferenceScope::~InferenceScope()
{
    threadArena().reset();
    tls_scope_active = false;
}

bool
InferenceScope::active()
{
    return tls_scope_active;
}

TensorArena&
InferenceScope::arena()
{
    if (!tls_scope_active)
        panic("InferenceScope::arena: no active scope on this thread");
    return threadArena();
}

namespace detail
{

BackwardInProgress::BackwardInProgress()
{
    if (tls_scope_active)
        fatal("backward(): cannot run a gradient pass inside an "
              "InferenceScope (no tape was recorded)");
    ++tls_backward_depth;
}

BackwardInProgress::~BackwardInProgress()
{
    --tls_backward_depth;
}

bool
BackwardInProgress::active()
{
    return tls_backward_depth > 0;
}

} // namespace detail

} // namespace ccsa
