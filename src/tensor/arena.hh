/**
 * @file
 * Bump-allocated tensor storage for the tape-free inference path.
 *
 * A TensorArena hands out float spans from large chunks; nothing is
 * freed individually. reset() rewinds to empty while keeping the
 * high-water capacity as a single chunk, so a warm arena services an
 * entire encode batch without touching the heap at all.
 *
 * InferenceScope is the RAII guard that switches the `ag::` op set
 * into value-only mode on the current thread: while a scope is alive,
 * ops skip VarNode/tape construction and write their results into the
 * thread's arena as borrowed tensors (see Tensor::borrowed). Arena
 * storage dies with the scope — anything that must outlive it (cache
 * inserts, returned latents) is copied out via Tensor::toOwned().
 *
 * Scopes are strictly a serving-time construct: nesting one scope
 * inside another, or entering one while a backward() pass is running
 * on the same thread, is a FatalError. Training code is unaffected —
 * outside a scope every op records the tape exactly as before.
 */

#ifndef CCSA_TENSOR_ARENA_HH
#define CCSA_TENSOR_ARENA_HH

#include <cstddef>
#include <memory>
#include <vector>

namespace ccsa
{

/** Chunked bump allocator for float tensor payloads. */
class TensorArena
{
  public:
    /** Default chunk size: 256 KiB of floats. */
    static constexpr std::size_t kDefaultChunkFloats = 64 * 1024;

    explicit TensorArena(std::size_t chunk_floats = kDefaultChunkFloats);

    TensorArena(const TensorArena&) = delete;
    TensorArena& operator=(const TensorArena&) = delete;

    /**
     * Bump-allocate @p n floats (uninitialised). Valid until reset().
     * Returns a non-null pointer even for n == 0.
     */
    float* allocate(std::size_t n);

    /**
     * Rewind to empty, coalescing capacity: after a reset the arena
     * holds one chunk sized to the high-water mark, so the next batch
     * of the same shape allocates no memory at all.
     */
    void reset();

    /** Floats handed out since the last reset(). */
    std::size_t usedFloats() const { return usedFloats_; }

    /** Largest usedFloats() ever observed (drives coalescing). */
    std::size_t highWaterFloats() const { return highWater_; }

    /** Lifetime count of chunk mallocs — flat once warm. */
    std::size_t chunkAllocations() const { return chunkAllocs_; }

    /** Current number of chunks (1 once warm). */
    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<float[]> data;
        std::size_t capacity = 0;
    };

    Chunk makeChunk(std::size_t floats);

    std::vector<Chunk> chunks_;
    std::size_t chunkFloats_;
    std::size_t active_ = 0;     // chunk currently bumping
    std::size_t used_ = 0;       // floats used in the active chunk
    std::size_t usedFloats_ = 0; // floats used across all chunks
    std::size_t highWater_ = 0;
    std::size_t chunkAllocs_ = 0;
};

/**
 * RAII guard enabling tape-free execution on the current thread.
 * See the file comment for the full contract.
 */
class InferenceScope
{
  public:
    InferenceScope();
    ~InferenceScope();

    InferenceScope(const InferenceScope&) = delete;
    InferenceScope& operator=(const InferenceScope&) = delete;

    /** @return whether the calling thread is inside a scope. */
    static bool active();

    /**
     * The calling thread's arena; panics when no scope is active.
     * The arena object itself is thread_local and persists across
     * scopes, which is what makes the second scope warm.
     */
    static TensorArena& arena();
};

namespace detail
{

/**
 * Marks a backward() pass in flight on the current thread, so
 * InferenceScope can reject being opened mid-gradient. Only
 * ag::backward() should instantiate this.
 */
class BackwardInProgress
{
  public:
    BackwardInProgress();
    ~BackwardInProgress();

    /** @return whether a backward() pass is running on this thread. */
    static bool active();
};

} // namespace detail

} // namespace ccsa

#endif // CCSA_TENSOR_ARENA_HH
