#include "tensor/autograd.hh"

#include <cmath>
#include <unordered_set>

#include "base/logging.hh"

namespace ccsa
{
namespace ag
{

Var::Var(Tensor v, bool requires_grad)
{
    node_ = std::make_shared<VarNode>();
    node_->value = std::move(v);
    node_->requiresGrad = requires_grad;
}

const Tensor&
Var::value() const
{
    if (!node_)
        panic("Var::value: undefined Var");
    return node_->value;
}

Tensor&
Var::grad()
{
    if (!node_)
        panic("Var::grad: undefined Var");
    node_->ensureGrad();
    return node_->grad;
}

void
Var::zeroGrad()
{
    if (!node_)
        panic("Var::zeroGrad: undefined Var");
    if (!node_->grad.empty())
        node_->grad.fill(0.0f);
}

Tensor&
Var::mutableValue()
{
    if (!node_)
        panic("Var::mutableValue: undefined Var");
    return node_->value;
}

bool
Var::requiresGrad() const
{
    return node_ && node_->requiresGrad;
}

/** Internal helper: build an op node from value + parents + backward. */
Var
makeOp(Tensor value, std::vector<Var> parents,
       std::function<void(VarNode&)> backward)
{
    Var out(std::move(value), false);
    bool needs = false;
    for (const auto& p : parents) {
        if (!p.defined())
            panic("autograd op: undefined operand");
        out.node_->parents.push_back(p.node());
        needs = needs || p.node()->requiresGrad;
    }
    out.node_->requiresGrad = needs;
    if (needs)
        out.node_->backwardFn = std::move(backward);
    return out;
}

Var
constant(Tensor t)
{
    return Var(std::move(t), false);
}

Var
leaf(Tensor t)
{
    return Var(std::move(t), true);
}

Var
matmul(const Var& a, const Var& b)
{
    Tensor v = a.value().matmul(b.value());
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad.matmul(bn->value.transpose());
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += an->value.transpose().matmul(self.grad);
        }
    });
}

Var
add(const Var& a, const Var& b)
{
    Tensor v = a.value() + b.value();
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad;
        }
    });
}

Var
sub(const Var& a, const Var& b)
{
    Tensor v = a.value() - b.value();
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad -= self.grad;
        }
    });
}

Var
mul(const Var& a, const Var& b)
{
    Tensor v = a.value() * b.value();
    auto an = a.node();
    auto bn = b.node();
    return makeOp(std::move(v), {a, b}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad * bn->value;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad * an->value;
        }
    });
}

Var
scale(const Var& a, float s)
{
    Tensor v = a.value() * s;
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an, s](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad * s;
        }
    });
}

Var
addN(const std::vector<Var>& xs)
{
    if (xs.empty())
        panic("addN: empty operand list");
    Tensor v = xs[0].value();
    for (std::size_t i = 1; i < xs.size(); ++i)
        v += xs[i].value();
    std::vector<VarNodePtr> nodes;
    for (const auto& x : xs)
        nodes.push_back(x.node());
    return makeOp(std::move(v), xs, [nodes](VarNode& self) {
        for (const auto& n : nodes) {
            if (n->requiresGrad) {
                n->ensureGrad();
                n->grad += self.grad;
            }
        }
    });
}

Var
sigmoid(const Var& a)
{
    Tensor v = a.value();
    for (int i = 0; i < v.rows(); ++i)
        for (int j = 0; j < v.cols(); ++j)
            v.at(i, j) = 1.0f / (1.0f + std::exp(-v.at(i, j)));
    auto an = a.node();
    return makeOp(v, {a}, [an, v](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < v.rows(); ++i)
            for (int j = 0; j < v.cols(); ++j) {
                float y = v.at(i, j);
                an->grad.at(i, j) += self.grad.at(i, j) * y * (1 - y);
            }
    });
}

Var
tanhOp(const Var& a)
{
    Tensor v = a.value();
    for (int i = 0; i < v.rows(); ++i)
        for (int j = 0; j < v.cols(); ++j)
            v.at(i, j) = std::tanh(v.at(i, j));
    auto an = a.node();
    return makeOp(v, {a}, [an, v](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < v.rows(); ++i)
            for (int j = 0; j < v.cols(); ++j) {
                float y = v.at(i, j);
                an->grad.at(i, j) += self.grad.at(i, j) * (1 - y * y);
            }
    });
}

Var
relu(const Var& a)
{
    Tensor v = a.value();
    for (int i = 0; i < v.rows(); ++i)
        for (int j = 0; j < v.cols(); ++j)
            v.at(i, j) = v.at(i, j) > 0.0f ? v.at(i, j) : 0.0f;
    auto an = a.node();
    return makeOp(v, {a}, [an](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < self.value.rows(); ++i)
            for (int j = 0; j < self.value.cols(); ++j)
                if (an->value.at(i, j) > 0.0f)
                    an->grad.at(i, j) += self.grad.at(i, j);
    });
}

Var
addRowBroadcast(const Var& a, const Var& bias)
{
    Tensor v = a.value().addRowBroadcast(bias.value());
    auto an = a.node();
    auto bn = bias.node();
    return makeOp(std::move(v), {a, bias}, [an, bn](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            an->grad += self.grad;
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            bn->grad += self.grad.sumRows();
        }
    });
}

Var
concatColsOp(const Var& a, const Var& b)
{
    Tensor v = concatCols(a.value(), b.value());
    auto an = a.node();
    auto bn = b.node();
    int ac = a.value().cols();
    return makeOp(std::move(v), {a, b}, [an, bn, ac](VarNode& self) {
        if (an->requiresGrad) {
            an->ensureGrad();
            for (int i = 0; i < an->value.rows(); ++i)
                for (int j = 0; j < ac; ++j)
                    an->grad.at(i, j) += self.grad.at(i, j);
        }
        if (bn->requiresGrad) {
            bn->ensureGrad();
            for (int i = 0; i < bn->value.rows(); ++i)
                for (int j = 0; j < bn->value.cols(); ++j)
                    bn->grad.at(i, j) += self.grad.at(i, ac + j);
        }
    });
}

Var
gatherRows(const Var& table, std::vector<int> indices)
{
    const Tensor& t = table.value();
    Tensor v(static_cast<int>(indices.size()), t.cols());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        int r = indices[i];
        if (r < 0 || r >= t.rows())
            panic("gatherRows: index ", r, " out of range");
        for (int j = 0; j < t.cols(); ++j)
            v.at(static_cast<int>(i), j) = t.at(r, j);
    }
    auto tn = table.node();
    return makeOp(std::move(v), {table},
                  [tn, idx = std::move(indices)](VarNode& self) {
        if (!tn->requiresGrad)
            return;
        tn->ensureGrad();
        for (std::size_t i = 0; i < idx.size(); ++i)
            for (int j = 0; j < tn->value.cols(); ++j)
                tn->grad.at(idx[i], j) +=
                    self.grad.at(static_cast<int>(i), j);
    });
}

Var
sumRowsOp(const Var& a)
{
    Tensor v = a.value().sumRows();
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        for (int i = 0; i < an->value.rows(); ++i)
            for (int j = 0; j < an->value.cols(); ++j)
                an->grad.at(i, j) += self.grad.at(0, j);
    });
}

Var
meanRowsOp(const Var& a)
{
    int n = a.value().rows();
    if (n == 0)
        panic("meanRowsOp: empty input");
    Tensor v = a.value().sumRows() * (1.0f / static_cast<float>(n));
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an, n](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        float inv = 1.0f / static_cast<float>(n);
        for (int i = 0; i < an->value.rows(); ++i)
            for (int j = 0; j < an->value.cols(); ++j)
                an->grad.at(i, j) += self.grad.at(0, j) * inv;
    });
}

Var
sumAllOp(const Var& a)
{
    Tensor v(1, 1, a.value().sumAll());
    auto an = a.node();
    return makeOp(std::move(v), {a}, [an](VarNode& self) {
        if (!an->requiresGrad)
            return;
        an->ensureGrad();
        float g = self.grad.at(0, 0);
        for (int i = 0; i < an->value.rows(); ++i)
            for (int j = 0; j < an->value.cols(); ++j)
                an->grad.at(i, j) += g;
    });
}

Var
spmm(std::shared_ptr<const CsrMatrix> a, const Var& h)
{
    if (!a)
        panic("spmm: null adjacency");
    Tensor v = a->multiply(h.value());
    auto hn = h.node();
    return makeOp(std::move(v), {h}, [a, hn](VarNode& self) {
        if (!hn->requiresGrad)
            return;
        hn->ensureGrad();
        hn->grad += a->transposeMultiply(self.grad);
    });
}

Var
bceWithLogits(const Var& logits, const Tensor& targets)
{
    const Tensor& z = logits.value();
    if (z.cols() != 1 || !z.sameShape(targets))
        fatal("bceWithLogits: logits and targets must both be Nx1");
    int n = z.rows();
    if (n == 0)
        fatal("bceWithLogits: empty batch");
    // loss_i = max(z,0) - z*y + log(1 + exp(-|z|))
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        double zi = z.at(i, 0);
        double yi = targets.at(i, 0);
        total += std::max(zi, 0.0) - zi * yi +
            std::log1p(std::exp(-std::fabs(zi)));
    }
    Tensor v(1, 1, static_cast<float>(total / n));
    auto ln = logits.node();
    return makeOp(std::move(v), {logits}, [ln, targets, n](VarNode& self) {
        if (!ln->requiresGrad)
            return;
        ln->ensureGrad();
        float g = self.grad.at(0, 0) / static_cast<float>(n);
        for (int i = 0; i < n; ++i) {
            float zi = ln->value.at(i, 0);
            float p = 1.0f / (1.0f + std::exp(-zi));
            ln->grad.at(i, 0) += g * (p - targets.at(i, 0));
        }
    });
}

Var
mseLoss(const Var& pred, const Tensor& target)
{
    const Tensor& p = pred.value();
    if (!p.sameShape(target))
        fatal("mseLoss: shape mismatch");
    int n = static_cast<int>(p.size());
    if (n == 0)
        fatal("mseLoss: empty input");
    double total = 0.0;
    for (int i = 0; i < p.rows(); ++i)
        for (int j = 0; j < p.cols(); ++j) {
            double d = p.at(i, j) - target.at(i, j);
            total += d * d;
        }
    Tensor v(1, 1, static_cast<float>(total / n));
    auto pn = pred.node();
    return makeOp(std::move(v), {pred}, [pn, target, n](VarNode& self) {
        if (!pn->requiresGrad)
            return;
        pn->ensureGrad();
        float g = 2.0f * self.grad.at(0, 0) / static_cast<float>(n);
        for (int i = 0; i < pn->value.rows(); ++i)
            for (int j = 0; j < pn->value.cols(); ++j)
                pn->grad.at(i, j) +=
                    g * (pn->value.at(i, j) - target.at(i, j));
    });
}

void
backward(const Var& root)
{
    if (!root.defined())
        panic("backward: undefined root");
    if (root.value().rows() != 1 || root.value().cols() != 1)
        fatal("backward: root must be a 1x1 scalar");

    // Iterative DFS to produce a reverse topological order.
    std::vector<VarNode*> order;
    std::unordered_set<VarNode*> visited;
    std::vector<std::pair<VarNode*, std::size_t>> stack;
    stack.emplace_back(root.node().get(), 0);
    visited.insert(root.node().get());
    while (!stack.empty()) {
        auto& [node, next] = stack.back();
        if (next < node->parents.size()) {
            VarNode* p = node->parents[next++].get();
            if (p->requiresGrad && !visited.count(p)) {
                visited.insert(p);
                stack.emplace_back(p, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    root.node()->ensureGrad();
    root.node()->grad.at(0, 0) = 1.0f;

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        VarNode* node = *it;
        if (node->backwardFn && node->requiresGrad) {
            node->ensureGrad();
            node->backwardFn(*node);
        }
    }
}

} // namespace ag
} // namespace ccsa
